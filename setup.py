"""Setup shim so the package installs in offline environments.

The canonical metadata lives in pyproject.toml; this file exists because the
execution environment has no `wheel` package and no network access, so pip
falls back to the legacy `setup.py develop` code path for editable installs.
"""

from setuptools import setup

setup()
