"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The package is normally installed with ``pip install -e .``; this fallback
lets the test and benchmark suites run from a plain checkout as well.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
