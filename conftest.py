"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The package is normally installed with ``pip install -e .``; this fallback
lets the test and benchmark suites run from a plain checkout as well.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# Pin the auto-backend crossover thresholds to their built-in defaults:
# the suite's expectations about which backend `auto` selects must not
# depend on how fast the host machine happens to be.  Tests that exercise
# the micro-probe itself re-enable it explicitly (tests/test_autotune.py).
os.environ.setdefault("REPRO_AUTOTUNE", "off")
