"""MC-SAT pipeline parity: the scalar sampling loop vs the vectorized pipeline.

The vectorized MC-SAT pipeline (batched clause selection, pooled SampleSAT
constraint states, vector marginal accumulation) must be *bit-for-bit*
identical to the scalar loop, which is retained as the executable
specification: same RNG stream, same constraint sets, same sample sequence,
same marginals.  These tests drive both pipelines — plus a forced-batching
variant with the kernel's greedy threshold at zero — with identical seeds
over MLNs covering every clause kind (positive/negative, soft/hard,
duplicate literals), and compare every observable.
"""

import math

import pytest

from repro.grounding.clause_table import GroundClause, GroundClauseStore
from repro.inference import vector_kernel
from repro.inference.mcsat import (
    MCSat,
    MCSatOptions,
    _BatchedSelection,
    hard_constraint_prefix,
)
from repro.inference.samplesat import ConstraintPool, SampleSAT, SampleSATOptions
from repro.inference.state import make_search_state
from repro.inference.vector_kernel import NUMPY_AVAILABLE
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource

pytestmark = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")

BACKEND_PARAMS = ["vectorized", "vectorized-forced-batching"]


def sampler_options(samples=25, burn_in=5):
    return dict(samples=samples, burn_in=burn_in)


def biased_mrf() -> MRF:
    store = GroundClauseStore()
    store.add((1,), 3.0)
    store.add((-2,), 3.0)
    store.add((1, 2), 0.5)
    return MRF.from_store(store)


def negative_weight_mrf() -> MRF:
    """Soft negative weights plus a hard positive and a hard negative clause."""
    clauses = [
        GroundClause(1, (1, 2), 1.5),
        GroundClause(2, (-1, 3), -0.7),
        GroundClause(3, (2,), math.inf),
        GroundClause(4, (3, 4), -math.inf),
        GroundClause(5, (1, -4), 0.9),
        GroundClause(6, (-2, -3), -1.2),
        GroundClause(7, (4, 5), 0.0),
    ]
    return MRF.from_clauses(clauses, extra_atoms=range(1, 7))


def random_mln(seed: int, atoms: int = 10, clause_count: int = 40) -> MRF:
    """Randomized MLN with every weight kind, duplicate literals included."""
    rng = RandomSource(seed)
    clauses = []
    for clause_id in range(1, clause_count + 1):
        size = rng.randint(1, 3)
        literals = []
        for _ in range(size):
            atom = rng.randint(1, atoms)
            literals.append(atom if rng.coin() else -atom)
        weight_kind = rng.randint(0, 11)
        if weight_kind == 0:
            weight = math.inf
        elif weight_kind == 1:
            weight = -math.inf
        elif weight_kind <= 4:
            weight = -(round(rng.random() * 2, 3) + 0.1)
        else:
            weight = round(rng.random() * 2, 3) + 0.1
        clauses.append(GroundClause(clause_id, tuple(literals), weight))
    return MRF.from_clauses(clauses, extra_atoms=range(1, atoms + 1))


MLNS = {
    "example1-biased": biased_mrf,
    "negative-weights": negative_weight_mrf,
    "random-0": lambda: random_mln(0),
    "random-1": lambda: random_mln(1, atoms=8, clause_count=60),
}


def run_mcsat(make_mrf, backend: str, seed: int = 0, **options):
    mcsat_options = MCSatOptions(kernel_backend=backend, **options)
    return MCSat(mcsat_options, RandomSource(seed)).run(make_mrf())


class TestPipelineParity:
    @pytest.mark.parametrize("mln", sorted(MLNS))
    @pytest.mark.parametrize("backend", BACKEND_PARAMS)
    def test_marginals_bit_identical_across_backends(self, mln, backend, monkeypatch):
        """flat vs vectorized (and forced-batching): exact dict equality of
        MarginalResult.probabilities — any stream divergence in selection,
        constraint construction or accumulation would show up here."""
        make_mrf = MLNS[mln]
        reference = run_mcsat(make_mrf, "flat", **sampler_options())
        if backend == "vectorized-forced-batching":
            monkeypatch.setattr(vector_kernel, "GREEDY_MIN_ENTRIES", 0)
            backend = "vectorized"
        result = run_mcsat(make_mrf, backend, **sampler_options())
        assert result.probabilities == reference.probabilities
        assert result.samples == reference.samples
        assert result.burn_in == reference.burn_in

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_across_seeds(self, seed):
        make_mrf = MLNS["random-0"]
        reference = run_mcsat(make_mrf, "flat", seed=seed, **sampler_options(15, 3))
        result = run_mcsat(make_mrf, "vectorized", seed=seed, **sampler_options(15, 3))
        assert result.probabilities == reference.probabilities

    def test_parity_with_initial_assignment(self):
        make_mrf = MLNS["negative-weights"]
        initial = {1: True, 3: True, 5: False}
        reference = MCSat(
            MCSatOptions(kernel_backend="flat", **sampler_options(15, 2)),
            RandomSource(7),
        ).run(make_mrf(), initial)
        result = MCSat(
            MCSatOptions(kernel_backend="vectorized", **sampler_options(15, 2)),
            RandomSource(7),
        ).run(make_mrf(), initial)
        assert result.probabilities == reference.probabilities


class TestBatchedSelection:
    """The batched selection must reproduce the scalar spec clause-for-clause
    and draw-for-draw."""

    @pytest.mark.parametrize("seed", range(6))
    def test_selection_matches_scalar_spec(self, seed):
        mrf = random_mln(seed + 100, atoms=9, clause_count=50)
        world_rng = RandomSource(seed)
        world = {atom_id: world_rng.coin() for atom_id in mrf.atom_ids}
        evaluator = make_search_state(mrf, world, backend="vectorized")
        flags = evaluator.satisfaction_flags()

        scalar_rng = RandomSource(seed + 1)
        scalar = MCSat(rng=scalar_rng)._select_clauses(mrf.clauses, flags)

        batched_rng = RandomSource(seed + 1)
        selection = _BatchedSelection(mrf)
        selected = selection.select(batched_rng, evaluator.satisfaction_array())

        # Identical RNG stream consumption.
        assert batched_rng.raw().getstate() == scalar_rng.raw().getstate()

        # Identical constraint sets, in order: the scalar list is the hard
        # prefix plus the selected soft clauses' constraint literals.
        pool = ConstraintPool(mrf)
        expected = [clause.literals for clause in pool.prefix_clauses]
        for index in selected:
            expected.extend(
                clause.literals for clause in pool._templates[index].clauses
            )
        assert [clause.literals for clause in scalar] == expected
        assert all(clause.weight == 1.0 for clause in scalar)

    def test_zero_weight_clauses_never_selected_or_drawn(self):
        clauses = [GroundClause(1, (1, 2), 0.0), GroundClause(2, (1,), 0.0)]
        mrf = MRF.from_clauses(clauses, extra_atoms=(1, 2))
        rng = RandomSource(0)
        before = rng.raw().getstate()
        assert MCSat(rng=rng)._select_clauses(mrf.clauses, [True, True]) == []
        assert rng.raw().getstate() == before
        selection = _BatchedSelection(mrf)
        assert selection.soft_indices.size == 0


class TestConstraintPool:
    """Pooled constraint states must be structurally element-for-element
    identical to what the spec path (MRF.from_clauses + fresh flat view)
    builds, so every downstream RNG consumer sees the same world."""

    @pytest.mark.parametrize("seed", range(5))
    def test_pooled_state_structure_matches_spec_path(self, seed):
        mrf = random_mln(seed + 200, atoms=8, clause_count=45)
        pool = ConstraintPool(mrf)
        select_rng = RandomSource(seed)
        soft = sorted(pool._templates)
        selected = [index for index in soft if select_rng.coin(0.4)]
        pooled = pool.state_for(selected)

        # The spec path: wrap the same constraints and rebuild from scratch.
        spec_clauses = list(pool.prefix_clauses)
        for index in selected:
            spec_clauses.extend(pool._templates[index].clauses)
        spec_state = make_search_state(
            MRF.from_clauses(
                [
                    GroundClause(i + 1, clause.literals, 1.0, clause.source)
                    for i, clause in enumerate(spec_clauses)
                ],
                extra_atoms=mrf.atom_ids,
            )
        )

        assert pooled.atom_ids == spec_state.atom_ids
        assert pooled.hard_penalty == spec_state.hard_penalty
        assert list(pooled._abs_weight) == list(spec_state._abs_weight)
        assert pooled._negated == spec_state._negated
        view = pooled.mrf.flat_view()
        spec_view = spec_state.mrf.flat_view()
        assert list(view.clause_codes) == list(spec_view.clause_codes)
        assert list(view.clause_atom_positions) == list(spec_view.clause_atom_positions)
        assert [list(entries) for entries in view.adjacency] == [
            list(entries) for entries in spec_view.adjacency
        ]

        # Same randomize stream -> same violated set and cost.
        pooled.randomize(RandomSource(seed + 1))
        spec_state.randomize(RandomSource(seed + 1))
        assert pooled.assignment_dict() == spec_state.assignment_dict()
        assert pooled._violated_list == spec_state._violated_list
        assert pooled.cost == spec_state.cost

    def test_prefix_state_reused_between_empty_selections(self):
        mrf = negative_weight_mrf()
        pool = ConstraintPool(mrf)
        first = pool.state_for([])
        second = pool.state_for([])
        assert first is second
        # A non-empty selection builds a fresh state.
        soft = sorted(pool._templates)
        assert pool.state_for(soft[:1]) is not first

    def test_sample_prepared_matches_sample(self):
        """SampleSAT over a pooled state must replay the spec path's exact
        trajectory (same RNG stream, same returned world)."""
        for seed in range(5):
            mrf = random_mln(seed + 300, atoms=8, clause_count=40)
            pool = ConstraintPool(mrf)
            soft = sorted(pool._templates)
            selected = soft[:: max(1, seed)] if soft else []

            spec_sampler = SampleSAT(SampleSATOptions(max_flips=400), RandomSource(seed))
            spec_clauses = list(pool.prefix_clauses)
            for index in selected:
                spec_clauses.extend(pool._templates[index].clauses)
            spec_world = spec_sampler.sample(spec_clauses, mrf.atom_ids)

            pooled_sampler = SampleSAT(SampleSATOptions(max_flips=400), RandomSource(seed))
            state = pool.state_for(selected)
            found = pooled_sampler.sample_prepared(state)
            pooled_world = state.checkpoint_dict() if found else state.assignment_dict()
            assert pooled_world == spec_world
            assert (
                spec_sampler.rng.raw().getstate() == pooled_sampler.rng.raw().getstate()
            )


class TestEvaluatorHandoff:
    def test_reset_from_values_matches_dict_reset(self):
        mrf = random_mln(42, atoms=9, clause_count=30)
        for backend in ("flat", "vectorized"):
            by_dict = make_search_state(mrf, backend=backend)
            by_buffer = make_search_state(mrf, backend=backend)
            source = make_search_state(mrf, backend="flat")
            source.randomize(RandomSource(3))
            by_dict.reset(source.assignment_dict())
            by_buffer.reset_from_values(source.assignment)
            assert by_dict.assignment_dict() == by_buffer.assignment_dict()
            assert by_dict._violated_list == by_buffer._violated_list
            assert by_dict.cost == by_buffer.cost

    def test_reset_from_values_rejects_misaligned_buffer(self):
        mrf = biased_mrf()
        state = make_search_state(mrf)
        with pytest.raises(ValueError):
            state.reset_from_values([1, 0, 1])


class TestHardConstraintPrefix:
    def test_prefix_covers_both_hard_signs(self):
        clauses = [
            GroundClause(1, (1, 2), math.inf),
            GroundClause(2, (3,), 1.0),
            GroundClause(3, (2, -4), -math.inf),
        ]
        prefix = hard_constraint_prefix(clauses)
        assert [clause.literals for clause in prefix] == [(1, 2), (-2,), (4,)]
        assert all(clause.weight == 1.0 for clause in prefix)
        assert [clause.clause_id for clause in prefix] == [1, 2, 3]
