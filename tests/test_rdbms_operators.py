"""Tests for the physical operators, including join-algorithm equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdbms.expressions import ColumnRef, Comparison, Const, columns_equal
from repro.rdbms.operators import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Materialize,
    NestedLoopJoin,
    Project,
    Sort,
    SortMergeJoin,
    TableScan,
)
from repro.rdbms.schema import TableSchema
from repro.rdbms.table import Table
from repro.rdbms.types import ColumnType


def make_table(name, columns, rows):
    schema = TableSchema.of(*columns)
    table = Table(name, schema)
    table.bulk_load(rows)
    return table


@pytest.fixture
def orders():
    return make_table(
        "orders",
        [("oid", ColumnType.INTEGER), ("cust", ColumnType.TEXT), ("total", ColumnType.INTEGER)],
        [(1, "ann", 10), (2, "bob", 25), (3, "ann", 5), (4, "eve", 40)],
    )


@pytest.fixture
def customers():
    return make_table(
        "customers",
        [("name", ColumnType.TEXT), ("city", ColumnType.TEXT)],
        [("ann", "NYC"), ("bob", "LA"), ("cat", "SF")],
    )


class TestScanFilterProject:
    def test_scan_qualifies_columns(self, orders):
        scan = TableScan(orders, "o")
        assert scan.output_schema.column_names == ["o.oid", "o.cust", "o.total"]
        assert len(scan.rows()) == 4

    def test_filter(self, orders):
        scan = TableScan(orders, "o")
        filtered = Filter(scan, Comparison(">", ColumnRef("o.total"), Const(9)))
        assert [row[0] for row in filtered.rows()] == [1, 2, 4]

    def test_project_with_rename(self, orders):
        plan = Project(TableScan(orders, "o"), ["o.cust", "o.total"], ["customer", "amount"])
        assert plan.output_schema.column_names == ["customer", "amount"]
        assert plan.rows()[0] == ("ann", 10)

    def test_project_length_mismatch(self, orders):
        with pytest.raises(ValueError):
            Project(TableScan(orders, "o"), ["o.cust"], ["a", "b"])

    def test_explain_is_nested_text(self, orders):
        plan = Project(Filter(TableScan(orders, "o"), Comparison(">", ColumnRef("o.total"), Const(9))), ["o.oid"])
        text = plan.explain()
        assert "Project" in text and "Filter" in text and "SeqScan" in text


class TestJoins:
    def _expected_join(self, orders, customers):
        expected = set()
        for order in orders:
            for customer in customers:
                if order[1] == customer[0]:
                    expected.add(order + customer)
        return expected

    def test_all_join_algorithms_agree(self, orders, customers):
        expected = self._expected_join(orders.rows, customers.rows)
        nested = NestedLoopJoin(
            TableScan(orders, "o"), TableScan(customers, "c"), columns_equal("o.cust", "c.name")
        )
        hashed = HashJoin(
            TableScan(orders, "o"), TableScan(customers, "c"), ["o.cust"], ["c.name"]
        )
        merged = SortMergeJoin(
            TableScan(orders, "o"), TableScan(customers, "c"), ["o.cust"], ["c.name"]
        )
        assert set(nested.rows()) == expected
        assert set(hashed.rows()) == expected
        assert set(merged.rows()) == expected

    def test_join_with_nulls_dropped(self):
        left = make_table("l", [("k", ColumnType.TEXT)], [("a",), (None,)])
        right = make_table("r", [("k", ColumnType.TEXT)], [("a",), (None,)])
        hashed = HashJoin(TableScan(left, "l"), TableScan(right, "r"), ["l.k"], ["r.k"])
        merged = SortMergeJoin(TableScan(left, "l"), TableScan(right, "r"), ["l.k"], ["r.k"])
        assert hashed.rows() == [("a", "a")]
        assert merged.rows() == [("a", "a")]

    def test_hash_join_requires_keys(self, orders, customers):
        with pytest.raises(ValueError):
            HashJoin(TableScan(orders, "o"), TableScan(customers, "c"), [], [])

    def test_residual_condition(self, orders, customers):
        hashed = HashJoin(
            TableScan(orders, "o"),
            TableScan(customers, "c"),
            ["o.cust"],
            ["c.name"],
            residual=Comparison(">", ColumnRef("o.total"), Const(9)),
        )
        assert {row[0] for row in hashed.rows()} == {1, 2}

    def test_cross_product_when_no_condition(self, orders, customers):
        cross = NestedLoopJoin(TableScan(orders, "o"), TableScan(customers, "c"))
        assert len(cross.rows()) == len(orders) * len(customers)

    def test_duplicate_keys_produce_all_pairs(self):
        left = make_table("l", [("k", ColumnType.TEXT)], [("a",), ("a",)])
        right = make_table("r", [("k", ColumnType.TEXT)], [("a",), ("a",), ("a",)])
        for join_class in (HashJoin, SortMergeJoin):
            join = join_class(TableScan(left, "l"), TableScan(right, "r"), ["l.k"], ["r.k"])
            assert len(join.rows()) == 6


class TestOtherOperators:
    def test_distinct_preserves_first_occurrence(self):
        source = Materialize(
            TableSchema.of(("x", ColumnType.INTEGER)), [(1,), (2,), (1,), (3,), (2,)]
        )
        assert Distinct(source).rows() == [(1,), (2,), (3,)]

    def test_sort(self, orders):
        plan = Sort(TableScan(orders, "o"), ["o.total"])
        assert [row[2] for row in plan.rows()] == [5, 10, 25, 40]

    def test_limit(self, orders):
        assert len(Limit(TableScan(orders, "o"), 2).rows()) == 2
        assert Limit(TableScan(orders, "o"), 0).rows() == []
        with pytest.raises(ValueError):
            Limit(TableScan(orders, "o"), -1)

    def test_aggregate_count_sum_collect(self, orders):
        plan = Aggregate(
            TableScan(orders, "o"),
            ["o.cust"],
            [("count", "o.oid", "n"), ("sum", "o.total", "spend"), ("collect", "o.oid", "ids")],
        )
        rows = {row[0]: row[1:] for row in plan.rows()}
        assert rows["ann"] == (2, 15, (1, 3))
        assert rows["bob"] == (1, 25, (2,))

    def test_aggregate_unknown_function(self, orders):
        with pytest.raises(ValueError):
            Aggregate(TableScan(orders, "o"), ["o.cust"], [("median", "o.total", "m")])

    def test_aggregate_min_max(self, orders):
        plan = Aggregate(
            TableScan(orders, "o"), [], [("min", "o.total", "lo"), ("max", "o.total", "hi")]
        )
        assert plan.rows() == [(5, 40)]


@st.composite
def join_instances(draw):
    keys = st.integers(min_value=0, max_value=4)
    left = draw(st.lists(st.tuples(keys, st.integers(0, 9)), min_size=0, max_size=12))
    right = draw(st.lists(st.tuples(keys, st.integers(0, 9)), min_size=0, max_size=12))
    return left, right


class TestJoinEquivalenceProperty:
    """Hash join and sort-merge join must agree with nested loop on any input."""

    @given(join_instances())
    @settings(max_examples=60, deadline=None)
    def test_equivalence(self, instance):
        left_rows, right_rows = instance
        left = make_table("l", [("k", ColumnType.INTEGER), ("v", ColumnType.INTEGER)], left_rows)
        right = make_table("r", [("k", ColumnType.INTEGER), ("v", ColumnType.INTEGER)], right_rows)
        nested = NestedLoopJoin(
            TableScan(left, "l"), TableScan(right, "r"), columns_equal("l.k", "r.k")
        )
        hashed = HashJoin(TableScan(left, "l"), TableScan(right, "r"), ["l.k"], ["r.k"])
        merged = SortMergeJoin(TableScan(left, "l"), TableScan(right, "r"), ["l.k"], ["r.k"])
        expected = sorted(nested.rows())
        assert sorted(hashed.rows()) == expected
        assert sorted(merged.rows()) == expected
