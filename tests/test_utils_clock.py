"""Tests for repro.utils.clock."""

import pytest

from repro.utils.clock import CostModel, HybridClock, SimulatedClock, WallClock


class TestWallClock:
    def test_monotonic(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first >= 0.0

    def test_restart_resets_origin(self):
        clock = WallClock()
        _ = clock.now()
        clock.restart()
        assert clock.now() < 1.0


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_charge_uses_cost_model(self):
        model = CostModel(memory_flip=2.0, page_read=5.0)
        clock = SimulatedClock(model)
        clock.charge("memory_flip", count=3)
        clock.charge("page_read")
        assert clock.now() == pytest.approx(11.0)

    def test_event_counts(self):
        clock = SimulatedClock()
        clock.charge("memory_flip", count=4)
        clock.charge("page_read", count=2)
        assert clock.event_counts() == {"memory_flip": 4, "page_read": 2}

    def test_charge_unknown_event_raises(self):
        with pytest.raises(AttributeError):
            SimulatedClock().charge("nonexistent_event")

    def test_restart(self):
        clock = SimulatedClock()
        clock.charge("memory_flip", 10)
        clock.restart()
        assert clock.now() == 0.0
        assert clock.event_counts() == {}

    def test_relative_costs_match_paper_magnitudes(self):
        """A random page access must be orders of magnitude more expensive
        than an in-memory flip (the premise of the hybrid architecture)."""
        model = CostModel()
        assert model.page_read / model.memory_flip >= 100
        assert model.rdbms_flip_overhead / model.memory_flip >= 100


class TestHybridClock:
    def test_exposes_both_clocks(self):
        clock = HybridClock()
        clock.charge("memory_flip", count=2)
        assert clock.now() == pytest.approx(2 * clock.simulated.cost_model.memory_flip)
        assert clock.wall_elapsed() >= 0.0
