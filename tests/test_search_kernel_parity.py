"""Kernel parity: every kernel backend vs the seed reference kernel.

The flat-array rewrite and the vectorized (numpy) backend must both be
*semantically identical* to the seed kernel: same costs, same flip deltas,
same violated-set ordering (which seeded runs depend on, because the
violated clause is drawn with ``rng.pick`` from that list), and the same
best-assignment tracking.  These tests drive every implementation with
identical randomized MRFs and identical seeds and compare every observable
after every step.

The ``kernel`` fixture parameterizes each test over the flat backend, the
vectorized backend (auto threshold: bulk ops numpy, greedy scalar on these
tiny MRFs), and the vectorized backend with the batched-greedy threshold
forced to zero so the numpy greedy/bincount path itself is proven
bit-for-bit against the scalar loop.  The state-reuse lifecycle tests pin
that reusing one state (and one stepper) across restarts is
indistinguishable from building fresh states.
"""

import math

import pytest

from repro.grounding.clause_table import GroundClause
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.reference_kernel import ReferenceSearchState
from repro.inference.state import SearchState, make_search_state, resolve_backend
from repro.inference.vector_kernel import NUMPY_AVAILABLE, VectorSearchState
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


def _forced_vector(mrf, initial_assignment=None, hard_penalty=None):
    """Vectorized backend with every multi-atom clause on the numpy greedy."""
    return VectorSearchState(
        mrf, initial_assignment, hard_penalty, greedy_min_entries=0
    )


KERNEL_PARAMS = [pytest.param(SearchState, id="flat")]
if NUMPY_AVAILABLE:
    KERNEL_PARAMS.append(pytest.param(VectorSearchState, id="vectorized"))
    KERNEL_PARAMS.append(pytest.param(_forced_vector, id="vectorized-forced-greedy"))


@pytest.fixture(params=KERNEL_PARAMS)
def kernel(request):
    """A kernel-state factory with the SearchState constructor signature."""
    return request.param


def random_mrf(seed: int, atoms: int = 8, clause_count: int = 24) -> MRF:
    """A randomized MRF with soft, negative, hard and duplicate-literal
    clauses (built from raw GroundClauses so store-level normalisation does
    not sanitise the adversarial cases away)."""
    rng = RandomSource(seed)
    clauses = []
    for clause_id in range(1, clause_count + 1):
        size = rng.randint(1, 3)
        literals = []
        for _ in range(size):
            atom = rng.randint(1, atoms)
            literals.append(atom if rng.coin() else -atom)
        weight_kind = rng.randint(0, 9)
        if weight_kind == 0:
            weight = math.inf
        elif weight_kind <= 3:
            weight = -(round(rng.random() * 3, 3) + 0.1)
        else:
            weight = round(rng.random() * 3, 3) + 0.1
        clauses.append(GroundClause(clause_id, tuple(literals), weight))
    return MRF.from_clauses(clauses, extra_atoms=range(1, atoms + 1))


def assert_states_agree(reference: ReferenceSearchState, state: SearchState) -> None:
    assert state.cost == pytest.approx(reference.cost, rel=1e-12, abs=1e-12)
    # Exact list (not set) equality: the violated-clause *ordering* feeds
    # rng.pick, so it must be reproduced bit-for-bit.
    assert state._violated_list == reference._violated_list
    assert state.assignment_dict() == reference.assignment_dict()
    assert state.violated_count() == reference.violated_count()


class TestKernelParity:
    def test_initialisation_and_structure(self, kernel):
        for seed in range(10):
            mrf = random_mrf(seed)
            reference = ReferenceSearchState(mrf)
            state = kernel(mrf)
            assert state.hard_penalty == reference.hard_penalty
            assert_states_agree(reference, state)
            for clause_index in range(mrf.clause_count):
                assert list(state.clause_atom_positions(clause_index)) == list(
                    reference.clause_atom_positions(clause_index)
                )

    def test_randomize_consumes_identical_rng(self, kernel):
        for seed in range(10):
            mrf = random_mrf(seed + 50)
            reference = ReferenceSearchState(mrf)
            state = kernel(mrf)
            reference.randomize(RandomSource(seed))
            state.randomize(RandomSource(seed))
            assert_states_agree(reference, state)

    def test_flip_and_delta_parity_over_random_walks(self, kernel):
        for seed in range(15):
            mrf = random_mrf(seed, atoms=9, clause_count=30)
            reference = ReferenceSearchState(mrf)
            state = kernel(mrf)
            reference.randomize(RandomSource(seed))
            state.randomize(RandomSource(seed))
            walk = RandomSource(seed + 1000)
            for _step in range(80):
                for position in range(len(mrf.atom_ids)):
                    assert state.delta_cost(position) == pytest.approx(
                        reference.delta_cost(position), rel=1e-12, abs=1e-12
                    )
                position = walk.randint(0, len(mrf.atom_ids) - 1)
                delta_reference = reference.flip(position)
                delta_state = state.flip(position)
                assert delta_state == pytest.approx(
                    delta_reference, rel=1e-12, abs=1e-12
                )
                assert state.flips == reference.flips
                assert_states_agree(reference, state)
            assert state.true_cost() == pytest.approx(reference.true_cost())

    def test_delta_cost_batch_matches_scalar_deltas(self, kernel):
        """delta_cost_batch must equal [delta_cost(p) for p in candidates]
        bit-for-bit — this is the contract the batched greedy rides on."""
        for seed in range(10):
            mrf = random_mrf(seed, atoms=9, clause_count=30)
            state = kernel(mrf)
            state.randomize(RandomSource(seed))
            walk = RandomSource(seed + 2000)
            for _round in range(15):
                for clause_index in range(mrf.clause_count):
                    expected = [
                        state.delta_cost(position)
                        for position in state.clause_atom_positions(clause_index)
                    ]
                    assert state.delta_cost_batch(clause_index) == expected
                state.flip(walk.randint(0, len(mrf.atom_ids) - 1))

    def test_checkpoint_tracks_best_assignment(self, kernel):
        mrf = random_mrf(3, atoms=6, clause_count=18)
        reference = ReferenceSearchState(mrf)
        state = kernel(mrf)
        reference.randomize(RandomSource(3))
        state.randomize(RandomSource(3))
        walk = RandomSource(99)
        for step in range(60):
            position = walk.randint(0, len(mrf.atom_ids) - 1)
            reference.flip(position)
            state.flip(position)
            if step % 7 == 0:
                reference.checkpoint()
                state.checkpoint()
                assert state.checkpoint_dict() == reference.checkpoint_dict()
        # The snapshot stays pinned at the last checkpoint, not the current
        # state.
        assert state.checkpoint_dict() == reference.checkpoint_dict()

    def test_checkpoint_after_journal_overflow(self, kernel):
        """More flips than atoms between checkpoints forces the full-copy
        fallback; the snapshot must still equal the assignment at
        checkpoint time."""
        mrf = random_mrf(7, atoms=4, clause_count=10)
        state = kernel(mrf)
        state.randomize(RandomSource(7))
        walk = RandomSource(11)
        for _ in range(50):  # far more flips than the 4-atom journal limit
            state.flip(walk.randint(0, len(mrf.atom_ids) - 1))
        state.checkpoint()
        assert state.checkpoint_dict() == state.assignment_dict()
        state.flip(0)
        assert state.checkpoint_dict() != state.assignment_dict()

    def test_satisfaction_flags_parity(self, kernel):
        """Including after scalar flips, when the vectorized backend's
        numpy mirror may be stale and must fall back."""
        mrf = random_mrf(9, atoms=7, clause_count=20)
        reference = ReferenceSearchState(mrf)
        state = kernel(mrf)
        reference.randomize(RandomSource(9))
        state.randomize(RandomSource(9))
        expected = [count > 0 for count in reference._sat_count]
        assert state.satisfaction_flags() == expected
        walk = RandomSource(10)
        for _ in range(20):
            position = walk.randint(0, len(mrf.atom_ids) - 1)
            reference.flip(position)
            state.flip(position)
            expected = [count > 0 for count in reference._sat_count]
            assert state.satisfaction_flags() == expected

    def test_walksat_runs_identically_on_all_kernels(self, kernel):
        """End-to-end: the same seed drives WalkSAT to the same costs and
        the same best assignment on any kernel (multiple tries, so the
        restart/rerandomize path is exercised too)."""
        for seed in range(8):
            mrf = random_mrf(seed + 200, atoms=10, clause_count=32)
            options = WalkSATOptions(max_flips=300, max_tries=2, noise=0.5)
            result_reference = WalkSAT(options, RandomSource(seed)).run_on_state(
                ReferenceSearchState(mrf)
            )
            result_state = WalkSAT(options, RandomSource(seed)).run_on_state(
                kernel(mrf)
            )
            assert result_state.best_cost == pytest.approx(
                result_reference.best_cost, rel=1e-12, abs=1e-12
            )
            assert result_state.flips == result_reference.flips
            assert result_state.tries == result_reference.tries
            assert result_state.best_assignment == result_reference.best_assignment

    def test_reset_parity_with_partial_assignment(self, kernel):
        mrf = random_mrf(21)
        reference = ReferenceSearchState(mrf)
        state = kernel(mrf)
        partial = {1: True, 3: True, 999: True}  # unknown atoms are ignored
        reference.reset(partial)
        state.reset(partial)
        assert_states_agree(reference, state)
        assert state.value_of(1) is True
        assert state.value_of(2) is False


class TestStateReuseLifecycle:
    """reset/rerandomize rewrite buffers in place, so one state — and one
    stepper closure — survives any number of restarts with results
    bit-for-bit identical to building everything fresh."""

    def test_lifecycle_keeps_buffer_identity(self, kernel):
        state = kernel(random_mrf(31))
        buffer = state.assignment
        violated = state._violated_list
        state.randomize(RandomSource(1))
        state.reset({1: True})
        state.rerandomize(RandomSource(2))
        assert state.assignment is buffer
        assert state._violated_list is violated

    def test_rerandomize_matches_fresh_randomize(self, kernel):
        for seed in range(6):
            mrf = random_mrf(seed + 400)
            reused = kernel(mrf)
            rng = RandomSource(seed)
            for _restart in range(4):
                fresh = kernel(mrf)
                # One shared stream for the reused state, a cloned prefix
                # consumer for the fresh one: randomize must consume exactly
                # one coin per atom either way.
                fresh_rng = RandomSource(seed)
                for _ in range(_restart * len(mrf.atom_ids)):
                    fresh_rng.coin()
                reused.rerandomize(rng)
                fresh.randomize(fresh_rng)
                assert reused.assignment_dict() == fresh.assignment_dict()
                assert reused.cost == fresh.cost
                assert reused._violated_list == fresh._violated_list

    def test_one_stepper_survives_restarts(self, kernel):
        """Stepping a reused state (stepper created once) must replay the
        exact trajectory of a fresh state + fresh stepper per restart."""
        for seed in range(6):
            mrf = random_mrf(seed + 500, atoms=9, clause_count=28)
            reused = kernel(mrf)
            rng_reused = RandomSource(seed)
            rng_fresh = RandomSource(seed)
            reused.rerandomize(rng_reused)
            fresh = kernel(mrf)
            fresh.rerandomize(rng_fresh)
            step_reused = reused.make_walksat_stepper(rng_reused, noise=0.5)
            for _restart in range(3):
                step_fresh = fresh.make_walksat_stepper(rng_fresh, noise=0.5)
                for _ in range(60):
                    if not reused.has_violations():
                        break
                    assert step_reused() == step_fresh()
                    assert reused.assignment_dict() == fresh.assignment_dict()
                    assert reused._violated_list == fresh._violated_list
                reused.rerandomize(rng_reused)
                fresh = kernel(mrf)
                fresh.rerandomize(rng_fresh)

    def test_component_state_cache_is_bit_identical(self):
        """ComponentAwareWalkSAT reuses one state per component across
        run() calls; every run must equal a cold searcher's run exactly."""
        mrf = random_mrf(77, atoms=12, clause_count=36)
        options = WalkSATOptions(max_flips=200, max_tries=2)
        caching = ComponentAwareWalkSAT(options, RandomSource(3))
        first = caching.run(mrf, total_flips=400)
        second = caching.run(mrf, total_flips=400)  # cached states, reset in place
        cold = ComponentAwareWalkSAT(options, RandomSource(3)).run(mrf, total_flips=400)
        for warm in (first, second):
            assert warm.best_cost == cold.best_cost
            assert warm.flips == cold.flips
            assert warm.best_assignment == cold.best_assignment
        # The cache really was reused (same state objects, same components).
        assert caching._cached_states  # populated
        assert caching.run(mrf, total_flips=400).best_cost == cold.best_cost


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
class TestBackendSelection:
    def test_resolve_backend_explicit(self):
        mrf = random_mrf(1)
        assert resolve_backend(mrf, "flat") == "flat"
        assert resolve_backend(mrf, "vectorized") == "vectorized"
        with pytest.raises(ValueError):
            resolve_backend(mrf, "simd")

    def test_auto_picks_flat_for_small_mrfs(self):
        small = random_mrf(2, atoms=6, clause_count=12)
        assert resolve_backend(small, "auto") == "flat"
        assert isinstance(make_search_state(small), SearchState)
        assert not isinstance(make_search_state(small), VectorSearchState)

    def test_auto_picks_vectorized_for_large_mrfs(self):
        big = random_mrf(3, atoms=40, clause_count=400)
        assert resolve_backend(big, "auto") == "vectorized"
        assert isinstance(make_search_state(big), VectorSearchState)

    def test_explicit_vectorized_state_on_small_mrf(self):
        small = random_mrf(4, atoms=6, clause_count=12)
        state = make_search_state(small, backend="vectorized")
        assert isinstance(state, VectorSearchState)
