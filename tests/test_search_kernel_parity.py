"""Kernel parity: the flat-array SearchState vs the seed reference kernel.

The flat-array rewrite must be *semantically identical* to the seed kernel:
same costs, same flip deltas, same violated-set ordering (which seeded runs
depend on, because the violated clause is drawn with ``rng.pick`` from that
list), and the same best-assignment tracking.  These tests drive both
implementations with identical randomized MRFs and identical seeds and
compare every observable after every step.
"""

import math

import pytest

from repro.grounding.clause_table import GroundClause
from repro.inference.reference_kernel import ReferenceSearchState
from repro.inference.state import SearchState
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


def random_mrf(seed: int, atoms: int = 8, clause_count: int = 24) -> MRF:
    """A randomized MRF with soft, negative, hard and duplicate-literal
    clauses (built from raw GroundClauses so store-level normalisation does
    not sanitise the adversarial cases away)."""
    rng = RandomSource(seed)
    clauses = []
    for clause_id in range(1, clause_count + 1):
        size = rng.randint(1, 3)
        literals = []
        for _ in range(size):
            atom = rng.randint(1, atoms)
            literals.append(atom if rng.coin() else -atom)
        weight_kind = rng.randint(0, 9)
        if weight_kind == 0:
            weight = math.inf
        elif weight_kind <= 3:
            weight = -(round(rng.random() * 3, 3) + 0.1)
        else:
            weight = round(rng.random() * 3, 3) + 0.1
        clauses.append(GroundClause(clause_id, tuple(literals), weight))
    return MRF.from_clauses(clauses, extra_atoms=range(1, atoms + 1))


def assert_states_agree(reference: ReferenceSearchState, flat: SearchState) -> None:
    assert flat.cost == pytest.approx(reference.cost, rel=1e-12, abs=1e-12)
    # Exact list (not set) equality: the violated-clause *ordering* feeds
    # rng.pick, so it must be reproduced bit-for-bit.
    assert flat._violated_list == reference._violated_list
    assert flat.assignment_dict() == reference.assignment_dict()
    assert flat.violated_count() == reference.violated_count()


class TestKernelParity:
    def test_initialisation_and_structure(self):
        for seed in range(10):
            mrf = random_mrf(seed)
            reference = ReferenceSearchState(mrf)
            flat = SearchState(mrf)
            assert flat.hard_penalty == reference.hard_penalty
            assert_states_agree(reference, flat)
            for clause_index in range(mrf.clause_count):
                assert list(flat.clause_atom_positions(clause_index)) == list(
                    reference.clause_atom_positions(clause_index)
                )

    def test_randomize_consumes_identical_rng(self):
        for seed in range(10):
            mrf = random_mrf(seed + 50)
            reference = ReferenceSearchState(mrf)
            flat = SearchState(mrf)
            reference.randomize(RandomSource(seed))
            flat.randomize(RandomSource(seed))
            assert_states_agree(reference, flat)

    def test_flip_and_delta_parity_over_random_walks(self):
        for seed in range(15):
            mrf = random_mrf(seed, atoms=9, clause_count=30)
            reference = ReferenceSearchState(mrf)
            flat = SearchState(mrf)
            reference.randomize(RandomSource(seed))
            flat.randomize(RandomSource(seed))
            walk = RandomSource(seed + 1000)
            for _step in range(80):
                for position in range(len(mrf.atom_ids)):
                    assert flat.delta_cost(position) == pytest.approx(
                        reference.delta_cost(position), rel=1e-12, abs=1e-12
                    )
                position = walk.randint(0, len(mrf.atom_ids) - 1)
                delta_reference = reference.flip(position)
                delta_flat = flat.flip(position)
                assert delta_flat == pytest.approx(delta_reference, rel=1e-12, abs=1e-12)
                assert flat.flips == reference.flips
                assert_states_agree(reference, flat)
            assert flat.true_cost() == pytest.approx(reference.true_cost())

    def test_checkpoint_tracks_best_assignment(self):
        mrf = random_mrf(3, atoms=6, clause_count=18)
        reference = ReferenceSearchState(mrf)
        flat = SearchState(mrf)
        reference.randomize(RandomSource(3))
        flat.randomize(RandomSource(3))
        walk = RandomSource(99)
        for step in range(60):
            position = walk.randint(0, len(mrf.atom_ids) - 1)
            reference.flip(position)
            flat.flip(position)
            if step % 7 == 0:
                reference.checkpoint()
                flat.checkpoint()
                assert flat.checkpoint_dict() == reference.checkpoint_dict()
        # The snapshot stays pinned at the last checkpoint, not the current
        # state.
        assert flat.checkpoint_dict() == reference.checkpoint_dict()

    def test_checkpoint_after_journal_overflow(self):
        """More flips than atoms between checkpoints forces the full-copy
        fallback; the snapshot must still equal the assignment at
        checkpoint time."""
        mrf = random_mrf(7, atoms=4, clause_count=10)
        flat = SearchState(mrf)
        flat.randomize(RandomSource(7))
        walk = RandomSource(11)
        for _ in range(50):  # far more flips than the 4-atom journal limit
            flat.flip(walk.randint(0, len(mrf.atom_ids) - 1))
        flat.checkpoint()
        assert flat.checkpoint_dict() == flat.assignment_dict()
        flat.flip(0)
        assert flat.checkpoint_dict() != flat.assignment_dict()

    def test_walksat_runs_identically_on_both_kernels(self):
        """End-to-end: the same seed drives WalkSAT to the same costs and
        the same best assignment on either kernel."""
        for seed in range(8):
            mrf = random_mrf(seed + 200, atoms=10, clause_count=32)
            options = WalkSATOptions(max_flips=300, max_tries=2, noise=0.5)
            result_reference = WalkSAT(options, RandomSource(seed)).run_on_state(
                ReferenceSearchState(mrf)
            )
            result_flat = WalkSAT(options, RandomSource(seed)).run_on_state(
                SearchState(mrf)
            )
            assert result_flat.best_cost == pytest.approx(
                result_reference.best_cost, rel=1e-12, abs=1e-12
            )
            assert result_flat.flips == result_reference.flips
            assert result_flat.tries == result_reference.tries
            assert result_flat.best_assignment == result_reference.best_assignment

    def test_reset_parity_with_partial_assignment(self):
        mrf = random_mrf(21)
        reference = ReferenceSearchState(mrf)
        flat = SearchState(mrf)
        partial = {1: True, 3: True, 999: True}  # unknown atoms are ignored
        reference.reset(partial)
        flat.reset(partial)
        assert_states_agree(reference, flat)
        assert flat.value_of(1) is True
        assert flat.value_of(2) is False
