"""Tests for the bottom-up and top-down grounders, including the
property-based equivalence check between the two strategies."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.program import MLNProgram
from repro.datasets.synthetic import random_program
from repro.grounding.bottom_up import BottomUpGrounder
from repro.grounding.lazy import active_closure
from repro.grounding.pruning import LiteralOutcome, equality_satisfies_clause, literal_outcome
from repro.grounding.top_down import TopDownGrounder
from repro.logic.predicates import Predicate
from repro.rdbms.optimizer import OptimizerOptions
from repro.utils.memory import MemoryModel

FIGURE1_PROGRAM = """
*wrote(author, paper)
*refers(paper, paper)
cat(paper, category)
5 cat(p, c1), cat(p, c2) => c1 = c2
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2 cat(p1, c), refers(p1, p2) => cat(p2, c)
-1 cat(p, "Networking")
"""

FIGURE1_EVIDENCE = """
wrote(Joe, P1)
wrote(Joe, P2)
wrote(Jake, P3)
refers(P1, P3)
cat(P2, "DB")
"""


def figure1_program():
    program = MLNProgram.from_text(FIGURE1_PROGRAM, FIGURE1_EVIDENCE)
    program.add_constants("category", ["DB", "AI", "Networking"])
    return program


def canonical(store):
    """A comparable form of a clause store: sorted (literal-set, weight) pairs."""
    return sorted(
        (tuple(sorted(clause.literals)), round(clause.weight, 6)) for clause in store
    )


class TestBottomUpGrounder:
    def test_figure1_grounding(self):
        program = figure1_program()
        grounder = BottomUpGrounder()
        result = grounder.ground(program.clauses(), program.build_atom_registry())
        assert result.strategy == "bottom-up"
        assert result.ground_clause_count > 0
        # Every literal references a query atom (evidence is resolved away).
        query_ids = set(result.atoms.query_atom_ids())
        for clause in result.clauses:
            assert set(clause.atom_ids) <= query_ids
        # F1 instances pair distinct categories of the same paper; when one of
        # the two atoms is already true in the evidence the clause shrinks to
        # a single literal (the evidence literal is resolved away).
        f1_clauses = [c for c in result.clauses if c.source and c.source.startswith("R1")]
        assert f1_clauses
        assert all(1 <= len(c.literals) <= 2 for c in f1_clauses)

    def test_clause_table_persisted(self):
        program = figure1_program()
        grounder = BottomUpGrounder()
        result = grounder.ground(program.clauses(), program.build_atom_registry())
        assert grounder.database.has_table("ground_clauses")
        assert len(grounder.database.table("ground_clauses")) == len(result.clauses)

    def test_compiled_sql_per_clause(self):
        program = figure1_program()
        grounder = BottomUpGrounder()
        statements = grounder.compiled_sql(program.clauses())
        assert len(statements) == 4
        assert all("SELECT" in sql for sql in statements.values())

    def test_memory_model_charges_only_results(self):
        program = figure1_program()
        model = MemoryModel()
        grounder = BottomUpGrounder(memory_model=model)
        grounder.ground(program.clauses(), program.build_atom_registry())
        snapshot = model.snapshot()
        assert snapshot["clause_table"] > 0
        assert snapshot["grounding"] == 0

    def test_lesion_settings_produce_same_ground_clauses(self):
        program = figure1_program()
        reference = None
        for options in (
            OptimizerOptions.full_optimizer(),
            OptimizerOptions.fixed_join_order(),
            OptimizerOptions.nested_loop_only(),
        ):
            grounder = BottomUpGrounder(optimizer_options=options)
            result = grounder.ground(program.clauses(), program.build_atom_registry())
            shape = canonical(result.clauses)
            if reference is None:
                reference = shape
            else:
                assert shape == reference


class TestAtomTableReuse:
    """Atom tables (and the columnar encoded-column cache keyed on their
    version) are reused across ground() calls while the atom registry is
    unchanged, and rebuilt the moment it mutates."""

    def _grounder_and_program(self):
        from repro.rdbms.database import Database

        program = figure1_program()
        database = Database()
        grounder = BottomUpGrounder(database=database)
        return grounder, program, database

    def test_registry_version_tracks_mutations(self):
        program = figure1_program()
        atoms = program.build_atom_registry()
        version = atoms.version
        # Re-registering known atoms with known truth changes nothing.
        record = next(iter(atoms))
        atoms.register(record.atom, record.truth)
        assert atoms.version == version
        # A truth value moving from unknown to fixed bumps the version.
        query_record = atoms.record(atoms.query_atom_ids()[0])
        atoms.register(query_record.atom, True)
        assert atoms.version == version + 1

    def test_tables_reused_while_registry_unchanged(self):
        grounder, program, database = self._grounder_and_program()
        clauses = program.clauses()
        atoms = program.build_atom_registry()
        first = grounder.ground(clauses, atoms)
        table = database.table("pred_cat")
        version_after_first = table.version
        second = grounder.ground(clauses, atoms)
        # No truncate + reload: the table version (the columnar cache key)
        # is untouched, and the grounding is identical.
        assert table.version == version_after_first
        assert canonical(first.clauses) == canonical(second.clauses)

    def test_encoded_column_cache_survives_reground(self):
        pytest.importorskip("numpy")
        from repro.rdbms.database import Database

        program = figure1_program()
        database = Database(execution_backend="columnar")
        grounder = BottomUpGrounder(database=database, execution_backend="columnar")
        clauses = program.clauses()
        atoms = program.build_atom_registry()
        grounder.ground(clauses, atoms)
        context = database.executor.columnar_context()
        table = database.table("pred_cat")
        cached = context.table_columns(table)
        grounder.ground(clauses, atoms)
        # Same encoded arrays, not a re-encoded copy.
        assert context.table_columns(table) is cached

    def test_registry_mutation_invalidates_and_regrounds(self):
        grounder, program, database = self._grounder_and_program()
        clauses = program.clauses()
        atoms = program.build_atom_registry()
        first = grounder.ground(clauses, atoms)
        table = database.table("pred_cat")
        version_after_first = table.version
        # New evidence: cat(P3, "AI") becomes fixed-true.
        record = atoms.record(atoms.lookup("cat", ("P3", "AI")))
        atoms.register(record.atom, True)
        second = grounder.ground(clauses, atoms)
        assert table.version > version_after_first  # reloaded
        assert canonical(first.clauses) != canonical(second.clauses)
        # The new evidence atom no longer appears as a query literal.
        evidence_id = record.atom_id
        for clause in second.clauses:
            assert evidence_id not in {abs(l) for l in clause.literals}

    def test_distinct_registries_never_share_tables(self):
        grounder, program, database = self._grounder_and_program()
        clauses = program.clauses()
        first = grounder.ground(clauses, program.build_atom_registry())
        other_program = figure1_program()
        other_atoms = other_program.build_atom_registry()
        table = database.table("pred_cat")
        version_after_first = table.version
        grounder.ground(other_program.clauses(), other_atoms)
        # Same logical contents but a different registry object: reloaded.
        assert table.version > version_after_first


class TestTopDownGrounder:
    def test_matches_bottom_up_on_figure1(self):
        program = figure1_program()
        bottom_up = BottomUpGrounder().ground(program.clauses(), program.build_atom_registry())
        top_down = TopDownGrounder().ground(program.clauses(), program.build_atom_registry())
        assert canonical(top_down.clauses) == canonical(bottom_up.clauses)
        assert top_down.strategy == "top-down"

    def test_counts_intermediate_tuples(self):
        program = figure1_program()
        model = MemoryModel()
        result = TopDownGrounder(memory_model=model).ground(
            program.clauses(), program.build_atom_registry()
        )
        assert result.intermediate_tuples > result.ground_clause_count
        assert model.snapshot()["grounding"] > 0

    def test_unbound_equality_variable_rejected(self):
        from repro.logic.clauses import WeightedClause
        from repro.logic.literals import Literal
        from repro.logic.terms import Variable

        predicate = Predicate("p", ("obj",))
        clause = WeightedClause(
            (Literal(predicate, (Variable("x"),)),),
            1.0,
            equalities=((Variable("x"), Variable("unbound"), True),),
        )
        program = MLNProgram()
        program.declare_predicate(predicate)
        program.add_constants("obj", ["A"])
        program.add_clause(clause)
        with pytest.raises(ValueError):
            TopDownGrounder().ground(program.clauses(), program.build_atom_registry())


class TestGrounderEquivalenceProperty:
    """Bottom-up and top-down grounding must agree on random programs."""

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_on_random_programs(self, seed):
        program = random_program(seed=seed, n_predicates=2, domain_size=3, n_clauses=3)
        atoms_bottom = program.build_atom_registry()
        atoms_top = program.build_atom_registry()
        bottom_up = BottomUpGrounder(persist_clause_table=False).ground(
            program.clauses(), atoms_bottom
        )
        top_down = TopDownGrounder().ground(program.clauses(), atoms_top)
        assert canonical(bottom_up.clauses) == canonical(top_down.clauses)
        assert bottom_up.clauses.evidence_violation_cost == pytest.approx(
            top_down.clauses.evidence_violation_cost
        )


class TestPruningHelpers:
    def test_literal_outcomes(self):
        assert literal_outcome(None, True) is LiteralOutcome.UNKNOWN
        assert literal_outcome(True, True) is LiteralOutcome.SATISFIES
        assert literal_outcome(False, True) is LiteralOutcome.DROPPED
        assert literal_outcome(False, False) is LiteralOutcome.SATISFIES
        assert literal_outcome(True, False) is LiteralOutcome.DROPPED

    def test_equality_satisfaction(self):
        assert equality_satisfies_clause("A", "A", True)
        assert not equality_satisfies_clause("A", "B", True)
        assert equality_satisfies_clause("A", "B", False)
        assert not equality_satisfies_clause("A", "A", False)


class TestActiveClosure:
    def test_seed_clauses_are_those_violated_when_all_false(self):
        from repro.grounding.clause_table import GroundClauseStore

        store = GroundClauseStore()
        store.add((1,), 1.0)        # violated when all false -> active
        store.add((-2, 3), 1.0)     # satisfied by atom 2 being false -> inactive seed
        closure = active_closure(store)
        assert 1 in closure.atoms
        sources = {clause.literals for clause in closure.clauses}
        assert (1,) in sources

    def test_chain_activation(self):
        from repro.grounding.clause_table import GroundClauseStore

        store = GroundClauseStore()
        store.add((1,), 1.0)          # activates atom 1
        store.add((-1, 2), 1.0)       # can only be violated once atom 1 is active
        store.add((-3, 4), 1.0)       # never activatable: atom 3 stays false
        closure = active_closure(store)
        literal_sets = {clause.literals for clause in closure.clauses}
        assert (1,) in literal_sets
        assert (-1, 2) in literal_sets
        assert (-3, 4) not in literal_sets
        assert closure.atoms == frozenset({1, 2})

    def test_negative_weight_clause_active_when_satisfiable(self):
        from repro.grounding.clause_table import GroundClauseStore

        store = GroundClauseStore()
        store.add((-5, 6), -1.0)
        closure = active_closure(store)
        assert len(closure.clauses) == 1

    def test_as_store_round_trip(self):
        from repro.grounding.clause_table import GroundClauseStore

        store = GroundClauseStore()
        store.add((1, 2), 1.0, "F")
        closure = active_closure(store)
        rebuilt = closure.as_store()
        assert len(rebuilt) == 1
        assert rebuilt[0].source == "F"
