"""Tests for column types, schemas, tables and the storage manager."""

import pytest

from repro.rdbms.schema import SchemaError, TableSchema, row_dict
from repro.rdbms.storage import BufferPool, Page, StorageManager
from repro.rdbms.table import Table
from repro.rdbms.types import ColumnType, format_value, infer_type
from repro.utils.clock import CostModel, SimulatedClock


class TestColumnType:
    def test_integer_coercion(self):
        assert ColumnType.INTEGER.coerce(3) == 3
        assert ColumnType.INTEGER.coerce("42") == 42
        assert ColumnType.INTEGER.coerce(True) == 1
        assert ColumnType.INTEGER.coerce(None) is None
        with pytest.raises(TypeError):
            ColumnType.INTEGER.coerce("abc")

    def test_text_coercion(self):
        assert ColumnType.TEXT.coerce("x") == "x"
        assert ColumnType.TEXT.coerce(5) == "5"

    def test_real_and_boolean(self):
        assert ColumnType.REAL.coerce(2) == 2.0
        with pytest.raises(TypeError):
            ColumnType.REAL.coerce("nope")
        assert ColumnType.BOOLEAN.coerce(True) is True
        with pytest.raises(TypeError):
            ColumnType.BOOLEAN.coerce(1)

    def test_truth_is_three_valued(self):
        assert ColumnType.TRUTH.coerce(None) is None
        assert ColumnType.TRUTH.coerce(False) is False
        with pytest.raises(TypeError):
            ColumnType.TRUTH.coerce("true")

    def test_infer_type(self):
        assert infer_type(True) is ColumnType.BOOLEAN
        assert infer_type(1) is ColumnType.INTEGER
        assert infer_type(1.5) is ColumnType.REAL
        assert infer_type("s") is ColumnType.TEXT

    def test_format_value(self):
        assert format_value(None) == "NULL"
        assert format_value(True) == "TRUE"
        assert format_value(3) == "3"
        assert format_value("it's") == "'it''s'"


class TestTableSchema:
    def _schema(self):
        return TableSchema.of(
            ("aid", ColumnType.INTEGER), ("name", ColumnType.TEXT), ("truth", ColumnType.TRUTH)
        )

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.of(("a", ColumnType.TEXT), ("a", ColumnType.TEXT))

    def test_positions_and_contains(self):
        schema = self._schema()
        assert schema.position("name") == 1
        assert "truth" in schema
        assert "missing" not in schema
        with pytest.raises(SchemaError):
            schema.position("missing")

    def test_validate_row_coerces(self):
        schema = self._schema()
        assert schema.validate_row(("7", 3, None)) == (7, "3", None)
        with pytest.raises(SchemaError):
            schema.validate_row((1, "x"))

    def test_project_and_concat_and_prefix(self):
        schema = self._schema()
        projected = schema.project(["truth", "aid"])
        assert projected.column_names == ["truth", "aid"]
        prefixed = schema.rename_prefixed("t0")
        assert prefixed.column_names == ["t0.aid", "t0.name", "t0.truth"]
        combined = schema.concat(prefixed)
        assert len(combined) == 6

    def test_to_sql(self):
        sql = self._schema().to_sql("atoms")
        assert sql.startswith("CREATE TABLE atoms")
        assert "aid INTEGER" in sql

    def test_row_dict(self):
        schema = self._schema()
        assert row_dict(schema, (1, "x", None)) == {"aid": 1, "name": "x", "truth": None}


class TestTable:
    def _table(self, storage=None):
        schema = TableSchema.of(("aid", ColumnType.INTEGER), ("value", ColumnType.TEXT))
        return Table("t", schema, storage=storage)

    def test_insert_and_bulk_load(self):
        table = self._table()
        table.insert((1, "a"))
        loaded = table.bulk_load([(2, "b"), (3, "c")])
        assert loaded == 2
        assert len(table) == 3
        assert table.column_values("value") == ["a", "b", "c"]

    def test_distinct_count_ignores_nulls(self):
        schema = TableSchema.of(("x", ColumnType.TEXT),)
        table = Table("t", schema)
        table.bulk_load([("a",), ("a",), (None,), ("b",)])
        assert table.distinct_count("x") == 2

    def test_select_and_as_dicts(self):
        table = self._table()
        table.bulk_load([(1, "a"), (2, "b")])
        assert table.select(lambda row: row["aid"] > 1) == [(2, "b")]
        assert table.as_dicts()[0] == {"aid": 1, "value": "a"}

    def test_truncate(self):
        table = self._table()
        table.insert((1, "a"))
        table.truncate()
        assert len(table) == 0

    def test_page_count_without_storage(self):
        table = self._table()
        table.bulk_load([(i, "x") for i in range(300)])
        assert table.page_count(page_size=128) == 3


class TestStorageManager:
    def test_pages_fill_in_order(self):
        storage = StorageManager(page_size=2)
        storage.create_table("t")
        addresses = [storage.append_row("t", (i,)) for i in range(5)]
        assert addresses == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]
        assert storage.page_count("t") == 3
        assert storage.row_count("t") == 5

    def test_scan_charges_sequential_reads(self):
        clock = SimulatedClock(CostModel(sequential_page_read=1.0))
        pool = BufferPool(capacity_pages=100, clock=clock)
        storage = StorageManager(page_size=2, buffer_pool=pool)
        storage.bulk_load("t", [(i,) for i in range(6)])
        list(storage.scan("t"))
        assert pool.stats.sequential_reads == 3
        assert clock.now() == pytest.approx(3.0)

    def test_random_access_read_write(self):
        storage = StorageManager(page_size=2)
        storage.bulk_load("t", [(1,), (2,), (3,)])
        assert storage.read_row("t", 1, 0) == (3,)
        storage.write_row("t", 0, 1, (99,))
        assert storage.read_row("t", 0, 1) == (99,)
        assert storage.stats.random_reads >= 2
        assert storage.stats.page_writes >= 1

    def test_missing_page_raises(self):
        storage = StorageManager()
        storage.create_table("t")
        with pytest.raises(KeyError):
            storage.read_row("t", 5, 0)


class TestBufferPool:
    def test_lru_eviction_and_hits(self):
        pool = BufferPool(capacity_pages=2)
        pages = [Page("t", number) for number in range(3)]
        pool.access(pages[0])
        pool.access(pages[1])
        pool.access(pages[0])  # hit
        pool.access(pages[2])  # evicts page 1
        pool.access(pages[1])  # miss again
        assert pool.stats.buffer_hits == 1
        assert pool.stats.buffer_misses == 4
        assert pool.resident_pages() == 2

    def test_misses_charge_clock_hits_do_not(self):
        clock = SimulatedClock(CostModel(page_read=1.0, sequential_page_read=1.0))
        pool = BufferPool(capacity_pages=4, clock=clock)
        page = Page("t", 0)
        pool.access(page, sequential=False)
        pool.access(page, sequential=False)
        assert clock.now() == pytest.approx(1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)
