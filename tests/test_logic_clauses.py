"""Tests for repro.logic.predicates, literals and clauses."""


import pytest

from repro.logic.clauses import ClauseSet, HARD_WEIGHT, WeightedClause, make_clause
from repro.logic.literals import Literal
from repro.logic.predicates import GroundAtom, Predicate, PredicateRegistry, make_atom
from repro.logic.terms import Constant, Variable


CAT = Predicate("cat", ("paper", "category"))
REFERS = Predicate("refers", ("paper", "paper"), closed_world=True)


class TestPredicate:
    def test_arity_and_table_name(self):
        assert CAT.arity == 2
        assert CAT.table_name() == "pred_cat"
        assert str(CAT) == "cat(paper, category)"

    def test_with_closed_world(self):
        closed = CAT.with_closed_world(True)
        assert closed.closed_world is True
        assert closed.name == CAT.name

    def test_registry_conflicting_declaration_rejected(self):
        registry = PredicateRegistry()
        registry.declare(CAT)
        with pytest.raises(ValueError):
            registry.declare(Predicate("cat", ("paper",)))

    def test_registry_partitions_by_world_assumption(self):
        registry = PredicateRegistry()
        registry.declare(CAT)
        registry.declare(REFERS)
        assert [p.name for p in registry.query_predicates()] == ["cat"]
        assert [p.name for p in registry.evidence_predicates()] == ["refers"]

    def test_registry_lookup(self):
        registry = PredicateRegistry()
        registry.declare(CAT)
        assert registry.get("cat") is CAT
        with pytest.raises(KeyError):
            registry.get("unknown")


class TestGroundAtom:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            GroundAtom(CAT, (Constant("P1"),))

    def test_make_atom_and_str(self):
        atom = make_atom(CAT, ["P1", "DB"])
        assert atom.argument_values() == ("P1", "DB")
        assert str(atom) == "cat(P1, DB)"

    def test_atoms_hashable(self):
        assert make_atom(CAT, ["P1", "DB"]) == make_atom(CAT, ["P1", "DB"])
        assert len({make_atom(CAT, ["P1", "DB"]), make_atom(CAT, ["P1", "AI"])}) == 2


class TestLiteral:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Literal(CAT, (Variable("p"),))

    def test_variables_in_order_unique(self):
        literal = Literal(CAT, (Variable("p"), Variable("p")))
        assert literal.variables() == (Variable("p"),)

    def test_negate(self):
        literal = Literal(CAT, (Variable("p"), Constant("DB")))
        assert literal.negate().positive is False
        assert literal.negate().negate() == literal

    def test_substitute_and_to_atom(self):
        literal = Literal(CAT, (Variable("p"), Constant("DB")))
        ground = literal.substitute({Variable("p"): Constant("P9")})
        assert ground.is_ground
        assert ground.to_atom() == make_atom(CAT, ["P9", "DB"])

    def test_to_atom_requires_ground(self):
        with pytest.raises(ValueError):
            Literal(CAT, (Variable("p"), Constant("DB"))).to_atom()

    def test_str_includes_sign(self):
        literal = Literal(CAT, (Variable("p"), Constant("DB")), positive=False)
        assert str(literal) == "!cat(p, DB)"


class TestWeightedClause:
    def _clause(self, weight=1.0):
        return make_clause(
            [
                Literal(CAT, (Variable("p"), Variable("c1")), positive=False),
                Literal(CAT, (Variable("p"), Variable("c2")), positive=False),
            ],
            weight,
            name="F1",
        )

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            WeightedClause((), 1.0)

    def test_hard_flag(self):
        assert self._clause(HARD_WEIGHT).is_hard
        assert not self._clause(2.0).is_hard

    def test_variables_and_predicates(self):
        clause = self._clause()
        assert clause.variables() == (Variable("p"), Variable("c1"), Variable("c2"))
        assert clause.predicates() == (CAT,)

    def test_substitute_produces_ground_clause(self):
        clause = self._clause()
        ground = clause.substitute(
            {Variable("p"): Constant("P1"), Variable("c1"): Constant("DB"), Variable("c2"): Constant("AI")}
        )
        assert ground.is_ground
        assert not clause.is_ground

    def test_equalities_survive_substitution(self):
        clause = WeightedClause(
            (Literal(CAT, (Variable("p"), Variable("c1")), positive=False),),
            5.0,
            "F1",
            ((Variable("c1"), Variable("c2"), True),),
        )
        ground = clause.substitute({Variable("c1"): Constant("DB")})
        assert ground.equalities == ((Constant("DB"), Variable("c2"), True),)

    def test_signature_symmetric_under_literal_order(self):
        a = make_clause(
            [Literal(CAT, (Constant("P1"), Constant("DB"))), Literal(REFERS, (Constant("P1"), Constant("P2")))],
            1.5,
        )
        b = make_clause(
            [Literal(REFERS, (Constant("P1"), Constant("P2"))), Literal(CAT, (Constant("P1"), Constant("DB")))],
            1.5,
        )
        assert a.signature() == b.signature()

    def test_str_mentions_weight_and_name(self):
        text = str(self._clause(5.0))
        assert "F1" in text and "5" in text


class TestClauseSet:
    def test_partitions_hard_and_soft(self):
        clauses = ClauseSet()
        clauses.add(make_clause([Literal(CAT, (Constant("P1"), Constant("DB")))], HARD_WEIGHT))
        clauses.add(make_clause([Literal(CAT, (Constant("P1"), Constant("AI")))], -2.0))
        clauses.add(make_clause([Literal(CAT, (Constant("P2"), Constant("AI")))], 3.0))
        assert len(clauses.hard_clauses()) == 1
        assert len(clauses.soft_clauses()) == 2
        assert clauses.total_weight() == pytest.approx(5.0)

    def test_referencing(self):
        clauses = ClauseSet(
            [make_clause([Literal(REFERS, (Constant("P1"), Constant("P2")))], 1.0)]
        )
        assert len(clauses.referencing("refers")) == 1
        assert clauses.referencing("cat") == []

    def test_indexing_and_len(self):
        clause = make_clause([Literal(CAT, (Constant("P1"), Constant("DB")))], 1.0)
        clauses = ClauseSet([clause])
        assert len(clauses) == 1
        assert clauses[0] is clause
