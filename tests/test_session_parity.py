"""Session parity: warm requests are bit-identical to cold runs.

The session architecture's determinism contract
(:mod:`repro.core.session`): the Nth request on a warm
:class:`~repro.core.session.EngineSession` — reused grounding, MRF,
component decomposition, kernel states and (on the ``processes`` backend)
worker pool — returns bit-for-bit the same assignments, costs, flips,
marginals and simulated seconds as a fresh engine running once with the
same seed, across every parallel backend and worker count.  After an
evidence delta, parity is against a fresh session *replaying the same
call sequence* (registry build, then the ordered ``add_evidence`` calls)
— and the delta re-grounds only the clauses touching changed predicates,
asserted via the grounding delta report's counters.
"""

import pytest

from repro.core.config import InferenceConfig
from repro.core.engine import TuffyEngine
from repro.core.program import MLNProgram
from repro.datasets import DatasetScale, load_dataset
from repro.datasets.example1 import example1_mrf
from repro.mrf.components import connected_components
from repro.parallel import processes_available
from repro.parallel import pool as pool_module
from repro.parallel.buffers import ComponentBufferSet
from repro.parallel.pool import BoundedStateCache, WorkerPool

BACKENDS = [
    backend for backend in ("serial", "threads", "processes")
    if backend != "processes" or processes_available()
]
WORKER_COUNTS = (1, 2, 4)

PROGRAM_TEXT = """
*wrote(author, paper)
*refers(paper, paper)
cat(paper, category)
5 cat(p, c1), cat(p, c2) => c1 = c2
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2 cat(p1, c), refers(p1, p2) => cat(p2, c)
-1 cat(p, "Networking")
"""

EVIDENCE_TEXT = """
wrote(Joe, P1)
wrote(Joe, P2)
wrote(Jake, P3)
refers(P1, P3)
cat(P2, "DB")
"""

TWO_ISLANDS_TEXT = """
*link(node, node)
label(node, tag)
2 link(a, b), label(a, t) => label(b, t)
-0.5 label(n, "Bad")
"""

TWO_ISLANDS_EVIDENCE = """
link(A1, A2)
link(B1, B2)
label(A1, "Good")
"""


def figure1_program():
    program = MLNProgram.from_text(PROGRAM_TEXT, EVIDENCE_TEXT)
    program.add_constants("category", ["DB", "AI", "Networking"])
    return program


def two_islands_program():
    program = MLNProgram.from_text(TWO_ISLANDS_TEXT, TWO_ISLANDS_EVIDENCE)
    program.add_constants("tag", ["Good", "Bad"])
    return program


def _rc_config(**overrides):
    defaults = dict(seed=0, max_flips=1500)
    defaults.update(overrides)
    return InferenceConfig(**defaults)


def _rc_program():
    return load_dataset("RC", DatasetScale(factor=0.25, seed=0)).program


def _assert_same_map(result, reference, key=None, include_simulated=False):
    assert result.assignment == reference.assignment, key
    assert result.cost == reference.cost, key
    assert result.flips == reference.flips, key
    assert result.component_count == reference.component_count, key
    if include_simulated:
        assert result.simulated_seconds == reference.simulated_seconds, key
    else:
        # A warm request never pays *more* simulated I/O than a cold run —
        # the simulated buffer cache can only absorb repeated scans.
        assert result.simulated_seconds <= reference.simulated_seconds, key


class TestWarmMapParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_third_request_matches_cold_run(self, backend, workers):
        config = _rc_config(parallel_backend=backend, workers=workers)
        cold = TuffyEngine(_rc_program(), config).run_map()
        with TuffyEngine(_rc_program(), _rc_config(parallel_backend=backend, workers=workers)) as engine:
            first = engine.run_map()
            _assert_same_map(first, cold, key=(backend, workers), include_simulated=True)
            warm = None
            for _request in range(2):
                warm = engine.run_map()
            _assert_same_map(warm, cold, key=(backend, workers))
            assert {"grounding", "search"} <= set(warm.phase_seconds)
            assert engine.stats.ground_runs == 1

    def test_per_request_seed_override_matches_cold_seed(self):
        cold = TuffyEngine(_rc_program(), _rc_config(seed=7)).run_map()
        with TuffyEngine(_rc_program(), _rc_config(seed=0)) as engine:
            engine.run_map()  # warm up on the default seed
            warm = engine.run_map(seed=7)
            _assert_same_map(warm, cold)

    def test_monolithic_requests_reuse_state_bit_identically(self):
        config = InferenceConfig(seed=0, max_flips=5000, use_partitioning=False)
        cold = TuffyEngine(figure1_program(), config).run_map()
        with TuffyEngine(
            figure1_program(),
            InferenceConfig(seed=0, max_flips=5000, use_partitioning=False),
        ) as engine:
            warm = None
            for _request in range(3):
                warm = engine.run_map()
            _assert_same_map(warm, cold)
            # The full-MRF kernel state is cached across requests (checked
            # back into the lease once no request holds it).
            kernel_backend = engine.config.kernel_backend
            assert engine.session._state_lease.held(("monolithic", kernel_backend))


class TestWarmMarginalParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_third_request_matches_cold_run(self, backend):
        config = _rc_config(parallel_backend=backend, workers=2, mcsat_samples=20)
        cold = TuffyEngine(_rc_program(), config).run_marginal()
        with TuffyEngine(
            _rc_program(),
            _rc_config(parallel_backend=backend, workers=2, mcsat_samples=20),
        ) as engine:
            warm = None
            for _request in range(3):
                warm = engine.run_marginal()
            assert warm.marginals.probabilities == cold.marginals.probabilities, backend
            assert warm.assignment == cold.assignment, backend
            assert warm.cost == cold.cost, backend
            assert warm.simulated_seconds == cold.simulated_seconds, backend

    def test_no_partitioning_reports_one_component_without_detection(self):
        # Regression: run_marginal used to *unconditionally* run component
        # detection just to report the count, even with partitioning off.
        config = InferenceConfig(
            seed=0, use_partitioning=False, mcsat_samples=10
        )
        engine = TuffyEngine(figure1_program(), config)
        result = engine.run_marginal()
        assert engine.components is None  # detection never ran
        assert result.component_count == 1

    def test_no_partitioning_reuses_existing_decomposition(self):
        config = InferenceConfig(
            seed=0, use_partitioning=False, mcsat_samples=10
        )
        engine = TuffyEngine(two_islands_program(), config)
        detected = engine.detect_components().component_count
        assert detected > 1
        result = engine.run_marginal()
        assert result.component_count == detected


class TestEvidenceDelta:
    def test_delta_regrounds_only_clauses_touching_changed_predicate(self):
        with TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=3000)) as engine:
            engine.run_map()
            first = engine.session.last_ground_report
            assert not first.is_delta
            assert first.queries_executed == 4
            assert first.clauses_replayed == 0
            # Delta on 'wrote': only the co-author rule reads it; the other
            # three clauses replay and only the wrote table reloads.
            engine.add_evidence("wrote", ("Jake", "P2"))
            engine.run_map()
            report = engine.session.last_ground_report
            assert report.is_delta
            assert report.queries_executed == 1
            assert report.clauses_replayed == 3
            assert report.atom_tables_loaded == 1
            assert report.atom_tables_reused == 2
            assert engine.stats.ground_runs == 2
            assert engine.stats.delta_ground_runs == 1

    def test_delta_request_matches_replaying_comparator(self):
        def drive(config):
            engine = TuffyEngine(figure1_program(), config)
            engine.ground()  # fix the registry before the delta, per contract
            engine.add_evidence("wrote", ("Jake", "P2"))
            map_result = engine.run_map()
            marginal_result = engine.run_marginal()
            engine.close()
            return map_result, marginal_result

        # Warm session: grounds once, deltas, re-grounds via clause replay.
        with TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=3000)) as warm_engine:
            warm_engine.run_map()
            warm_engine.add_evidence("wrote", ("Jake", "P2"))
            warm_map = warm_engine.run_map()
            warm_marginal = warm_engine.run_marginal()

        # Comparator 1: fresh session replaying the same call sequence.
        replay_map, replay_marginal = drive(InferenceConfig(seed=0, max_flips=3000))
        # Comparator 2: replay cache disabled — every clause re-executes its
        # relational query, proving replayed stores match executed stores.
        full_map, full_marginal = drive(
            InferenceConfig(seed=0, max_flips=3000, delta_grounding=False)
        )

        for other in (replay_map, full_map):
            assert warm_map.assignment == other.assignment
            assert warm_map.cost == other.cost
            assert warm_map.flips == other.flips
        for other in (replay_marginal, full_marginal):
            assert warm_marginal.marginals.probabilities == other.marginals.probabilities

    def test_delta_adopts_structurally_unchanged_components(self):
        with TuffyEngine(two_islands_program(), InferenceConfig(seed=0, max_flips=2000)) as engine:
            first = engine.run_map()
            assert first.component_count > 1
            # Fixing a label on island B rewrites B's ground clauses but
            # leaves island A structurally identical — A's MRF is adopted.
            engine.add_evidence("label", ("B1", "Good"))
            engine.run_map()
            assert engine.stats.components_adopted >= 1
            assert engine.stats.components_rebuilt >= 1


class TestEvidenceRetraction:
    """remove_evidence mirrors add_evidence: same delta machinery, same contract."""

    def test_retraction_regrounds_only_clauses_touching_changed_predicate(self):
        with TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=3000)) as engine:
            engine.run_map()
            # Retract a 'wrote' fact: only the co-author rule reads it; the
            # other three clauses replay and only the wrote table reloads —
            # the exact counters of the add-evidence delta.
            atom = engine.remove_evidence("wrote", ("Joe", "P2"))
            engine.run_map()
            report = engine.session.last_ground_report
            assert report.is_delta
            assert report.queries_executed == 1
            assert report.clauses_replayed == 3
            assert report.atom_tables_loaded == 1
            assert report.atom_tables_reused == 2
            assert engine.stats.ground_runs == 2
            assert engine.stats.delta_ground_runs == 1
            # 'wrote' is closed-world: the record survives with the
            # closed-world default truth, never as a query variable.
            registry = engine.session.registry()
            atom_id = registry.lookup("wrote", atom.argument_values())
            assert registry.truth(atom_id) is False

    def test_open_world_retraction_reopens_the_atom_as_a_variable(self):
        with TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=3000)) as engine:
            engine.run_map()
            # 'cat' is open-world and read by all four clauses: everything
            # re-executes, and only the cat atom table reloads.
            atom = engine.remove_evidence("cat", ("P2", "DB"))
            result = engine.run_map()
            report = engine.session.last_ground_report
            # Every clause reads 'cat', so nothing replays (is_delta False).
            assert report.queries_executed == 4
            assert report.clauses_replayed == 0
            assert report.atom_tables_loaded == 1
            assert report.atom_tables_reused == 2
            registry = engine.session.registry()
            atom_id = registry.lookup("cat", atom.argument_values())
            assert registry.truth(atom_id) is None
            # The retracted atom is a search variable again.
            assert atom_id in result.assignment

    def test_retraction_matches_replaying_comparator(self):
        def drive(config):
            engine = TuffyEngine(figure1_program(), config)
            engine.ground()  # fix the registry before the delta, per contract
            engine.remove_evidence("wrote", ("Joe", "P2"))
            map_result = engine.run_map()
            marginal_result = engine.run_marginal()
            engine.close()
            return map_result, marginal_result

        with TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=3000)) as warm_engine:
            warm_engine.run_map()
            warm_engine.remove_evidence("wrote", ("Joe", "P2"))
            warm_map = warm_engine.run_map()
            warm_marginal = warm_engine.run_marginal()

        # Comparator 1: fresh session replaying the same call sequence.
        replay_map, replay_marginal = drive(InferenceConfig(seed=0, max_flips=3000))
        # Comparator 2: replay cache disabled — every clause re-executes its
        # relational query, proving replayed stores match executed stores.
        full_map, full_marginal = drive(
            InferenceConfig(seed=0, max_flips=3000, delta_grounding=False)
        )

        for other in (replay_map, full_map):
            assert warm_map.assignment == other.assignment
            assert warm_map.cost == other.cost
            assert warm_map.flips == other.flips
        for other in (replay_marginal, full_marginal):
            assert warm_marginal.marginals.probabilities == other.marginals.probabilities

    def test_add_then_retract_round_trip_is_replayable(self):
        def drive(config):
            engine = TuffyEngine(figure1_program(), config)
            engine.ground()
            engine.add_evidence("wrote", ("Jake", "P2"))
            engine.remove_evidence("wrote", ("Jake", "P2"))
            result = engine.run_map()
            engine.close()
            return result

        warm = drive(InferenceConfig(seed=0, max_flips=3000))
        replay = drive(InferenceConfig(seed=0, max_flips=3000))
        assert warm.assignment == replay.assignment
        assert warm.cost == replay.cost
        assert warm.flips == replay.flips

    def test_retract_then_reassert_restores_the_original_result(self):
        # Re-asserting a retracted closed-world fact must not trip the
        # conflicting-evidence check: the retraction default (False) is
        # not asserted evidence.  The round trip lands back on the
        # original result (atom ids are stable across the cycle).
        with TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=3000)) as engine:
            baseline = engine.run_map()
            engine.remove_evidence("wrote", ("Joe", "P2"))
            engine.run_map()
            engine.add_evidence("wrote", ("Joe", "P2"))
            restored = engine.run_map()
            assert restored.assignment == baseline.assignment
            assert restored.cost == baseline.cost
            assert restored.flips == baseline.flips
            assert engine.stats.ground_runs == 3

    def test_retracting_unknown_fact_raises(self):
        from repro.core.errors import ProgramError

        with TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=3000)) as engine:
            with pytest.raises(ProgramError):
                engine.remove_evidence("wrote", ("Nobody", "P999"))


@pytest.mark.skipif(not processes_available(), reason="fork start method unavailable")
class TestPersistentPool:
    def test_pool_forked_once_and_shared_across_request_kinds(self):
        config = _rc_config(
            parallel_backend="processes", workers=2, mcsat_samples=10
        )
        with TuffyEngine(_rc_program(), config) as engine:
            engine.run_map()
            engine.run_map()
            engine.run_marginal()
            assert engine.stats.pool_launches == 1
        assert engine.session._pool_holder["pool"] is None

    def test_evidence_delta_tears_down_and_reforks_the_pool(self):
        config = InferenceConfig(
            seed=0, max_flips=2000, parallel_backend="processes", workers=2
        )
        with TuffyEngine(two_islands_program(), config) as engine:
            engine.run_map()
            assert engine.stats.pool_launches == 1
            engine.add_evidence("label", ("B1", "Good"))
            engine.run_map()
            assert engine.stats.pool_launches == 2

    def test_persistent_pool_off_never_launches_a_session_pool(self):
        config = _rc_config(
            parallel_backend="processes", workers=2, persistent_pool=False
        )
        with TuffyEngine(_rc_program(), config) as engine:
            engine.run_map()
            engine.run_map()
            assert engine.stats.pool_launches == 0


class TestWorkerPoolLifecycle:
    @pytest.fixture()
    def components(self):
        return connected_components(example1_mrf(8)).components

    @pytest.mark.skipif(
        not processes_available(), reason="fork start method unavailable"
    )
    def test_context_manager_shuts_down_on_exit(self, components):
        with WorkerPool(components, 2) as pool:
            assert pool.matches(components)
        assert pool._closed
        assert not pool.matches(components)

    def test_constructor_failure_destroys_shared_memory(self, components, monkeypatch):
        destroyed = []
        original_destroy = ComponentBufferSet.destroy

        def spying_destroy(self):
            destroyed.append(True)
            original_destroy(self)

        class ExplodingContext:
            def Queue(self):
                raise RuntimeError("queue construction failed")

        monkeypatch.setattr(ComponentBufferSet, "destroy", spying_destroy)
        monkeypatch.setattr(
            pool_module.multiprocessing,
            "get_context",
            lambda method: ExplodingContext(),
        )
        with pytest.raises(RuntimeError, match="queue construction failed"):
            WorkerPool(components, 2)
        assert destroyed, "shared-memory segment leaked on constructor failure"


class TestBoundedStateCache:
    def test_evicts_least_recently_used_beyond_limit(self):
        cache = BoundedStateCache(limit=3)
        for index in range(5):
            cache.put((index, "flat"), object())
        assert len(cache) == 3
        assert cache.get((0, "flat")) is None
        assert cache.get((1, "flat")) is None
        assert cache.get((4, "flat")) is not None

    def test_get_refreshes_recency(self):
        cache = BoundedStateCache(limit=2)
        first, second, third = object(), object(), object()
        cache.put((1, "flat"), first)
        cache.put((2, "flat"), second)
        assert cache.get((1, "flat")) is first  # refresh 1; 2 becomes LRU
        cache.put((3, "flat"), third)
        assert cache.get((2, "flat")) is None
        assert cache.get((1, "flat")) is first

    def test_worker_cache_limit_is_bounded(self):
        assert pool_module.WORKER_STATE_CACHE_LIMIT >= 1
        cache = BoundedStateCache()
        for index in range(pool_module.WORKER_STATE_CACHE_LIMIT + 10):
            cache.put((index, "flat"), object())
        assert len(cache) == pool_module.WORKER_STATE_CACHE_LIMIT
