"""Columnar execution backend: operator-level and plan-level parity.

Every test drives the same plan (or expression) through the row engine and
the columnar engine and asserts *ordered* equality — the columnar engine
reproduces the iterator model's output order exactly, which the grounding
pipeline relies on for bit-identical results.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.rdbms.column_batch import (
    NULL_CODE,
    ColumnarContext,
    ValueEncoder,
    composite_codes,
    first_occurrence_indices,
    hash_join_indices,
)
from repro.rdbms.database import Database
from repro.rdbms.executor import (
    COLUMNAR_AUTO_MIN_ROWS,
    EXECUTION_BACKENDS,
    Executor,
    available_execution_backends,
    resolve_execution_backend,
)
from repro.rdbms.expressions import (
    And,
    ColumnRef,
    Comparison,
    Const,
    IsNull,
    Not,
    Or,
)
from repro.rdbms.operators import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Sort,
    SortMergeJoin,
    TableScan,
    iter_plan,
)
from repro.rdbms.optimizer import ConjunctiveQuery, OptimizerOptions
from repro.rdbms.schema import TableSchema
from repro.rdbms.table import Table
from repro.rdbms.types import ColumnType


def make_table(name, columns, rows):
    schema = TableSchema.of(*columns)
    table = Table(name, schema)
    table.bulk_load(rows)
    return table


@pytest.fixture
def people():
    return make_table(
        "people",
        [("pid", ColumnType.INTEGER), ("name", ColumnType.TEXT), ("city", ColumnType.TEXT)],
        [
            (1, "ann", "NYC"),
            (2, "bob", None),
            (3, "cat", "LA"),
            (4, "dan", "NYC"),
            (5, "eve", "SF"),
            (6, "ann", "LA"),
        ],
    )


@pytest.fixture
def visits():
    return make_table(
        "visits",
        [("vid", ColumnType.INTEGER), ("city", ColumnType.TEXT), ("score", ColumnType.INTEGER)],
        [
            (10, "NYC", 3),
            (11, "LA", 1),
            (12, "NYC", 7),
            (13, None, 9),
            (14, "SF", 2),
            (15, "LA", 4),
        ],
    )


def run_both(plan_factory):
    """Execute a freshly built plan on each backend, returning both row lists.

    Separate plan instances keep operator counters independent so they can
    be compared too.
    """
    row_plan = plan_factory()
    col_plan = plan_factory()
    executor = Executor("row")
    rows = executor.execute(row_plan, backend="row").rows
    cols = executor.execute(col_plan, backend="columnar").rows
    return rows, cols, row_plan, col_plan


class TestEncoder:
    def test_codes_are_value_equality(self):
        encoder = ValueEncoder()
        codes = encoder.encode_values(["a", "b", "a", None, 1, True, 1.0])
        assert codes[0] == codes[2]
        assert codes[3] == NULL_CODE
        # dict semantics: 1 == True == 1.0 share one code, like Python ==.
        assert codes[4] == codes[5] == codes[6]
        assert encoder.decode_list(codes[:4]) == ["a", "b", "a", None]

    def test_lookup_without_interning(self):
        encoder = ValueEncoder()
        encoder.encode_values(["x"])
        before = len(encoder)
        assert encoder.lookup("nope") not in (encoder.lookup("x"), NULL_CODE)
        assert len(encoder) == before


class TestKernels:
    def test_composite_codes_group_by_all_columns(self):
        a = np.array([1, 1, 2, 1], dtype=np.int64)
        b = np.array([5, 5, 5, 6], dtype=np.int64)
        gid = composite_codes([a, b])
        assert gid[0] == gid[1]
        assert len({gid[0], gid[2], gid[3]}) == 3

    def test_first_occurrence_preserves_order(self):
        gids = np.array([7, 3, 7, 3, 9], dtype=np.int64)
        assert first_occurrence_indices(gids).tolist() == [0, 1, 4]

    def test_hash_join_indices_probe_major_build_order(self):
        left = [np.array([1, 2, 1], dtype=np.int64)]
        right = [np.array([1, 1, 2], dtype=np.int64)]
        left_idx, right_idx, build_count = hash_join_indices(left, right)
        assert build_count == 3
        assert left_idx.tolist() == [0, 0, 1, 2, 2]
        assert right_idx.tolist() == [0, 1, 2, 0, 1]

    def test_hash_join_nulls_never_match(self):
        left = [np.array([1, NULL_CODE], dtype=np.int64)]
        right = [np.array([NULL_CODE, 1], dtype=np.int64)]
        left_idx, right_idx, build_count = hash_join_indices(left, right)
        assert build_count == 1
        assert left_idx.tolist() == [0]
        assert right_idx.tolist() == [1]


class TestExpressionParity:
    EXPRESSIONS = [
        Comparison("=", ColumnRef("p.city"), Const("NYC")),
        Comparison("!=", ColumnRef("p.city"), Const("NYC")),
        Comparison("is_distinct_from", ColumnRef("p.city"), Const("NYC")),
        Comparison("is_not_distinct_from", ColumnRef("p.city"), Const(None)),
        Comparison("<", ColumnRef("p.pid"), Const(4)),
        Comparison(">=", ColumnRef("p.name"), Const("cat")),
        IsNull(ColumnRef("p.city")),
        IsNull(ColumnRef("p.city"), negated=True),
        And.of(
            Comparison(">", ColumnRef("p.pid"), Const(1)),
            Comparison("=", ColumnRef("p.city"), Const("LA")),
        ),
        Or.of(
            Comparison("=", ColumnRef("p.name"), Const("ann")),
            IsNull(ColumnRef("p.city")),
        ),
        Not(Comparison("=", ColumnRef("p.city"), Const("NYC"))),
        And(()),
        Or(()),
    ]

    @pytest.mark.parametrize("expression", EXPRESSIONS, ids=lambda e: e.to_sql())
    def test_filter_matches_row_engine(self, people, expression):
        rows, cols, _, _ = run_both(
            lambda: Filter(TableScan(people, "p"), expression)
        )
        assert rows == cols


class TestOperatorParity:
    def test_scan(self, people):
        rows, cols, row_plan, col_plan = run_both(lambda: TableScan(people, "p"))
        assert rows == cols
        assert row_plan.rows_scanned == col_plan.rows_scanned == len(people)

    def test_project_with_rename(self, people):
        rows, cols, _, _ = run_both(
            lambda: Project(TableScan(people, "p"), ["p.city", "p.pid"], ["c", "i"])
        )
        assert rows == cols

    def test_hash_join_order_and_counters(self, people, visits):
        def build():
            return HashJoin(
                TableScan(people, "p"),
                TableScan(visits, "v"),
                ["p.city"],
                ["v.city"],
            )

        rows, cols, row_plan, col_plan = run_both(build)
        assert rows == cols
        assert row_plan.build_rows == col_plan.build_rows
        assert row_plan.probe_rows == col_plan.probe_rows

    def test_hash_join_with_residual(self, people, visits):
        rows, cols, _, _ = run_both(
            lambda: HashJoin(
                TableScan(people, "p"),
                TableScan(visits, "v"),
                ["p.city"],
                ["v.city"],
                residual=Comparison(">", ColumnRef("v.score"), Const(2)),
            )
        )
        assert rows == cols

    def test_nested_loop_join(self, people, visits):
        def build():
            return NestedLoopJoin(
                TableScan(people, "p"),
                TableScan(visits, "v"),
                Comparison("=", ColumnRef("p.city"), ColumnRef("v.city")),
            )

        rows, cols, row_plan, col_plan = run_both(build)
        assert rows == cols
        assert row_plan.comparisons == col_plan.comparisons

    def test_nested_loop_cross_product(self, people, visits):
        rows, cols, _, _ = run_both(
            lambda: NestedLoopJoin(TableScan(people, "p"), TableScan(visits, "v"))
        )
        assert rows == cols

    def test_sort_merge_join(self, people, visits):
        rows, cols, _, _ = run_both(
            lambda: SortMergeJoin(
                TableScan(people, "p"),
                TableScan(visits, "v"),
                ["p.city"],
                ["v.city"],
            )
        )
        assert rows == cols

    def test_distinct_keeps_first_occurrence(self, people):
        rows, cols, _, _ = run_both(
            lambda: Distinct(Project(TableScan(people, "p"), ["p.city"]))
        )
        assert rows == cols

    def test_sort(self, people):
        rows, cols, _, _ = run_both(
            lambda: Sort(TableScan(people, "p"), ["p.name", "p.pid"])
        )
        assert rows == cols

    def test_limit(self, people):
        rows, cols, _, _ = run_both(lambda: Limit(TableScan(people, "p"), 3))
        assert rows == cols

    def test_aggregate_native_batch_parity(self, visits):
        rows, cols, _, _ = run_both(
            lambda: Aggregate(
                TableScan(visits, "v"),
                ["v.city"],
                [("count", "v.vid", "n"), ("collect", "v.score", "scores")],
            )
        )
        assert rows == cols
        # Groups in first-occurrence order, including the NULL-city group.
        assert [row[0] for row in rows] == ["NYC", "LA", None, "SF"]

    def test_aggregate_array_agg_ordered_parity(self, people):
        """array_agg (collect): member values in row order per group, NULL
        inputs dropped — ordered parity with the iterator model."""
        rows, cols, _, _ = run_both(
            lambda: Aggregate(
                TableScan(people, "p"),
                ["p.name"],
                [("collect", "p.city", "cities")],
            )
        )
        assert rows == cols
        by_name = dict(rows)
        assert by_name["ann"] == ("NYC", "LA")  # row order within the group
        assert by_name["bob"] == ()  # NULL input dropped

    def test_aggregate_every_function_and_multi_key(self, visits):
        rows, cols, _, _ = run_both(
            lambda: Aggregate(
                TableScan(visits, "v"),
                ["v.city"],
                [
                    ("count", "v.score", "n"),
                    ("sum", "v.score", "total"),
                    ("min", "v.score", "lo"),
                    ("max", "v.score", "hi"),
                    ("collect", "v.score", "all"),
                ],
            )
        )
        assert rows == cols

    def test_aggregate_no_group_by(self, visits):
        rows, cols, _, _ = run_both(
            lambda: Aggregate(
                TableScan(visits, "v"), [], [("sum", "v.score", "total")]
            )
        )
        assert rows == cols == [(26,)]

    def test_aggregate_empty_input(self):
        empty = make_table("empty_agg", [("x", ColumnType.INTEGER)], [])
        rows, cols, _, _ = run_both(
            lambda: Aggregate(TableScan(empty, "e"), ["e.x"], [("count", "e.x", "n")])
        )
        assert rows == cols == []

    def test_empty_table(self):
        empty = make_table("empty", [("x", ColumnType.INTEGER)], [])
        rows, cols, _, _ = run_both(
            lambda: Filter(
                TableScan(empty, "e"), Comparison("=", ColumnRef("e.x"), Const(1))
            )
        )
        assert rows == cols == []


class TestRandomizedPlanParity:
    """Property test: random data, every optimizer plan shape, ordered parity."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_planned_query_parity(self, seed):
        rng = random.Random(seed)
        db = Database()
        values = [f"v{i}" for i in range(rng.randint(2, 6))]

        def random_rows(count, arity):
            return [
                tuple(
                    [index]
                    + [rng.choice(values + [None]) for _ in range(arity)]
                    + [rng.choice([True, False, None])]
                )
                for index in range(count)
            ]

        schema2 = TableSchema.of(
            ("aid", ColumnType.INTEGER),
            ("arg0", ColumnType.TEXT),
            ("arg1", ColumnType.TEXT),
            ("truth", ColumnType.TRUTH),
        )
        db.create_table("r", schema2)
        db.bulk_load("r", random_rows(rng.randint(0, 40), 2))
        db.create_table("s", schema2)
        db.bulk_load("s", random_rows(rng.randint(0, 40), 2))

        query = ConjunctiveQuery()
        query.add_relation("t0", "r")
        query.add_relation("t1", "s")
        query.add_join("t0.arg1", "t1.arg0")
        if rng.random() < 0.5:
            query.add_constant_filter("t0.truth", "is_distinct_from", True)
        if rng.random() < 0.5:
            query.add_constant_filter("t1.arg1", "=", rng.choice(values))
        if rng.random() < 0.5:
            query.add_column_comparison("t0.arg0", "!=", "t1.arg1")
        query.add_output("t0.aid", "a0")
        query.add_output("t1.aid", "a1")
        query.add_output("t1.truth", "tr")
        query.distinct = rng.random() < 0.3

        for options in (
            OptimizerOptions.full_optimizer(),
            OptimizerOptions.fixed_join_order(),
            OptimizerOptions.nested_loop_only(),
            OptimizerOptions(enable_hash_join=False),  # sort-merge join
            OptimizerOptions(enable_predicate_pushdown=False),
        ):
            row_result = db.execute(query, options, backend="row")
            col_result = db.execute(query, options, backend="columnar")
            assert row_result.rows == col_result.rows


class TestIOAccountingParity:
    def test_columnar_scan_charges_same_pages(self):
        def fresh_db():
            db = Database(page_size=16)
            schema = TableSchema.of(
                ("aid", ColumnType.INTEGER), ("arg0", ColumnType.TEXT), ("truth", ColumnType.TRUTH)
            )
            db.create_table("p", schema)
            db.bulk_load(
                "p", [(i, f"c{i % 7}", (True, False, None)[i % 3]) for i in range(100)]
            )
            return db

        def query():
            q = ConjunctiveQuery()
            q.add_relation("t0", "p")
            q.add_relation("t1", "p")
            q.add_join("t0.arg0", "t1.arg0")
            q.add_constant_filter("t0.truth", "is_distinct_from", True)
            q.add_output("t0.aid", "a0")
            q.add_output("t1.aid", "a1")
            return q

        stats = {}
        options = OptimizerOptions(charge_io=True)
        for backend in ("row", "columnar"):
            db = fresh_db()
            db.reset_io_statistics()
            db.execute(query(), options, backend=backend)
            stats[backend] = db.io_statistics().as_dict()
        assert stats["row"] == stats["columnar"]

    def test_columnar_rescan_charges_every_execution(self):
        db = Database(page_size=16)
        schema = TableSchema.of(("x", ColumnType.INTEGER),)
        db.create_table("n", schema)
        db.bulk_load("n", [(i,) for i in range(64)])
        q = ConjunctiveQuery()
        q.add_relation("t0", "n")
        q.add_output("t0.x", "x")
        options = OptimizerOptions(charge_io=True)
        db.reset_io_statistics()
        db.execute(q, options, backend="columnar")
        first = db.io_statistics().page_reads
        db.execute(q, options, backend="columnar")
        # The column cache avoids re-encoding but never avoids I/O charges.
        assert db.io_statistics().page_reads == 2 * first


class TestBackendResolution:
    def test_explicit_backends(self, people):
        plan = TableScan(people, "p")
        assert resolve_execution_backend(plan, "row") == "row"
        assert resolve_execution_backend(plan, "columnar") == "columnar"
        with pytest.raises(ValueError):
            resolve_execution_backend(plan, "gpu")

    def test_auto_uses_table_size_crossover(self):
        small = make_table("small", [("x", ColumnType.INTEGER)], [(1,), (2,)])
        big = make_table(
            "big",
            [("x", ColumnType.INTEGER)],
            [(i,) for i in range(COLUMNAR_AUTO_MIN_ROWS)],
        )
        assert resolve_execution_backend(TableScan(small, "s"), "auto") == "row"
        assert resolve_execution_backend(TableScan(big, "b"), "auto") == "columnar"
        join = HashJoin(TableScan(small, "s"), TableScan(big, "b"), ["s.x"], ["b.x"])
        assert resolve_execution_backend(join, "auto") == "columnar"

    def test_available_backends_and_constants(self):
        assert "columnar" in available_execution_backends()
        assert set(EXECUTION_BACKENDS) == {"auto", "row", "columnar"}

    def test_iter_plan_visits_every_operator(self, people, visits):
        plan = Filter(
            HashJoin(
                TableScan(people, "p"), TableScan(visits, "v"), ["p.city"], ["v.city"]
            ),
            Comparison(">", ColumnRef("v.score"), Const(0)),
        )
        kinds = {type(op).__name__ for op in iter_plan(plan)}
        assert kinds == {"Filter", "HashJoin", "TableScan"}


class TestTableVersioning:
    def test_mutations_invalidate_column_cache(self, people):
        context = ColumnarContext()
        first = context.table_columns(people)
        assert context.table_columns(people) is first  # cached
        people.insert((7, "fred", "SF"))
        second = context.table_columns(people)
        assert second is not first
        assert len(second[0]) == len(people)
        people.truncate()
        assert len(context.table_columns(people)[0]) == 0
