"""Tests for the MRF graph, cost function, union-find and components."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.example1 import example1_mrf, example1_optimal_cost, example1_store
from repro.grounding.clause_table import GroundClause, GroundClauseStore
from repro.mrf.components import connected_components
from repro.mrf.cost import (
    all_false_assignment,
    assignment_cost,
    clause_satisfied,
    clause_violated,
    cost_decomposes_over_components,
    violated_clauses,
)
from repro.mrf.graph import MRF
from repro.mrf.union_find import UnionFind


def small_store():
    store = GroundClauseStore()
    store.add((1, -2), 1.0, "a")
    store.add((2, 3), 2.0, "b")
    store.add((4,), math.inf, "hard")
    store.add((5, -6), -0.5, "neg")
    return store


class TestUnionFind:
    def test_union_and_find(self):
        dsu = UnionFind(range(5))
        dsu.union(0, 1)
        dsu.union(3, 4)
        assert dsu.connected(0, 1)
        assert not dsu.connected(1, 3)
        assert dsu.component_size(0) == 2
        assert dsu.component_count() == 3

    def test_groups(self):
        dsu = UnionFind()
        dsu.union("a", "b")
        dsu.add("c")
        groups = dsu.groups()
        assert sorted(len(members) for members in groups.values()) == [1, 2]

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("nope")

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_connectivity_matches_reference(self, edges):
        """Union-find must agree with a straightforward graph traversal."""
        import networkx as nx

        dsu = UnionFind(range(21))
        graph = nx.Graph()
        graph.add_nodes_from(range(21))
        for left, right in edges:
            dsu.union(left, right)
            graph.add_edge(left, right)
        reference = {frozenset(c) for c in nx.connected_components(graph)}
        ours = {frozenset(members) for members in dsu.groups().values()}
        assert ours == reference


class TestMRFGraph:
    def test_from_store_builds_adjacency(self):
        mrf = MRF.from_store(small_store())
        assert mrf.atom_count == 6
        assert mrf.clause_count == 4
        assert mrf.total_literals() == 7
        assert mrf.size() == 13
        assert mrf.degree(2) == 2
        assert set(mrf.clauses_of_atom(2)) == {0, 1}
        assert mrf.neighbors(2) == frozenset({1, 3})

    def test_subgraph_and_cut(self):
        mrf = MRF.from_store(small_store())
        sub = mrf.subgraph({1, 2})
        assert sub.clause_count == 1
        assert sub.atom_count == 2
        cut = mrf.cut_clauses({2})
        assert {clause.literals for clause in cut} == {(1, -2), (2, 3)}

    def test_total_soft_weight_excludes_hard(self):
        mrf = MRF.from_store(small_store())
        assert mrf.total_soft_weight() == pytest.approx(3.5)

    def test_extra_atoms_become_isolated_nodes(self):
        mrf = MRF.from_clauses([GroundClause(1, (1,), 1.0)], extra_atoms=[7])
        assert 7 in mrf.atom_ids
        assert mrf.degree(7) == 0


class TestCostFunction:
    def test_clause_satisfaction(self):
        clause = GroundClause(1, (1, -2), 1.0)
        assert clause_satisfied(clause, {1: True, 2: True})
        assert not clause_satisfied(clause, {1: False, 2: True})
        assert clause_violated(clause, {1: False, 2: True})

    def test_negative_weight_violation(self):
        clause = GroundClause(1, (1,), -2.0)
        assert clause_violated(clause, {1: True})
        assert not clause_violated(clause, {1: False})

    def test_missing_atoms_default_false(self):
        clause = GroundClause(1, (-3,), 1.0)
        assert clause_satisfied(clause, {})

    def test_assignment_cost_with_hard_clauses(self):
        mrf = MRF.from_store(small_store())
        assignment = all_false_assignment(mrf)
        assert assignment_cost(mrf, assignment) == math.inf
        finite = assignment_cost(mrf, assignment, hard_as_infinite=False, hard_penalty=100.0)
        # Violations when all false: clause b (2,3), hard clause (4,); the
        # negative clause (5,-6) is satisfied via -6, hence also violated.
        assert finite == pytest.approx(2.0 + 100.0 + 0.5)
        assert len(violated_clauses(mrf, assignment)) == 3

    def test_cost_decomposes_over_components(self):
        mrf = example1_mrf(6)
        decomposition = connected_components(mrf)
        assert decomposition.component_count == 6
        assignment = {atom: bool(atom % 2) for atom in mrf.atom_ids}
        total = assignment_cost(mrf, assignment, hard_as_infinite=False)
        split = cost_decomposes_over_components(decomposition.components, assignment)
        assert split == pytest.approx(total)

    @given(st.integers(min_value=0, max_value=2 ** 12 - 1))
    @settings(max_examples=64, deadline=None)
    def test_cost_decomposition_property(self, bits):
        """cost_G(I) == sum_i cost_{G_i}(I_i) for every assignment (paper §3.3)."""
        mrf = example1_mrf(6)
        assignment = {atom: bool((bits >> (atom - 1)) & 1) for atom in mrf.atom_ids}
        decomposition = connected_components(mrf)
        total = assignment_cost(mrf, assignment, hard_as_infinite=False)
        split = cost_decomposes_over_components(decomposition.components, assignment)
        assert split == pytest.approx(total)


class TestComponents:
    def test_example1_component_structure(self):
        decomposition = connected_components(example1_store(10))
        assert decomposition.component_count == 10
        assert all(component.atom_count == 2 for component in decomposition.components)
        assert all(component.clause_count == 3 for component in decomposition.components)
        # Each component: 2 atoms + 4 literal occurrences = size 6.
        assert decomposition.sizes() == [6] * 10
        largest = decomposition.largest()
        assert largest is not None and largest.size() == 6

    def test_atom_to_component_mapping(self):
        decomposition = connected_components(example1_store(3))
        for component_index, component in enumerate(decomposition.components):
            for atom_id in component.atom_ids:
                assert decomposition.component_of_atom(atom_id) == component_index

    def test_single_component_when_fully_connected(self):
        store = GroundClauseStore()
        store.add((1, 2), 1.0)
        store.add((2, 3), 1.0)
        store.add((3, 4), 1.0)
        assert connected_components(store).component_count == 1

    def test_sorted_by_size(self):
        store = GroundClauseStore()
        store.add((1, 2), 1.0)
        store.add((2, 3), 1.0)
        store.add((10,), 1.0)
        ordered = connected_components(store).sorted_by_size()
        assert ordered[0].atom_count >= ordered[-1].atom_count

    def test_example1_optimal_cost_helper(self):
        assert example1_optimal_cost(7) == 7.0
