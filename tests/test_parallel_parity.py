"""Parallel-backend parity: results must not depend on the vehicle.

The determinism contract of ``repro.parallel`` (see its module docstring):
per-component RNG streams derive only from the run seed and the component
index, and merges happen in component order — so MAP best assignments and
MC-SAT marginals are **bit-for-bit identical** across
``serial``/``threads``/``processes`` backends, across worker counts
(1, 2, 4) and across dispatch modes (``steal``/``wave``), on example1,
RC and IE — with and without a deadline (whose skipped set is post-hoc
bookkeeping, independent of backend, dispatch and workers).  The backend
is purely a wall-clock decision.
"""

import pytest

from repro.core.config import InferenceConfig
from repro.core.engine import TuffyEngine
from repro.datasets import DatasetScale, load_dataset
from repro.datasets.example1 import example1_mrf
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.walksat import WalkSATOptions
from repro.mrf.components import connected_components
from repro.parallel import (
    PARALLEL_BACKENDS,
    available_parallel_backends,
    processes_available,
    resolve_parallel_backend,
)
from repro.utils.rng import RandomSource

BACKENDS = [
    backend for backend in ("serial", "threads", "processes")
    if backend != "processes" or processes_available()
]
WORKER_COUNTS = (1, 2, 4)


def _dataset_components(name: str, factor: float):
    dataset = load_dataset(name, DatasetScale(factor=factor, seed=0))
    engine = TuffyEngine(dataset.program, InferenceConfig(seed=0))
    return engine.detect_components().components


@pytest.fixture(scope="module")
def workloads():
    return {
        "example1": connected_components(example1_mrf(10)).components,
        "RC": _dataset_components("RC", 0.25),
        "IE": _dataset_components("IE", 0.2),
    }


class TestMapParity:
    @pytest.mark.parametrize("workload", ("example1", "RC", "IE"))
    def test_best_assignment_bit_identical(self, workloads, workload):
        components = workloads[workload]
        assert len(components) > 1
        reference = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=2000),
            RandomSource(0),
            parallel_backend="serial",
        ).run(components, total_flips=2000)
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                result = ComponentAwareWalkSAT(
                    WalkSATOptions(max_flips=2000),
                    RandomSource(0),
                    workers=workers,
                    parallel_backend=backend,
                ).run(components, total_flips=2000)
                key = (workload, backend, workers)
                assert result.best_assignment == reference.best_assignment, key
                assert result.best_cost == reference.best_cost, key
                assert result.flips == reference.flips, key
                # Per-component outcomes agree too (not just the merge).
                assert [r.best_cost for r in result.component_results] == [
                    r.best_cost for r in reference.component_results
                ], key
                # The deterministic simulated accounting is also identical.
                assert result.simulated_seconds == reference.simulated_seconds, key

    @pytest.mark.parametrize("workload", ("example1", "RC"))
    @pytest.mark.parametrize("deadline", (None, 1e-9))
    def test_wave_and_steal_dispatch_bit_identical(
        self, workloads, workload, deadline
    ):
        components = workloads[workload]
        reference = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=2000, deadline_seconds=deadline),
            RandomSource(0),
            parallel_backend="serial",
            dispatch="steal",
        ).run(components, total_flips=2000)
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                for dispatch in ("steal", "wave"):
                    result = ComponentAwareWalkSAT(
                        WalkSATOptions(max_flips=2000, deadline_seconds=deadline),
                        RandomSource(0),
                        workers=workers,
                        parallel_backend=backend,
                        dispatch=dispatch,
                    ).run(components, total_flips=2000)
                    key = (workload, backend, workers, dispatch, deadline)
                    assert result.best_assignment == reference.best_assignment, key
                    assert result.best_cost == reference.best_cost, key
                    assert result.flips == reference.flips, key
                    assert (
                        result.skipped_components == reference.skipped_components
                    ), key

    def test_engine_map_parity_across_backends(self):
        results = {}
        for backend in BACKENDS:
            dataset = load_dataset("IE", DatasetScale(factor=0.15, seed=0))
            engine = TuffyEngine(
                dataset.program,
                InferenceConfig(
                    seed=0, max_flips=1500, workers=2, parallel_backend=backend
                ),
            )
            outcome = engine.run_map()
            results[backend] = (outcome.assignment, outcome.cost, outcome.flips)
        reference = results["serial"]
        for backend, payload in results.items():
            assert payload == reference, backend


class TestMarginalParity:
    @pytest.mark.parametrize("workload", ("example1", "RC", "IE"))
    def test_marginals_bit_identical(self, workloads, workload):
        components = workloads[workload]
        reference = MCSat(
            MCSatOptions(samples=6, burn_in=2), RandomSource(0)
        ).run_components(components, parallel_backend="serial")
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                result = MCSat(
                    MCSatOptions(samples=6, burn_in=2), RandomSource(0)
                ).run_components(components, parallel_backend=backend, workers=workers)
                assert result.probabilities == reference.probabilities, (
                    workload,
                    backend,
                    workers,
                )
                assert result.samples == reference.samples

    def test_engine_marginal_parity_across_backends(self):
        results = {}
        for backend in BACKENDS:
            dataset = load_dataset("IE", DatasetScale(factor=0.15, seed=0))
            engine = TuffyEngine(
                dataset.program,
                InferenceConfig(
                    seed=0,
                    mcsat_samples=5,
                    mcsat_burn_in=1,
                    workers=2,
                    parallel_backend=backend,
                ),
            )
            results[backend] = engine.run_marginal().marginals.probabilities
        reference = results["serial"]
        for backend, probabilities in results.items():
            assert probabilities == reference, backend


class TestBackendResolution:
    def test_constants_and_availability(self):
        assert PARALLEL_BACKENDS == ("auto", "serial", "threads", "processes")
        assert "serial" in available_parallel_backends()

    def test_auto_falls_back_to_serial_without_parallelism(self):
        # Single component: the pool cannot win, regardless of workers.
        assert resolve_parallel_backend("auto", workers=4, task_count=1) == "serial"
        # Single worker: nothing to parallelise.
        assert resolve_parallel_backend("auto", workers=1, task_count=8) == "serial"

    def test_auto_engages_processes_when_parallelism_exists(self):
        if not processes_available():
            pytest.skip("fork start method unavailable")
        assert resolve_parallel_backend("auto", workers=4, task_count=8) == "processes"

    def test_explicit_backends_are_honoured(self):
        assert resolve_parallel_backend("serial", workers=4, task_count=8) == "serial"
        assert resolve_parallel_backend("threads", workers=4, task_count=8) == "threads"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_parallel_backend("cluster")

    def test_config_validates_parallel_backend(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            InferenceConfig(parallel_backend="cluster")
        assert InferenceConfig(parallel_backend="processes").parallel_backend == (
            "processes"
        )

    def test_config_validates_parallel_dispatch(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            InferenceConfig(parallel_dispatch="barrier")
        assert InferenceConfig().parallel_dispatch == "steal"
        assert InferenceConfig(parallel_dispatch="wave").parallel_dispatch == "wave"
