"""End-to-end grounding parity: row vs columnar execution backends.

The acceptance bar for the columnar engine is *bit-identical*
``GroundingResult``s: the same ground clauses (literals in the same order,
same weights from the same sequence of floating-point merges, same
sources), assigned the same clause ids in the same order, with the same
store-level and per-clause statistics — on every optimizer plan shape the
lesion study exercises, across the paper's workloads.
"""

import pytest

from repro.core import InferenceConfig, MLNProgram, TuffyEngine
from repro.datasets import DatasetScale, load_dataset
from repro.grounding.bottom_up import BottomUpGrounder
from repro.rdbms.column_batch import NUMPY_AVAILABLE
from repro.rdbms.optimizer import OptimizerOptions

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="columnar backend requires numpy"
)

# The paper's running example (Figure 1 / Example 1): authors, citations
# and paper categories, with an equality-constrained rule.
EXAMPLE1_PROGRAM = """
*wrote(author, paper)
*refers(paper, paper)
cat(paper, category)
5 cat(p, c1), cat(p, c2) => c1 = c2
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2 cat(p1, c), refers(p1, p2) => cat(p2, c)
-1 cat(p, "Networking")
"""

EXAMPLE1_EVIDENCE = """
wrote(Joe, P1)
wrote(Joe, P2)
wrote(Jake, P3)
refers(P1, P3)
cat(P2, "DB")
"""

PLAN_SHAPES = {
    "full-optimizer": OptimizerOptions.full_optimizer,
    "fixed-join-order": OptimizerOptions.fixed_join_order,
    "nested-loop-only": OptimizerOptions.nested_loop_only,
}


def example1_program():
    program = MLNProgram.from_text(EXAMPLE1_PROGRAM, EXAMPLE1_EVIDENCE)
    program.add_constants("category", ["DB", "AI", "Networking"])
    return program


def dataset_program(name):
    return load_dataset(name, DatasetScale(factor=0.5, seed=0)).program


PROGRAMS = {
    "example1": example1_program,
    "LP": lambda: dataset_program("LP"),
    "RC": lambda: dataset_program("RC"),
    "ER": lambda: dataset_program("ER"),
}


def grounding_snapshot(result):
    """Everything observable about a grounding except wall-clock times."""
    store = result.clauses
    return {
        "clauses": [
            (clause.clause_id, clause.literals, clause.weight, clause.source)
            for clause in store
        ],
        "satisfied_by_evidence": store.satisfied_by_evidence,
        "evidence_violation_cost": store.evidence_violation_cost,
        "tautologies": store.tautologies,
        "per_clause": [
            (
                stats.clause_name,
                stats.ground_clauses,
                stats.pruned_bindings,
                stats.intermediate_tuples,
                stats.sql,
            )
            for stats in result.per_clause
        ],
        "intermediate_tuples": result.intermediate_tuples,
        "pruned_bindings": result.pruned_bindings,
        "strategy": result.strategy,
        "summary": {
            key: value for key, value in result.summary().items() if key != "seconds"
        },
    }


def ground_with(program_factory, backend, options):
    program = program_factory()
    grounder = BottomUpGrounder(
        optimizer_options=options, execution_backend=backend
    )
    return grounder.ground(program.clauses(), program.build_atom_registry())


class TestGroundingBitIdentical:
    @pytest.mark.parametrize("program_name", sorted(PROGRAMS))
    @pytest.mark.parametrize("plan_shape", sorted(PLAN_SHAPES))
    def test_row_and_columnar_grounding_identical(self, program_name, plan_shape):
        factory = PROGRAMS[program_name]
        options = PLAN_SHAPES[plan_shape]()
        row = grounding_snapshot(ground_with(factory, "row", options))
        columnar = grounding_snapshot(ground_with(factory, "columnar", options))
        assert row == columnar

    def test_forced_columnar_on_tiny_tables_still_identical(self):
        # Below the auto crossover the columnar engine is slower, never wrong.
        row = grounding_snapshot(ground_with(example1_program, "row", None))
        columnar = grounding_snapshot(ground_with(example1_program, "columnar", None))
        assert row == columnar


class TestEngineThreading:
    @pytest.mark.parametrize("backend", ["auto", "row", "columnar"])
    def test_engine_runs_map_on_every_backend(self, backend):
        config = InferenceConfig(
            seed=0, max_flips=500, execution_backend=backend, use_partitioning=False
        )
        engine = TuffyEngine(example1_program(), config)
        result = engine.run_map()
        assert result.cost >= 0.0

    def test_map_results_identical_across_backends(self):
        costs = {}
        assignments = {}
        for backend in ("row", "columnar"):
            config = InferenceConfig(
                seed=7, max_flips=2000, execution_backend=backend
            )
            engine = TuffyEngine(example1_program(), config)
            result = engine.run_map()
            costs[backend] = result.cost
            assignments[backend] = result.assignment
        assert costs["row"] == costs["columnar"]
        assert assignments["row"] == assignments["columnar"]

    def test_config_rejects_unknown_backend(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            InferenceConfig(execution_backend="gpu")


class TestPrunedBindingsSurfaced:
    # A program whose bindings get fully decided by the evidence: the
    # binding x=A of ``e(x) => f(x)`` drops both literals (e(A) true,
    # f(A) explicitly false) and becomes an empty, evidence-violated
    # clause; x=B is pruned inside the query (f(B) satisfies).  The second
    # rule grounds to tautologies ``!q(x) v q(x)`` for every unknown atom.
    PRUNE_PROGRAM = """
    *e(thing)
    *f(thing)
    q(thing)
    1 e(x) => f(x)
    1 q(x) => q(x)
    """
    PRUNE_EVIDENCE = """
    e(A)
    e(B)
    f(B)
    !f(A)
    """

    def _ground(self, backend):
        program = MLNProgram.from_text(self.PRUNE_PROGRAM, self.PRUNE_EVIDENCE)
        grounder = BottomUpGrounder(execution_backend=backend)
        return grounder.ground(program.clauses(), program.build_atom_registry())

    @pytest.mark.parametrize("backend", ["row", "columnar"])
    def test_bottom_up_counts_evidence_decided_bindings(self, backend):
        result = self._ground(backend)
        assert result.pruned_bindings > 0
        assert result.summary()["pruned_bindings"] == result.pruned_bindings
        assert result.clauses.evidence_violation_cost > 0
        assert result.clauses.tautologies > 0

    def test_pruned_bindings_identical_across_backends(self):
        row = grounding_snapshot(self._ground("row"))
        columnar = grounding_snapshot(self._ground("columnar"))
        assert row == columnar
