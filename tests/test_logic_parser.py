"""Tests for the Alchemy-style program/evidence parser."""

import math

import pytest

from repro.logic.formulas import Exists, Implication
from repro.logic.parser import MLNParser, MLNSyntaxError, parse_evidence, parse_program
from repro.logic.terms import Constant, Variable

PROGRAM = """
// Figure 1 of the paper
*wrote(author, paper)
*refers(paper, paper)
cat(paper, category)

5   cat(p, c1), cat(p, c2) => c1 = c2
1   wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2   cat(p1, c), refers(p1, p2) => cat(p2, c)
-1  cat(p, "Networking")
cat(p, c1), cat(p, c2) => c1 = c2.
"""

EVIDENCE = """
wrote(Joe, P1)
wrote(Joe, P2)   // a comment
refers(P1, P3)
!cat(P3, "AI")
"""


class TestProgramParsing:
    def test_declarations(self):
        program = parse_program(PROGRAM)
        names = {predicate.name: predicate for predicate in program.predicates}
        assert set(names) == {"wrote", "refers", "cat"}
        assert names["wrote"].closed_world is True
        assert names["cat"].closed_world is False
        assert names["cat"].arg_types == ("paper", "category")

    def test_rule_count_and_weights(self):
        program = parse_program(PROGRAM)
        assert len(program.rules) == 5
        weights = [rule.weight for rule in program.rules]
        assert weights[:4] == [5.0, 1.0, 2.0, -1.0]
        assert math.isinf(weights[4])

    def test_rules_are_implications(self):
        program = parse_program(PROGRAM)
        assert isinstance(program.rules[0].formula, Implication)

    def test_constant_vs_variable_convention(self):
        program = parse_program(PROGRAM)
        # -1 cat(p, "Networking"): p is a variable, "Networking" a constant.
        formula = program.rules[3].formula
        assert formula.arguments[0] == Variable("p")
        assert formula.arguments[1] == Constant("Networking")

    def test_rule_without_weight_or_period_rejected(self):
        text = "cat(paper, category)\ncat(p, c1), cat(p, c2) => c1 = c2"
        with pytest.raises(MLNSyntaxError):
            parse_program(text)

    def test_unknown_predicate_rejected(self):
        with pytest.raises(MLNSyntaxError):
            parse_program("cat(paper, category)\n1 dog(p) => cat(p, c)")

    def test_wrong_arity_rejected(self):
        with pytest.raises(MLNSyntaxError):
            parse_program("cat(paper, category)\n1 cat(p) => cat(p, c)")

    def test_negation_and_disjunction(self):
        text = "cat(paper, category)\n1 !cat(p, c1) v cat(p, c2)"
        program = parse_program(text)
        assert len(program.rules) == 1

    def test_exist_quantifier(self):
        text = "*wrote(author, paper)\n*paper(paper, url)\npaper(p, u) => EXIST x wrote(x, p)."
        program = parse_program(text)
        formula = program.rules[0].formula
        assert isinstance(formula, Implication)
        assert isinstance(formula.conclusion, Exists)

    def test_redeclaration_of_predicate_treated_as_rule_error(self):
        # Mentioning a known predicate with lower-case args but no weight and
        # no period is an invalid rule, not a second declaration.
        text = "cat(paper, category)\ncat(paper, category)"
        with pytest.raises(MLNSyntaxError):
            parse_program(text)

    def test_malformed_character_rejected(self):
        with pytest.raises(MLNSyntaxError):
            parse_program("cat(paper, category)\n1 cat(p, c) => cat(p, c) @")

    def test_parse_rule_text_with_explicit_weight(self):
        parser = MLNParser()
        parser.parse_program("cat(paper, category)")
        rule = parser.parse_rule_text("cat(p, c1) => cat(p, c2)", weight=2.5)
        assert rule.weight == 2.5


class TestEvidenceParsing:
    def test_truth_values_and_quotes(self):
        program = parse_program(PROGRAM)
        evidence = parse_evidence(EVIDENCE, program)
        assert len(evidence) == 4
        assert evidence[0].predicate_name == "wrote"
        assert evidence[0].arguments == ("Joe", "P1")
        assert evidence[0].truth is True
        assert evidence[3].predicate_name == "cat"
        assert evidence[3].arguments == ("P3", "AI")
        assert evidence[3].truth is False

    def test_arity_validation_against_program(self):
        program = parse_program(PROGRAM)
        with pytest.raises(MLNSyntaxError):
            parse_evidence("wrote(Joe)", program)

    def test_malformed_atom_rejected(self):
        with pytest.raises(MLNSyntaxError):
            parse_evidence("wrote Joe P1")

    def test_evidence_without_program_is_unchecked(self):
        evidence = parse_evidence("anything(A, B, C)")
        assert evidence[0].predicate_name == "anything"
        assert evidence[0].arguments == ("A", "B", "C")

    def test_comments_and_blank_lines_ignored(self):
        evidence = parse_evidence("\n// comment only\n\nwrote(Joe, P1)\n")
        assert len(evidence) == 1
