"""Tests for formula construction and conversion to clausal form."""

import math
from itertools import product

import pytest

from repro.logic.clauses import HARD_WEIGHT
from repro.logic.domains import DomainRegistry
from repro.logic.formulas import (
    Conjunction,
    Disjunction,
    Equality,
    Exists,
    Formula,
    FormulaConversionError,
    Implication,
    Negation,
    PredicateFormula,
    to_clausal_form,
)
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Variable

CAT = Predicate("cat", ("paper", "category"))
REFERS = Predicate("refers", ("paper", "paper"), closed_world=True)
WROTE = Predicate("wrote", ("author", "paper"), closed_world=True)

P, P1, P2, C, C1, C2, X = (Variable(n) for n in ("p", "p1", "p2", "c", "c1", "c2", "x"))


def cat(paper, category):
    return PredicateFormula(CAT, (paper, category))


def refers(a, b):
    return PredicateFormula(REFERS, (a, b))


def wrote(a, b):
    return PredicateFormula(WROTE, (a, b))


class TestOperatorSugar:
    def test_rshift_builds_implication(self):
        formula = cat(P, C) >> cat(P1, C)
        assert isinstance(formula, Implication)

    def test_and_or_invert(self):
        conjunction = cat(P, C) & refers(P, P1)
        disjunction = cat(P, C) | refers(P, P1)
        negation = ~cat(P, C)
        assert isinstance(conjunction, Conjunction)
        assert isinstance(disjunction, Disjunction)
        assert isinstance(negation, Negation)

    def test_variables_collected_in_order(self):
        formula = (cat(P1, C) & refers(P1, P2)) >> cat(P2, C)
        assert formula.variables() == (P1, C, P2)


class TestClausalConversion:
    def test_simple_implication(self):
        [clause] = to_clausal_form((cat(P1, C) & refers(P1, P2)) >> cat(P2, C), 2.0, "F3")
        signs = [(literal.predicate.name, literal.positive) for literal in clause.literals]
        assert signs == [("cat", False), ("refers", False), ("cat", True)]
        assert clause.weight == 2.0

    def test_equality_in_conclusion(self):
        [clause] = to_clausal_form(
            (cat(P, C1) & cat(P, C2)) >> Equality(C1, C2), 5.0, "F1"
        )
        assert len(clause.literals) == 2
        assert clause.equalities == ((C1, C2, True),)

    def test_negated_equality(self):
        [clause] = to_clausal_form(Negation(Equality(C1, C2)) >> cat(P, C1), 1.0)
        # !(c1 != c2) v cat == (c1 = c2) v cat ... conversion keeps one literal
        assert len(clause.literals) == 1
        assert clause.equalities == ((C1, C2, True),)

    def test_conjunction_conclusion_splits_weight(self):
        clauses = to_clausal_form(cat(P, C) >> (cat(P1, C) & cat(P2, C)), 4.0, "F")
        assert len(clauses) == 2
        assert all(clause.weight == pytest.approx(2.0) for clause in clauses)
        assert {clause.name for clause in clauses} == {"F.0", "F.1"}

    def test_hard_weight_not_split(self):
        clauses = to_clausal_form(cat(P, C) >> (cat(P1, C) & cat(P2, C)), HARD_WEIGHT)
        assert all(math.isinf(clause.weight) for clause in clauses)

    def test_double_negation_eliminated(self):
        [clause] = to_clausal_form(Negation(Negation(cat(P, C))), 1.0)
        assert clause.literals[0].positive is True

    def test_negated_conjunction_becomes_disjunction(self):
        [clause] = to_clausal_form(Negation(cat(P, C) & refers(P, P1)), 1.0)
        assert len(clause.literals) == 2
        assert all(not literal.positive for literal in clause.literals)

    def test_negated_disjunction_becomes_two_clauses(self):
        clauses = to_clausal_form(Negation(cat(P, C) | refers(P, P1)), 2.0)
        assert len(clauses) == 2
        assert all(len(clause.literals) == 1 for clause in clauses)

    def test_existential_expansion_over_domain(self):
        domains = DomainRegistry()
        domains.add_constants("author", ["Joe", "Jake"])
        [clause] = to_clausal_form(
            Exists(X, wrote(X, P)), 1.0, "F4", domains=domains
        )
        assert len(clause.literals) == 2
        constants = {literal.arguments[0] for literal in clause.literals}
        assert constants == {Constant("Joe"), Constant("Jake")}

    def test_existential_without_domains_raises(self):
        with pytest.raises(FormulaConversionError):
            to_clausal_form(Exists(X, wrote(X, P)), 1.0)

    def test_existential_empty_domain_raises(self):
        domains = DomainRegistry()
        domains.domain("author")
        with pytest.raises(FormulaConversionError):
            to_clausal_form(Exists(X, wrote(X, P)), 1.0, domains=domains)

    def test_negated_existential_becomes_universal(self):
        domains = DomainRegistry()
        domains.add_constants("author", ["Joe"])
        [clause] = to_clausal_form(Negation(Exists(X, wrote(X, P))), 1.0, domains=domains)
        assert len(clause.literals) == 1
        assert clause.literals[0].positive is False


def _enumerate_worlds(atom_keys):
    for values in product([False, True], repeat=len(atom_keys)):
        yield dict(zip(atom_keys, values))


def _evaluate_formula(formula: Formula, world, binding):
    if isinstance(formula, PredicateFormula):
        key = (
            formula.predicate.name,
            tuple(
                binding[a].value if isinstance(a, Variable) else a.value
                for a in formula.arguments
            ),
        )
        return world[key]
    if isinstance(formula, Equality):
        left = binding[formula.left].value if isinstance(formula.left, Variable) else formula.left.value
        right = binding[formula.right].value if isinstance(formula.right, Variable) else formula.right.value
        return left == right
    if isinstance(formula, Negation):
        return not _evaluate_formula(formula.operand, world, binding)
    if isinstance(formula, Conjunction):
        return all(_evaluate_formula(op, world, binding) for op in formula.operands)
    if isinstance(formula, Disjunction):
        return any(_evaluate_formula(op, world, binding) for op in formula.operands)
    if isinstance(formula, Implication):
        return (not _evaluate_formula(formula.premise, world, binding)) or _evaluate_formula(
            formula.conclusion, world, binding
        )
    raise AssertionError(f"unexpected node {formula!r}")


def _evaluate_clauses(clauses, world, binding):
    for clause in clauses:
        satisfied = False
        for literal in clause.literals:
            key = (
                literal.predicate.name,
                tuple(
                    binding[a].value if isinstance(a, Variable) else a.value
                    for a in literal.arguments
                ),
            )
            value = world[key]
            if value == literal.positive:
                satisfied = True
                break
        if not satisfied:
            for left, right, positive in clause.equalities:
                left_value = binding[left].value if isinstance(left, Variable) else left.value
                right_value = binding[right].value if isinstance(right, Variable) else right.value
                if (left_value == right_value) == positive:
                    satisfied = True
                    break
        if not satisfied:
            return False
    return True


class TestConversionPreservesSemantics:
    """CNF conversion must be logically equivalent to the original formula.

    We check the equivalence by brute force over all truth assignments to
    the ground atoms of a fixed binding — a small but complete model check.
    """

    BINDING = {
        P: Constant("A"),
        P1: Constant("A"),
        P2: Constant("B"),
        C: Constant("DB"),
        C1: Constant("DB"),
        C2: Constant("AI"),
    }

    FORMULAS = [
        (cat(P1, C) & refers(P1, P2)) >> cat(P2, C),
        (cat(P, C1) & cat(P, C2)) >> Equality(C1, C2),
        Negation(cat(P, C) & refers(P, P1)),
        Negation(cat(P, C) | refers(P, P1)),
        cat(P, C) >> (cat(P1, C) & cat(P2, C)),
        (cat(P, C) | refers(P, P1)) >> cat(P2, C),
    ]

    @pytest.mark.parametrize("formula", FORMULAS)
    def test_equivalent_on_all_worlds(self, formula):
        clauses = to_clausal_form(formula, 1.0)
        atom_keys = set()
        binding = self.BINDING
        for clause in clauses:
            for literal in clause.literals:
                atom_keys.add(
                    (
                        literal.predicate.name,
                        tuple(
                            binding[a].value if isinstance(a, Variable) else a.value
                            for a in literal.arguments
                        ),
                    )
                )

        def add_formula_atoms(node):
            if isinstance(node, PredicateFormula):
                atom_keys.add(
                    (
                        node.predicate.name,
                        tuple(
                            binding[a].value if isinstance(a, Variable) else a.value
                            for a in node.arguments
                        ),
                    )
                )
            elif isinstance(node, Negation):
                add_formula_atoms(node.operand)
            elif isinstance(node, (Conjunction, Disjunction)):
                for operand in node.operands:
                    add_formula_atoms(operand)
            elif isinstance(node, Implication):
                add_formula_atoms(node.premise)
                add_formula_atoms(node.conclusion)

        add_formula_atoms(formula)
        keys = sorted(atom_keys)
        for world in _enumerate_worlds(keys):
            original = _evaluate_formula(formula, world, binding)
            converted = _evaluate_clauses(clauses, world, binding)
            assert original == converted, f"divergence on world {world}"
