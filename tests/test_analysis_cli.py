"""End-to-end tests for ``python -m repro.analysis``: exit codes, baseline
resolution, ``--update-baseline`` and the machine-readable ``--json-out``
document (which mirrors the benchmark result shape)."""

import json
from pathlib import Path
from textwrap import dedent
from typing import Dict

from repro.analysis.cli import main

CLEAN = """\
    def f(xs):
        return sorted(set(xs))
    """

VIOLATING = """\
    def f(xs):
        return list(set(xs))
    """


def write_tree(root: Path, files: Dict[str, str]) -> Path:
    for rel, code in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(code), encoding="utf-8")
    return root


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": CLEAN})
        assert main([str(root)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": VIOLATING})
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "[det-set-iter]" in out and "mod.py:2" in out

    def test_missing_path_exits_two(self, tmp_path: Path, capsys) -> None:
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_select_rule_exits_two(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": CLEAN})
        assert main([str(root), "--select", "not-a-rule"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_unreadable_baseline_exits_one(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": CLEAN})
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        assert main([str(root), "--baseline", str(bad)]) == 1
        assert "cannot load baseline" in capsys.readouterr().err

    def test_list_rules(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "det-set-iter" in out and "seam-kernel-api" in out
        assert "repro: allow(" in out


class TestBaselineFlow:
    def test_update_baseline_then_clean_run(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": VIOLATING})
        baseline = tmp_path / "analysis_baseline.json"

        assert main([str(root), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.exists()
        document = json.loads(baseline.read_text())
        assert document["version"] == 1 and len(document["findings"]) == 1

        capsys.readouterr()
        assert main([str(root), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_default_baseline_found_beside_scan_root(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": VIOLATING})
        assert main([str(root), "--update-baseline"]) == 0
        assert (tmp_path / "analysis_baseline.json").exists()
        # No --baseline flag: the default is resolved next to the scan root.
        assert main([str(root)]) == 0

    def test_no_baseline_overrides_default(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": VIOLATING})
        assert main([str(root), "--update-baseline"]) == 0
        assert main([str(root), "--no-baseline"]) == 1

    def test_stale_entries_warn_but_do_not_fail(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": VIOLATING})
        baseline = tmp_path / "b.json"
        assert main([str(root), "--baseline", str(baseline), "--update-baseline"]) == 0
        (root / "mod.py").write_text(dedent(CLEAN), encoding="utf-8")
        capsys.readouterr()
        assert main([str(root), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "stale baseline entry" in out and "1 stale" in out


class TestJsonOut:
    def test_document_shape_matches_benchmark_convention(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": VIOLATING})
        out_path = tmp_path / "results" / "ANALYSIS_findings.json"
        assert main([str(root), "--no-baseline", "--json-out", str(out_path)]) == 1

        document = json.loads(out_path.read_text())
        assert set(document) == {"benchmark", "metadata", "rows"}
        assert document["benchmark"] == "analysis"
        metadata = document["metadata"]
        assert metadata["files_scanned"] == 1
        assert metadata["baseline"] is None
        assert metadata["counts"]["new"] == 1
        assert "det-set-iter" in metadata["rules"]
        (row,) = document["rows"]
        assert set(row) == {"rule", "path", "line", "column", "message"}
        assert row["rule"] == "det-set-iter" and row["path"] == "mod.py"

    def test_clean_run_writes_empty_rows(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": CLEAN})
        out_path = tmp_path / "out.json"
        assert main([str(root), "--no-baseline", "--json-out", str(out_path)]) == 0
        assert json.loads(out_path.read_text())["rows"] == []


class TestQuiet:
    def test_quiet_prints_only_summary(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path / "src", {"mod.py": VIOLATING})
        assert main([str(root), "-q"]) == 1
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1 and out[0].startswith("repro.analysis:")
