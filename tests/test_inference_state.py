"""Tests for the incremental WalkSAT search state."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.grounding.clause_table import GroundClauseStore
from repro.inference.state import SearchState
from repro.mrf.cost import assignment_cost
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


def small_mrf():
    store = GroundClauseStore()
    store.add((1, 2), 1.0, "a")
    store.add((-1, 3), 2.0, "b")
    store.add((-2, -3), 0.5, "c")
    store.add((2,), -1.0, "neg")
    return MRF.from_store(store)


def hard_mrf():
    store = GroundClauseStore()
    store.add((1,), math.inf)
    store.add((-1, 2), 1.0)
    return MRF.from_store(store)


class TestSearchStateBasics:
    def test_initial_all_false_cost(self):
        state = SearchState(small_mrf())
        # all-false: (1,2) violated (1.0); (-1,3) satisfied; (-2,-3) satisfied;
        # (2,) negative-weight clause unsatisfied -> not violated.
        assert state.cost == pytest.approx(1.0)
        assert state.violated_count() == 1
        assert state.true_cost() == pytest.approx(1.0)

    def test_initial_assignment_respected(self):
        state = SearchState(small_mrf(), {1: True, 2: False, 3: False})
        assert state.value_of(1) is True
        # (1,2) satisfied; (-1,3) violated (2.0); (-2,-3) satisfied; (2,) fine.
        assert state.cost == pytest.approx(2.0)

    def test_flip_updates_cost_incrementally(self):
        state = SearchState(small_mrf())
        delta = state.flip_atom_id(2)
        # Flipping atom 2 to True: (1,2) repaired (-1.0), (-2,-3) still
        # satisfied via -3, (2,) becomes satisfied -> violated (+1.0).
        assert delta == pytest.approx(0.0)
        assert state.cost == pytest.approx(1.0)
        assert state.flips == 1

    def test_delta_cost_matches_flip(self):
        state = SearchState(small_mrf())
        for atom_id in (1, 2, 3):
            position = state._position[atom_id]
            predicted = state.delta_cost(position)
            before = state.cost
            actual = state.flip(position)
            assert actual == pytest.approx(predicted)
            assert state.cost == pytest.approx(before + actual)
            state.flip(position)  # restore

    def test_hard_clause_penalty_and_true_cost(self):
        state = SearchState(hard_mrf())
        assert state.true_cost() == math.inf
        assert state.cost >= 10.0
        state.flip_atom_id(1)
        assert state.true_cost() == pytest.approx(1.0)

    def test_reset_and_randomize(self):
        state = SearchState(small_mrf())
        state.flip_atom_id(1)
        state.reset()
        assert state.assignment_dict() == {1: False, 2: False, 3: False}
        assert state.cost == pytest.approx(1.0)
        state.randomize(RandomSource(0))
        assert state.violated_count() >= 0  # bookkeeping remains consistent
        recomputed = assignment_cost(state.mrf, state.assignment_dict(), hard_as_infinite=False)
        assert state.cost == pytest.approx(recomputed)

    def test_sample_violated_clause(self):
        state = SearchState(small_mrf())
        clause_index = state.sample_violated_clause(RandomSource(1))
        assert clause_index in state.violated_clause_indices()
        assert state.clause(clause_index).literals == (1, 2)

    def test_sample_with_no_violations_raises(self):
        store = GroundClauseStore()
        store.add((-1,), 1.0)
        state = SearchState(MRF.from_store(store))
        assert not state.has_violations()
        with pytest.raises(ValueError):
            state.sample_violated_clause(RandomSource(0))

    def test_clause_atom_positions_distinct(self):
        store = GroundClauseStore(merge_duplicates=False)
        store.add((1, 1, 2), 1.0)
        state = SearchState(MRF.from_store(store))
        assert len(state.clause_atom_positions(0)) == 2


class TestSearchStateInvariants:
    """The incremental bookkeeping must always agree with a full recount."""

    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_incremental_cost_matches_recomputation(self, flips, seed):
        rng = RandomSource(seed)
        store = GroundClauseStore(merge_duplicates=False)
        # A fixed, somewhat adversarial clause set over 6 atoms.
        store.add((1, 2, -3), 1.0)
        store.add((-1, 4), 2.0)
        store.add((3, -5), 0.5)
        store.add((5, 6), -1.5)
        store.add((-6, -2), 0.7)
        store.add((4,), -0.3)
        mrf = MRF.from_store(store)
        state = SearchState(mrf)
        state.randomize(rng)
        for atom_id in flips:
            state.flip_atom_id(atom_id)
            expected = assignment_cost(mrf, state.assignment_dict(), hard_as_infinite=False)
            assert state.cost == pytest.approx(expected)
            expected_violated = sum(
                1
                for index in range(mrf.clause_count)
                if state._is_violated(index)
            )
            assert state.violated_count() == expected_violated
