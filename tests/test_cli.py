"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

PROGRAM_TEXT = """
*wrote(author, paper)
cat(paper, category)
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
-1 cat(p, "Networking")
"""

EVIDENCE_TEXT = """
wrote(Joe, P1)
wrote(Joe, P2)
cat(P1, "DB")
"""


@pytest.fixture
def program_files(tmp_path):
    program = tmp_path / "prog.mln"
    evidence = tmp_path / "prog.db"
    program.write_text(PROGRAM_TEXT)
    evidence.write_text(EVIDENCE_TEXT)
    return str(program), str(evidence)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "UNKNOWN"])

    def test_execution_backend_choices(self):
        arguments = build_parser().parse_args(
            ["dataset", "RC", "--execution-backend", "columnar"]
        )
        assert arguments.execution_backend == "columnar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "RC", "--execution-backend", "gpu"])

    def test_kernel_backend_choices(self):
        arguments = build_parser().parse_args(
            ["dataset", "RC", "--kernel-backend", "vectorized"]
        )
        assert arguments.kernel_backend == "vectorized"
        assert build_parser().parse_args(["dataset", "RC"]).kernel_backend == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "RC", "--kernel-backend", "simd"])

    def test_parallel_backend_choices(self):
        arguments = build_parser().parse_args(
            ["dataset", "IE", "--parallel-backend", "processes", "--workers", "4"]
        )
        assert arguments.parallel_backend == "processes"
        assert build_parser().parse_args(["dataset", "IE"]).parallel_backend == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "IE", "--parallel-backend", "cluster"])

    def test_parallel_backend_threaded_into_config(self):
        from repro.cli import _config_from_arguments

        arguments = build_parser().parse_args(
            ["dataset", "IE", "--parallel-backend", "serial", "--workers", "3"]
        )
        config = _config_from_arguments(arguments)
        assert config.parallel_backend == "serial"
        assert config.workers == 3


class TestStatsCommand:
    def test_prints_table1_fields(self, program_files):
        program, evidence = program_files
        output = io.StringIO()
        status = main(["stats", "-i", program, "-e", evidence], stream=output)
        assert status == 0
        text = output.getvalue()
        assert "#relations" in text and "#query atoms" in text


class TestInferCommand:
    def test_map_inference_on_forced_columnar_backend(self, program_files):
        pytest.importorskip("numpy")
        program, evidence = program_files
        outputs = {}
        for backend in ("row", "columnar"):
            output = io.StringIO()
            status = main(
                [
                    "infer",
                    "-i",
                    program,
                    "-e",
                    evidence,
                    "--max-flips",
                    "2000",
                    "--execution-backend",
                    backend,
                ],
                stream=output,
            )
            assert status == 0
            text = output.getvalue()
            atoms_section = text.split("\n#\n")[0]
            cost_lines = [line for line in text.splitlines() if "cost" in line]
            outputs[backend] = (atoms_section, cost_lines)
        # Identical inferred atoms and cost; only wall-clock lines may differ.
        assert outputs["row"] == outputs["columnar"]

    def test_map_inference_on_forced_parallel_backends(self, program_files):
        from repro.parallel import processes_available

        program, evidence = program_files
        backends = ["serial", "threads"] + (
            ["processes"] if processes_available() else []
        )
        outputs = {}
        for backend in backends:
            output = io.StringIO()
            status = main(
                [
                    "infer", "-i", program, "-e", evidence,
                    "--max-flips", "2000",
                    "--workers", "2",
                    "--parallel-backend", backend,
                ],
                stream=output,
            )
            assert status == 0
            text = output.getvalue()
            atoms_section = text.split("\n#\n")[0]
            cost_lines = [line for line in text.splitlines() if "cost" in line]
            outputs[backend] = (atoms_section, cost_lines)
        # Identical inferred atoms and cost on every parallel backend.
        for backend in backends[1:]:
            assert outputs[backend] == outputs["serial"]

    def test_map_inference_prints_atoms_and_summary(self, program_files):
        program, evidence = program_files
        output = io.StringIO()
        status = main(
            ["infer", "-i", program, "-e", evidence, "--max-flips", "5000", "--seed", "1"],
            stream=output,
        )
        assert status == 0
        text = output.getvalue()
        assert "# atoms inferred true" in text
        assert "cat(P2, DB)" in text
        assert "cost" in text

    def test_predicate_filter(self, program_files):
        program, evidence = program_files
        output = io.StringIO()
        main(
            ["infer", "-i", program, "-e", evidence, "--max-flips", "2000", "--predicate", "cat"],
            stream=output,
        )
        for line in output.getvalue().splitlines():
            if line and not line.startswith("#") and "(" in line and ":" not in line:
                assert line.startswith("cat(")

    def test_marginal_inference(self, program_files):
        program, evidence = program_files
        output = io.StringIO()
        status = main(
            [
                "infer", "-i", program, "-e", evidence,
                "--marginal", "--mcsat-samples", "10",
            ],
            stream=output,
        )
        assert status == 0
        assert "# marginal probabilities" in output.getvalue()

    def test_marginal_inference_on_forced_kernel_backends(self, program_files):
        pytest.importorskip("numpy")
        program, evidence = program_files
        outputs = {}
        for backend in ("flat", "vectorized"):
            output = io.StringIO()
            status = main(
                [
                    "infer", "-i", program, "-e", evidence,
                    "--marginal", "--mcsat-samples", "12",
                    "--kernel-backend", backend,
                ],
                stream=output,
            )
            assert status == 0
            text = output.getvalue()
            outputs[backend] = text.split("\n#\n")[0]  # the probability lines
        # Bit-identical seeded sampling pipelines -> identical printed
        # marginals; only wall-clock summary lines may differ.
        assert outputs["flat"] == outputs["vectorized"]


class TestDatasetCommand:
    def test_runs_builtin_dataset(self):
        output = io.StringIO()
        status = main(
            ["dataset", "RC", "--scale", "0.4", "--max-flips", "3000"], stream=output
        )
        assert status == 0
        text = output.getvalue()
        assert "workload: RC" in text
        assert "components" in text

    def test_baseline_comparison(self):
        output = io.StringIO()
        status = main(
            ["dataset", "IE", "--scale", "0.3", "--max-flips", "2000", "--baseline"],
            stream=output,
        )
        assert status == 0
        assert "# Alchemy-style baseline" in output.getvalue()

    def test_no_partitioning_and_memory_budget_flags(self):
        output = io.StringIO()
        status = main(
            [
                "dataset", "RC", "--scale", "0.3", "--max-flips", "2000",
                "--no-partitioning",
            ],
            stream=output,
        )
        assert status == 0
        output = io.StringIO()
        status = main(
            [
                "dataset", "ER", "--scale", "0.6", "--max-flips", "2000",
                "--memory-budget-kb", "16",
            ],
            stream=output,
        )
        assert status == 0


class TestObservabilityFlags:
    def test_trace_and_metrics_outputs(self, program_files, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        program, evidence = program_files
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        output = io.StringIO()
        status = main(
            [
                "infer", "-i", program, "-e", evidence, "--max-flips", "500",
                "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
            ],
            stream=output,
        )
        assert status == 0
        text = output.getvalue()
        assert f"# trace written to {trace_path}" in text
        assert f"# metrics written to {metrics_path}" in text
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"request", "setup", "search"} <= names
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["session.requests"] == 1.0
        assert "io.page_reads" in metrics["gauges"]

    def test_tracing_flag_validated_and_off_writes_empty_trace(
        self, program_files, tmp_path
    ):
        import json

        program, evidence = program_files
        trace_path = tmp_path / "trace.json"
        output = io.StringIO()
        status = main(
            [
                "infer", "-i", program, "-e", evidence, "--max-flips", "200",
                "--tracing", "off", "--trace-out", str(trace_path),
            ],
            stream=output,
        )
        assert status == 0
        assert json.loads(trace_path.read_text())["traceEvents"] == []

    def test_concurrent_summary_prints_metrics_table(self):
        output = io.StringIO()
        status = main(
            [
                "dataset", "RC", "--scale", "0.2", "--max-flips", "500",
                "--session-requests", "3", "--session-concurrent", "3",
            ],
            stream=output,
        )
        assert status == 0
        text = output.getvalue()
        assert "# session (concurrent)" in text
        assert "result shipping" in text
        assert "steals" in text
        assert "# per-request" in text
        assert "ship(shm/pkl)" in text
        # One table row per admitted request, tagged by request id.
        for request_id in ("1", "2", "3"):
            assert any(
                line.split() and line.split()[0] == request_id
                for line in text.splitlines()
            ), request_id
