"""Tests for the atom registry and the ground-clause store."""

import math

import pytest

from repro.grounding.atoms import AtomRegistry
from repro.grounding.clause_table import GroundClause, GroundClauseStore
from repro.logic.predicates import Predicate, make_atom
from repro.rdbms.database import Database

CAT = Predicate("cat", ("paper", "category"))
REFERS = Predicate("refers", ("paper", "paper"), closed_world=True)


class TestAtomRegistry:
    def test_ids_start_at_one_and_are_stable(self):
        registry = AtomRegistry()
        first = registry.register(make_atom(CAT, ["P1", "DB"]))
        second = registry.register(make_atom(CAT, ["P1", "AI"]))
        again = registry.register(make_atom(CAT, ["P1", "DB"]))
        assert (first, second, again) == (1, 2, 1)
        assert len(registry) == 2

    def test_truth_update_and_conflict(self):
        registry = AtomRegistry()
        atom = make_atom(CAT, ["P1", "DB"])
        registry.register(atom)
        registry.register(atom, True)
        assert registry.truth(1) is True
        with pytest.raises(ValueError):
            registry.register(atom, False)

    def test_lookup(self):
        registry = AtomRegistry()
        registry.register(make_atom(CAT, ["P1", "DB"]), True)
        assert registry.lookup("cat", ("P1", "DB")) == 1
        assert registry.lookup("cat", ("P1", "AI")) is None

    def test_query_vs_evidence_views(self):
        registry = AtomRegistry()
        registry.register(make_atom(CAT, ["P1", "DB"]), True)
        registry.register(make_atom(CAT, ["P2", "DB"]))
        registry.register(make_atom(REFERS, ["P1", "P2"]), True)
        assert registry.query_atom_ids() == [2]
        assert registry.evidence_atom_ids() == [1, 3]
        assert registry.count_by_predicate() == {"cat": 2, "refers": 1}
        assert len(registry.records_for_predicate(CAT)) == 2

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            AtomRegistry().record(1)


class TestGroundClause:
    def test_zero_literal_id_rejected(self):
        with pytest.raises(ValueError):
            GroundClause(1, (0,), 1.0)

    def test_satisfaction_and_violation(self):
        clause = GroundClause(1, (1, -2), 2.0)
        assignment = [None, False, True]  # 1-indexed
        assert clause.is_satisfied(assignment) is False
        assert clause.is_violated(assignment) is True
        assert clause.violation_cost(assignment) == 2.0
        assignment[1] = True
        assert clause.is_satisfied(assignment) is True
        assert clause.is_violated(assignment) is False

    def test_negative_weight_violated_when_satisfied(self):
        clause = GroundClause(1, (1,), -1.5)
        assert clause.is_violated([None, True]) is True
        assert clause.is_violated([None, False]) is False
        assert clause.violation_cost([None, True]) == 1.5

    def test_hard_flag_and_atom_ids(self):
        clause = GroundClause(1, (3, -5), math.inf)
        assert clause.is_hard
        assert clause.atom_ids == (3, 5)


class TestGroundClauseStore:
    def test_duplicate_merging_sums_weights(self):
        store = GroundClauseStore()
        store.add((1, -2), 1.0, "F1")
        store.add((-2, 1), 2.5, "F1")
        assert len(store) == 1
        assert store[0].weight == pytest.approx(3.5)

    def test_merging_disabled(self):
        store = GroundClauseStore(merge_duplicates=False)
        store.add((1, -2), 1.0)
        store.add((1, -2), 1.0)
        assert len(store) == 2

    def test_hard_clauses_not_merged(self):
        store = GroundClauseStore()
        store.add((1,), math.inf)
        store.add((1,), math.inf)
        assert len(store) == 2

    def test_empty_clause_contributes_constant_cost(self):
        store = GroundClauseStore()
        assert store.add((), 2.0) is None
        assert store.add((), -3.0) is None
        assert store.evidence_violation_cost == pytest.approx(2.0)
        assert len(store) == 0

    def test_tautologies_skipped(self):
        store = GroundClauseStore()
        assert store.add((1, -1), 5.0) is None
        assert store.tautologies == 1
        assert len(store) == 0

    def test_atom_ids_and_totals(self):
        store = GroundClauseStore()
        store.add((1, -3), 1.0)
        store.add((2,), math.inf)
        assert store.atom_ids() == [1, 2, 3]
        assert store.total_literals() == 3
        assert store.hard_clause_count() == 1

    def test_database_round_trip(self):
        database = Database()
        store = GroundClauseStore()
        store.add((1, -2, 3), 1.5, "F2")
        store.add((4,), math.inf, "F4")
        store.store_in_database(database)
        loaded = GroundClauseStore.load_from_database(database)
        assert len(loaded) == 2
        assert loaded[0].literals == (1, -2, 3)
        assert loaded[0].weight == pytest.approx(1.5)
        assert loaded[0].source == "F2"
        assert loaded[1].is_hard

    def test_store_overwrites_previous_contents(self):
        database = Database()
        first = GroundClauseStore()
        first.add((1,), 1.0)
        first.store_in_database(database)
        second = GroundClauseStore()
        second.add((2,), 2.0)
        second.add((3,), 3.0)
        second.store_in_database(database)
        assert len(GroundClauseStore.load_from_database(database)) == 2
