"""Per-rule tests for the determinism & parity linter.

Each rule gets a positive fixture (the violation fires), a negative fixture
(conforming code stays clean) and, for the per-file rules, a suppressed
fixture (``# repro: allow(...)`` silences it).  Fixtures are written into a
``tmp_path`` tree shaped like ``src/repro`` so the directory-scoped rules
(``fork-*``, ``det-wallclock``) and the cross-file seam rules see the paths
they key on.
"""

from pathlib import Path
from textwrap import dedent
from typing import Dict, List, Optional, Sequence

import pytest

from repro.analysis.framework import (
    BAD_SUPPRESSION,
    PARSE_ERROR,
    AnalysisReport,
    Finding,
    run_analysis,
)


def analyze(
    tmp_path: Path,
    files: Dict[str, str],
    select: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Write the fixture files under a fresh root and run the analyzer."""
    root = tmp_path / "tree"
    for rel, code in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(code), encoding="utf-8")
    return run_analysis([root], select=select)


def rules_fired(report: AnalysisReport) -> List[str]:
    return sorted({finding.rule for finding in report.findings})


def messages(report: AnalysisReport, rule: str) -> List[str]:
    return [f.message for f in report.findings if f.rule == rule]


class TestUnorderedIteration:
    def test_for_loop_over_set_literal_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                out = []
                for x in {1, 2, 3}:
                    out.append(x)
                return out
            """})
        assert rules_fired(report) == ["det-set-iter"]

    def test_comprehension_and_list_of_set_fire(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                a = [x for x in set(xs)]
                b = list(frozenset(xs))
                return a, b
            """})
        assert len(messages(report, "det-set-iter")) == 2

    def test_sorted_set_and_ordered_dedup_are_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                a = sorted(set(xs))
                b = list(dict.fromkeys(xs))
                c = max(list(set(xs)))
                for x in xs:
                    pass
                return a, b, c
            """})
        assert report.findings == []

    def test_trailing_suppression_with_justification(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                return [x for x in set(xs)]  # repro: allow(det-set-iter): sorted by caller
            """})
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_standalone_suppression_covers_next_statement(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                # repro: allow(det-set-iter): membership only, order irrelevant
                members = list(set(xs))
                return members
            """})
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestUnorderedFloatSum:
    def test_sum_over_set_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            import math

            def f(ws):
                return sum(set(ws)) + math.fsum({1.0, 2.0})
            """})
        assert len(messages(report, "det-float-sum")) == 2

    def test_generator_driven_by_set_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(ws):
                return sum(w * 2.0 for w in set(ws))
            """})
        assert rules_fired(report) == ["det-float-sum"]

    def test_counting_generator_and_ordered_sum_are_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(ws):
                count = sum(1 for w in set(ws))
                total = sum(sorted(ws))
                return count + total
            """})
        assert report.findings == []


class TestRawRandom:
    def test_module_random_and_entropy_sources_fire(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            import os
            import random
            import uuid

            def f():
                return random.random(), os.urandom(8), uuid.uuid4()
            """})
        assert len(messages(report, "det-raw-random")) == 3

    def test_from_import_use_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            from random import shuffle

            def f(xs):
                shuffle(xs)
            """})
        assert rules_fired(report) == ["det-raw-random"]

    def test_rng_wrapper_module_is_sanctioned(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"utils/rng.py": """\
            import random

            def make(seed):
                return random.Random(seed)
            """})
        assert report.findings == []

    def test_injected_rng_attribute_is_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(rng, xs):
                return rng.shuffle(xs)
            """})
        assert report.findings == []


class TestWallClock:
    def test_time_read_in_scoped_dir_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"inference/loop.py": """\
            import time

            def f():
                return time.perf_counter()
            """})
        assert rules_fired(report) == ["det-wallclock"]

    def test_time_read_outside_scope_is_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"cli.py": """\
            import time

            def f():
                return time.perf_counter()
            """})
        assert report.findings == []


class TestIdHashOrder:
    def test_sort_keyed_on_identity_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                xs.sort(key=id)
                return sorted(xs, key=lambda x: hash(x))
            """})
        assert len(messages(report, "det-id-hash-order")) == 2

    def test_stable_key_is_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(atoms):
                return sorted(atoms, key=lambda a: a.atom_id)
            """})
        assert report.findings == []


class TestForkModuleState:
    def test_worker_mutating_module_global_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/pool.py": """\
            _CACHE = {}

            def execute_component_task(task):
                _CACHE[task.component_id] = task
                _CACHE.update({})
            """})
        assert len(messages(report, "fork-module-state")) == 2

    def test_global_declaration_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/pool.py": """\
            _RESULTS = []

            def _worker_loop(queue):
                global _RESULTS
                _RESULTS = []
            """})
        assert rules_fired(report) == ["fork-module-state"]

    def test_local_state_and_non_worker_are_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/pool.py": """\
            _CACHE = {}

            def execute_component_task(task):
                local = {}
                local[task.component_id] = task
                return local

            def coordinator_only(task):
                _CACHE[task.component_id] = task
            """})
        assert report.findings == []

    def test_same_code_outside_parallel_dir_is_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"inference/pool.py": """\
            _CACHE = {}

            def execute_component_task(task):
                _CACHE[task.component_id] = task
            """})
        assert report.findings == []


class TestSharedMemoryPublish:
    def test_write_after_publication_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/buffers.py": """\
            class ComponentBuffer:
                def __init__(self, shm, n):
                    self._ints = shm.buf.cast("q")
                    self._ints[0] = n

                def poke(self, index, value):
                    self._ints[index] = value
            """})
        found = messages(report, "fork-shm-publish")
        assert len(found) == 1 and "'poke'" in found[0] or "poke" in found[0]

    def test_alias_write_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/buffers.py": """\
            class ComponentBuffer:
                def __init__(self, shm):
                    self._ints = shm.buf.cast("q")

                def rewrite(self, values):
                    view = self._ints
                    view[0] = values[0]
            """})
        assert rules_fired(report) == ["fork-shm-publish"]

    def test_packing_writes_are_allowed(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/buffers.py": """\
            class ComponentBuffer:
                def __init__(self, shm, values):
                    self._ints = shm.buf.cast("q")
                    self._pack_all(values)

                def pack(self, values):
                    self._ints[0] = len(values)

                def _pack_all(self, values):
                    for index, value in enumerate(values):
                        self._ints[index] = value

                def read(self, index):
                    return self._ints[index]
            """})
        assert report.findings == []

    def test_sanctioned_result_writer_is_clean(self, tmp_path: Path) -> None:
        # The result-shipping carve-out: a method named in
        # `_result_region_writers` may write shm attributes whose names
        # contain 'result' — directly or through a local alias.
        report = analyze(tmp_path, {"parallel/buffers.py": """\
            class ResultBufferSet:
                _result_region_writers = ("write_outcome",)

                def __init__(self, shm):
                    self._result_ints = shm.buf.cast("q")
                    self._result_floats = shm.buf.cast("d")

                def write_outcome(self, index, value):
                    ints = self._result_ints
                    ints[index] = value
                    self._result_floats[index] = float(value)
            """})
        assert report.findings == []

    def test_sanctioned_writer_still_flagged_on_non_result_buffers(
        self, tmp_path: Path
    ) -> None:
        # The sanction covers only result regions: the same method writing
        # a structure buffer is still a publish-after-pack violation.
        report = analyze(tmp_path, {"parallel/buffers.py": """\
            class ResultBufferSet:
                _result_region_writers = ("write_outcome",)

                def __init__(self, shm):
                    self._ints = shm.buf.cast("q")
                    self._result_ints = shm.buf.cast("q")

                def write_outcome(self, index, value):
                    self._result_ints[index] = value
                    self._ints[index] = value
            """})
        found = messages(report, "fork-shm-publish")
        assert len(found) == 1
        assert "'_ints'" in found[0]

    def test_unsanctioned_method_writing_result_region_fires(
        self, tmp_path: Path
    ) -> None:
        report = analyze(tmp_path, {"parallel/buffers.py": """\
            class ResultBufferSet:
                _result_region_writers = ("write_outcome",)

                def __init__(self, shm):
                    self._result_ints = shm.buf.cast("q")

                def clobber(self, index, value):
                    self._result_ints[index] = value
            """})
        found = messages(report, "fork-shm-publish")
        assert len(found) == 1
        assert "'clobber'" in found[0]


class TestPoolTaskClosure:
    def test_lambda_and_nested_function_fire(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def dispatch(pool, tasks):
                def handler(task):
                    return task.run()

                helper = lambda task: task.run()
                pool.submit(lambda: 1)
                pool.apply_async(handler, tasks)
                pool.submit(helper, tasks)
            """})
        assert len(messages(report, "fork-task-closure")) == 3

    def test_process_target_lambda_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            from multiprocessing import Process

            def spawn():
                return Process(target=lambda: None)
            """})
        assert rules_fired(report) == ["fork-task-closure"]

    def test_module_level_function_is_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def run_task(task):
                return task.run()

            def dispatch(pool, tasks):
                pool.apply_async(run_task, tasks)
            """})
        assert report.findings == []


class TestPoolLifecycle:
    def test_repacking_live_pool_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/pool.py": """\
            class WorkerPool:
                def __init__(self, components, workers):
                    self.buffers = ComponentBufferSet.pack(components)
                    self._processes = [spawn() for _ in range(workers)]

                def rebind(self, components):
                    self.buffers = fresh_buffers(components)

                def repack(self, components):
                    ComponentBufferSet.pack(components)
            """})
        found = messages(report, "fork-pool-lifecycle")
        assert len(found) == 2
        assert any("rebinds self.buffers" in message for message in found)
        assert any("repacks shared-memory buffers" in message for message in found)

    def test_packing_in_init_and_shutdown_are_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"parallel/pool.py": """\
            class WorkerPool:
                def __init__(self, components, workers):
                    self.buffers = ComponentBufferSet.pack(components)
                    self._processes = [spawn() for _ in range(workers)]

                def shutdown(self):
                    for process in self._processes:
                        process.join()
                    self.buffers.destroy()
            """})
        assert report.findings == []

    def test_result_buffer_repack_and_rebind_fire(self, tmp_path: Path) -> None:
        # The rule generalises over every packed buffer set the pool owns:
        # the result regions are as frozen as the component structure.
        report = analyze(tmp_path, {"parallel/pool.py": """\
            class WorkerPool:
                def __init__(self, components, workers):
                    self.buffers = ComponentBufferSet.pack(components)
                    self.result_buffers = ResultBufferSet.pack(components)
                    self._processes = [spawn() for _ in range(workers)]

                def rebind(self, components):
                    self.result_buffers = fresh_buffers(components)

                def repack(self, components):
                    ResultBufferSet.pack(components)
            """})
        found = messages(report, "fork-pool-lifecycle")
        assert len(found) == 2
        assert any("rebinds self.result_buffers" in message for message in found)
        assert any("repacks shared-memory buffers" in message for message in found)

    def test_non_pool_class_and_other_dirs_are_clean(self, tmp_path: Path) -> None:
        repacker = """\
            class BufferCache:
                def __init__(self, components):
                    self.buffers = ComponentBufferSet.pack(components)

                def refresh(self, components):
                    self.buffers = ComponentBufferSet.pack(components)
            """
        report = analyze(
            tmp_path,
            {"parallel/buffers.py": repacker, "inference/pool.py": repacker},
        )
        assert messages(report, "fork-pool-lifecycle") == []


class TestReqStateIsolation:
    def test_session_writes_in_scoped_methods_fire(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"core/session.py": """\
            class EngineSession:
                _request_scoped_methods = ("_serve_map", "_search_partitioned")

                def _serve_map(self, seed):
                    self.last_result = seed
                    self.stats.requests += 1
                    return seed

                def _search_partitioned(self, plan):
                    self._split[0] = plan
                    self._cached_traces.append(plan)
            """}, select=["req-state-isolation"])
        found = messages(report, "req-state-isolation")
        assert len(found) == 4
        assert any("'self.last_result'" in message for message in found)
        assert any("'self.stats.requests'" in message for message in found)
        assert any("'self._split[...]'" in message for message in found)
        assert any(
            "'self._cached_traces.append(...)'" in message for message in found
        )

    def test_local_writes_and_plumbing_methods_are_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"core/session.py": """\
            class EngineSession:
                _request_scoped_methods = ("_serve_map",)

                def _serve_map(self, seed):
                    with self._lock:
                        plan = self._begin_request(seed)
                    result = {}
                    result["seed"] = plan.seed
                    plan.flips += 1
                    states = self._state_lease.checkout("key", list)
                    return result

                def _begin_request(self, seed):
                    self.stats.requests += 1
                    return seed
            """}, select=["req-state-isolation"])
        assert report.findings == []

    def test_unmarked_class_is_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"core/session.py": """\
            class EngineSession:
                def _serve_map(self, seed):
                    self.last_result = seed
                    return seed
            """}, select=["req-state-isolation"])
        assert report.findings == []

    def test_suppression_is_honored(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"core/session.py": """\
            class EngineSession:
                _request_scoped_methods = ("_serve_map",)

                def _serve_map(self, seed):
                    self.debug_probe = seed  # repro: allow(req-state-isolation): test probe
                    return seed
            """}, select=["req-state-isolation"])
        assert report.findings == []
        assert len(report.suppressed) == 1


SEAM_STATE = """\
    class SearchState:
        def flip(self, clause_index, position):
            raise NotImplementedError

        def true_cost(self):
            raise NotImplementedError
    """


class TestKernelApiSeam:
    def test_missing_member_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {
            "inference/state.py": SEAM_STATE,
            "inference/reference_kernel.py": """\
            class ReferenceSearchState:
                def flip(self, clause_index, position):
                    return None
            """,
        })
        found = messages(report, "seam-kernel-api")
        assert found == [
            "ReferenceSearchState does not implement SearchState seam member "
            "'true_cost'"
        ]

    def test_signature_drift_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {
            "inference/state.py": SEAM_STATE,
            "inference/vector_kernel.py": """\
            class VectorSearchState:
                def flip(self, atom_id):
                    return None

                def true_cost(self):
                    return 0.0
            """,
        })
        found = messages(report, "seam-kernel-api")
        assert len(found) == 1 and "drifts from the SearchState seam" in found[0]

    def test_undeclared_public_method_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {
            "inference/state.py": SEAM_STATE,
            "inference/reference_kernel.py": """\
            class ReferenceSearchState:
                def flip(self, clause_index, position):
                    return None

                def true_cost(self):
                    return 0.0

                def secret_extra(self):
                    return 1
            """,
        })
        found = messages(report, "seam-kernel-api")
        assert len(found) == 1 and "not part of the SearchState seam API" in found[0]

    def test_conforming_backend_and_inheritance_are_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {
            "inference/state.py": SEAM_STATE,
            "inference/reference_kernel.py": """\
            from repro.inference.state import SearchState

            class ReferenceSearchState(SearchState):
                def flip(self, clause_index, position):
                    return None
            """,
            "inference/vector_kernel.py": """\
            class VectorSearchState:
                def flip(self, clause_index, position):
                    return None

                def true_cost(self):
                    return 0.0
            """,
        })
        assert report.findings == []


SEAM_CONFIG = """\
    class InferenceConfig:
        seed: int = 0
        kernel_backend: str = "auto"
    """


class TestConfigThreadingSeam:
    def test_fully_threaded_option_is_clean(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {
            "core/config.py": SEAM_CONFIG,
            "cli.py": """\
            from repro.core.config import InferenceConfig

            def build(parser, args):
                parser.add_argument("--kernel-backend", default="auto")
                return InferenceConfig(kernel_backend=args.kernel_backend)
            """,
            "core/engine.py": """\
            def run(config):
                return config.kernel_backend
            """,
        })
        assert report.findings == []

    def test_missing_cli_flag_and_forwarding_fire(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {
            "core/config.py": SEAM_CONFIG,
            "cli.py": """\
            from repro.core.config import InferenceConfig

            def build(args):
                return InferenceConfig(seed=args.seed)
            """,
            "core/engine.py": """\
            def run(config):
                return config.kernel_backend
            """,
        })
        found = messages(report, "seam-config-threading")
        assert len(found) == 2
        assert any("--kernel-backend" in message for message in found)
        assert any("not forwarded" in message for message in found)

    def test_option_never_read_by_engine_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {
            "core/config.py": SEAM_CONFIG,
            "cli.py": """\
            from repro.core.config import InferenceConfig

            def build(parser, args):
                parser.add_argument("--kernel-backend", default="auto")
                return InferenceConfig(kernel_backend=args.kernel_backend)
            """,
            "core/engine.py": """\
            def run(config):
                return config.seed
            """,
        })
        found = messages(report, "seam-config-threading")
        assert len(found) == 1 and "never read by" in found[0]


class TestSuppressionHygiene:
    def test_missing_justification_is_reported(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                return list(set(xs))  # repro: allow(det-set-iter)
            """})
        assert rules_fired(report) == [BAD_SUPPRESSION]
        assert "missing its justification" in messages(report, BAD_SUPPRESSION)[0]
        # The finding itself is still silenced (rule name matched the line).
        assert len(report.suppressed) == 1

    def test_unknown_rule_is_reported(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f():
                return 1  # repro: allow(no-such-rule): because
            """})
        assert rules_fired(report) == [BAD_SUPPRESSION]
        assert "unknown rule" in messages(report, BAD_SUPPRESSION)[0]

    def test_unused_suppression_is_reported(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                return sorted(xs)  # repro: allow(det-set-iter): stale comment
            """})
        assert rules_fired(report) == [BAD_SUPPRESSION]
        assert "unused suppression" in messages(report, BAD_SUPPRESSION)[0]

    def test_unused_check_skipped_under_select(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            def f(xs):
                return sorted(xs)  # repro: allow(det-set-iter): stale comment
            """}, select=["det-raw-random"])
        assert report.findings == []

    def test_docstring_example_is_not_a_suppression(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": '''\
            """Docs showing the syntax:

                x = list(s)  # repro: allow(det-set-iter): example only
            """

            def f(xs):
                return sorted(xs)
            '''})
        assert report.findings == []
        assert report.suppressed == []


class TestParseError:
    def test_unparseable_file_is_reported(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": "def broken(:\n"})
        assert rules_fired(report) == [PARSE_ERROR]


class TestSelect:
    def test_unknown_rule_id_raises(self, tmp_path: Path) -> None:
        with pytest.raises(ValueError, match="unknown rule id"):
            analyze(tmp_path, {"mod.py": "x = 1\n"}, select=["nope"])

    def test_select_restricts_rules(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"mod.py": """\
            import random

            def f(xs):
                random.shuffle(xs)
                return list(set(xs))
            """}, select=["det-set-iter"])
        assert rules_fired(report) == ["det-set-iter"]


class TestObsPurity:
    def test_random_import_in_obs_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"repro/obs/tracer.py": """\
            import random

            def jitter():
                return random.random()
            """}, select=["obs-purity"])
        assert rules_fired(report) == ["obs-purity"]
        assert "randomness" in messages(report, "obs-purity")[0]

    def test_rng_and_session_imports_fire(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"repro/obs/export.py": """\
            from repro.utils.rng import RandomSource
            from repro.core.session import EngineSession
            """}, select=["obs-purity"])
        fired = messages(report, "obs-purity")
        assert len(fired) >= 2
        assert any("RandomSource" in message for message in fired)
        assert any("repro.core.session" in message for message in fired)

    def test_clock_mutation_fires(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"repro/obs/tracer.py": """\
            def finish(span, clock):
                clock.advance(1.0)
                clock.charge("scan", 4)
            """}, select=["obs-purity"])
        assert len(messages(report, "obs-purity")) == 2

    def test_clean_obs_module_passes(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"repro/obs/tracer.py": """\
            import threading

            from repro.utils.clock import wall_now

            class Tracer:
                def __init__(self, simulated_now=None):
                    self._lock = threading.Lock()
                    self._simulated_now = simulated_now

                def now(self):
                    return wall_now()

                def read_simulated(self):
                    if self._simulated_now is None:
                        return 0.0
                    return self._simulated_now()
            """}, select=["obs-purity"])
        assert report.findings == []

    def test_rule_is_scoped_to_obs_directory(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"repro/inference/walksat.py": """\
            import random

            def f():
                return random.random()
            """}, select=["obs-purity"])
        assert report.findings == []

    def test_suppression_comment_silences(self, tmp_path: Path) -> None:
        report = analyze(tmp_path, {"repro/obs/debug.py": """\
            import random  # repro: allow(obs-purity): debug-only sampler

            def sample():
                return random.random()
            """}, select=["obs-purity"])
        assert report.findings == []
        assert report.suppressed
