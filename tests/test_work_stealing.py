"""Work-stealing dispatch and shared-memory result shipping.

The determinism suite for the steal scheduler: the same seed produces
identical assignments, marginals and deadline reports under worker counts
1/2/4, under ``dispatch="wave"``, and under an injected slow worker (one
worker stalled via the test hook, forcing maximal stealing skew).  Plus
the result-shipping layer: shared-memory round-trips are exact, oversized
results fall back to the pickled queue gracefully (counted, never
truncated), and the scheduler reports the shipping split.
"""

import pytest

from repro.grounding.clause_table import GroundClauseStore
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.scheduling import run_components
from repro.inference.walksat import WalkSATOptions
from repro.mrf.graph import MRF
from repro.parallel import processes_available
from repro.parallel.buffers import ResultBufferSet
from repro.parallel.pool import (
    ComponentOutcome,
    ComponentTask,
    WorkerPool,
    execute_component_task,
)
from repro.parallel.scheduler import deadline_cutoff, run_component_tasks
from repro.utils.rng import RandomSource

BACKENDS = [
    backend for backend in ("serial", "threads", "processes")
    if backend != "processes" or processes_available()
]
WORKER_COUNTS = (1, 2, 4)


def conflicted_chain(n_atoms, first_atom=1, weight=1.0):
    """A chain component that never reaches zero cost (predictable flips)."""
    store = GroundClauseStore()
    atoms = list(range(first_atom, first_atom + n_atoms))
    for left, right in zip(atoms, atoms[1:]):
        store.add((left, right), weight)
    for atom in atoms:
        store.add((atom,), weight)
        store.add((-atom,), weight * 0.8)
    return MRF.from_store(store)


def imbalanced_components():
    """One giant plus several tiny components — the stealing stress shape."""
    sizes = [14, 3, 3, 2, 2, 2]
    components = []
    base = 1
    for size in sizes:
        components.append(conflicted_chain(size, first_atom=base))
        base += 1000
    return components


def walksat_tasks(components, flips=400):
    rng = RandomSource(7)
    return [
        ComponentTask(
            index=index,
            kind="walksat",
            seed=rng.spawn(index + 1).seed,
            walksat=WalkSATOptions(max_flips=flips, trace_label=f"component-{index}"),
        )
        for index in range(len(components))
    ]


def mcsat_tasks(components, samples=6, burn_in=2):
    rng = RandomSource(7)
    return [
        ComponentTask(
            index=index,
            kind="mcsat",
            seed=rng.spawn(index + 1).seed,
            mcsat=MCSatOptions(samples=samples, burn_in=burn_in),
        )
        for index in range(len(components))
    ]


def result_fields(result):
    """Comparable projection of a WalkSATResult (trace included).

    ``seconds`` is wall-clock and excluded — it is the one field that
    legitimately differs between executions of the same seeded search.
    """
    return (
        result.best_assignment,
        result.best_cost,
        result.flips,
        result.tries,
        result.reached_target,
        result.hitting_time,
        result.trace.label,
        result.trace.grounding_seconds,
        [(p.time, p.cost, p.flips) for p in result.trace.points],
    )


class TestDeadlineCutoff:
    def test_no_deadline_never_cuts(self):
        assert deadline_cutoff([1.0, 2.0], None) is None

    def test_unknown_cost_blocks_proof(self):
        # Position 1's cost is unknown, so no crossing at or before it is
        # provable yet.
        assert deadline_cutoff([1.0, None, 1.0], 5.0) is None

    def test_cutoff_stable_once_provable(self):
        # The prefix 0..1 crosses the deadline whatever position 2 costs.
        assert deadline_cutoff([2.0, 3.0, None], 4.0) == 2
        assert deadline_cutoff([2.0, 3.0, 100.0], 4.0) == 2

    def test_zero_deadline_cuts_at_zero(self):
        assert deadline_cutoff([None, None], 0.0) == 0

    def test_budget_covering_everything(self):
        assert deadline_cutoff([1.0, 1.0], 10.0) is None


class TestStealDeterminism:
    """Same seed => identical results across dispatch modes and workers."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("dispatch", ("steal", "wave"))
    def test_map_search_matches_serial_reference(self, backend, workers, dispatch):
        components = imbalanced_components()
        reference = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=600),
            RandomSource(11),
            workers=1,
            parallel_backend="serial",
        ).run(components, total_flips=600)
        result = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=600),
            RandomSource(11),
            workers=workers,
            parallel_backend=backend,
            dispatch=dispatch,
        ).run(components, total_flips=600)
        assert result.best_assignment == reference.best_assignment
        assert result.best_cost == reference.best_cost
        assert result.flips == reference.flips

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dispatch", ("steal", "wave"))
    def test_marginals_match_serial_reference(self, backend, dispatch):
        components = imbalanced_components()[:3]
        reference = MCSat(
            MCSatOptions(samples=6, burn_in=2), RandomSource(5)
        ).run_components(components, parallel_backend="serial", workers=1)
        result = MCSat(
            MCSatOptions(samples=6, burn_in=2), RandomSource(5)
        ).run_components(
            components, parallel_backend=backend, workers=2, dispatch=dispatch
        )
        assert result.probabilities == reference.probabilities

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_deadline_report_independent_of_dispatch_and_workers(
        self, backend, workers
    ):
        components = imbalanced_components()
        outcomes = {}
        for dispatch in ("steal", "wave"):
            searcher = ComponentAwareWalkSAT(
                WalkSATOptions(max_flips=600, deadline_seconds=1e-9),
                RandomSource(11),
                workers=workers,
                parallel_backend=backend,
                dispatch=dispatch,
            )
            outcomes[dispatch] = searcher.run(components, total_flips=600)
        reference = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=600, deadline_seconds=1e-9),
            RandomSource(11),
            workers=1,
            parallel_backend="serial",
        ).run(components, total_flips=600)
        for dispatch, result in outcomes.items():
            label = f"{backend}/{dispatch}/workers={workers}"
            assert result.skipped_components == reference.skipped_components, label
            assert result.best_assignment == reference.best_assignment, label
            assert result.best_cost == reference.best_cost, label


class TestSlowWorker:
    """An injected stall changes who runs what, never what comes out."""

    def test_threads_steal_with_stalled_worker(self):
        components = imbalanced_components()
        tasks = walksat_tasks(components)
        reference = run_component_tasks(
            components, walksat_tasks(components), backend="serial", workers=1
        )
        outcome = run_component_tasks(
            components,
            tasks,
            backend="threads",
            workers=2,
            dispatch="steal",
            stall_worker=(0, 0.02),
        )
        for got, want in zip(outcome.results, reference.results):
            assert result_fields(got) == result_fields(want)
        # The healthy worker picked up the slack: every task ran, and the
        # per-worker attribution accounts for all of them.
        assert outcome.executed == len(components)
        assert sum(outcome.worker_task_counts.values()) == len(components)

    @pytest.mark.skipif(not processes_available(), reason="fork not available")
    def test_processes_steal_with_stalled_worker(self):
        components = imbalanced_components()
        reference = run_component_tasks(
            components, walksat_tasks(components), backend="serial", workers=1
        )
        with WorkerPool(components, 2, stall_worker=(0, 0.02)) as pool:
            outcome = run_component_tasks(
                components,
                walksat_tasks(components),
                backend="processes",
                workers=2,
                dispatch="steal",
                pool=pool,
            )
        for got, want in zip(outcome.results, reference.results):
            assert result_fields(got) == result_fields(want)
        assert outcome.executed == len(components)
        assert sum(outcome.worker_task_counts.values()) == len(components)

    def test_stalled_worker_does_not_change_deadline_report(self):
        components = imbalanced_components()
        reference = run_component_tasks(
            components,
            walksat_tasks(components),
            backend="serial",
            workers=1,
            deadline_seconds=1e-9,
            placeholder=_zero_placeholder(components),
        )
        outcome = run_component_tasks(
            components,
            walksat_tasks(components),
            backend="threads",
            workers=4,
            dispatch="steal",
            deadline_seconds=1e-9,
            placeholder=_zero_placeholder(components),
            stall_worker=(1, 0.02),
        )
        assert outcome.skipped == reference.skipped
        assert outcome.dispatch_order == reference.dispatch_order
        for got, want in zip(outcome.results, reference.results):
            assert result_fields(got) == result_fields(want)


def _zero_placeholder(components):
    from repro.inference.state import make_search_state
    from repro.inference.walksat import WalkSATResult

    def placeholder(index):
        state = make_search_state(components[index])
        result = WalkSATResult(
            best_assignment=state.assignment_dict(),
            best_cost=state.cost,
            flips=0,
            tries=0,
            seconds=0.0,
        )
        return ComponentOutcome(index, result, 0.0)

    return placeholder


@pytest.mark.skipif(not processes_available(), reason="fork not available")
class TestResultShipping:
    def test_walksat_results_ship_via_shared_memory(self):
        components = imbalanced_components()
        tasks = walksat_tasks(components)
        expected = [
            execute_component_task(task, component)
            for task, component in zip(tasks, components)
        ]
        with WorkerPool(components, 2) as pool:
            outcome = run_component_tasks(
                components, tasks, backend="processes", workers=2, pool=pool
            )
            assert pool.shm_shipped == len(components)
            assert pool.pickle_shipped == 0
            assert pool.shm_bytes > 0
        assert outcome.shm_shipped == len(components)
        assert outcome.pickle_shipped == 0
        assert outcome.shm_bytes > 0
        for got, want in zip(outcome.results, expected):
            assert result_fields(got) == result_fields(want.result)

    def test_marginal_results_ship_via_shared_memory(self):
        components = imbalanced_components()[:3]
        tasks = mcsat_tasks(components)
        expected = [
            execute_component_task(task, component)
            for task, component in zip(tasks, components)
        ]
        with WorkerPool(components, 2) as pool:
            outcome = run_component_tasks(
                components, tasks, backend="processes", workers=2, pool=pool
            )
            assert pool.shm_shipped == len(components)
            assert pool.pickle_shipped == 0
        for got, want in zip(outcome.results, expected):
            assert got.probabilities == want.result.probabilities
            assert got.samples == want.result.samples
            assert got.burn_in == want.result.burn_in

    def test_oversized_trace_falls_back_to_pickle(self):
        components = imbalanced_components()
        tasks = walksat_tasks(components)
        expected = [
            execute_component_task(task, component)
            for task, component in zip(tasks, components)
        ]
        assert any(len(out.result.trace.points) > 0 for out in expected)
        # A zero-capacity trace region cannot hold any trace point, so
        # every result must take the pickled path — bit-identically.
        with WorkerPool(components, 2, trace_capacity=0) as pool:
            outcome = run_component_tasks(
                components, tasks, backend="processes", workers=2, pool=pool
            )
            assert pool.pickle_shipped == len(components)
            assert pool.shm_shipped == 0
        assert outcome.pickle_shipped == len(components)
        assert outcome.shm_shipped == 0
        for got, want in zip(outcome.results, expected):
            assert result_fields(got) == result_fields(want.result)

    def test_result_region_roundtrip_is_exact(self):
        components = imbalanced_components()[:2]
        tasks = walksat_tasks(components)
        buffers = ResultBufferSet.pack(components)
        try:
            for task, component in zip(tasks, components):
                outcome = execute_component_task(task, component)
                wrote = buffers.write_outcome(
                    task.index, outcome.result, outcome.simulated_seconds,
                    component.atom_ids,
                )
                assert wrote
                rebuilt, simulated = buffers.read_outcome(
                    task.index, component.atom_ids,
                    trace_label=task.walksat.trace_label,
                )
                assert simulated == outcome.simulated_seconds
                assert result_fields(rebuilt) == result_fields(outcome.result)
                # Dict insertion order is part of the parity contract.
                assert list(rebuilt.best_assignment) == list(
                    outcome.result.best_assignment
                )
        finally:
            buffers.destroy()


class TestTelemetry:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scheduler_reports_execution_counts(self, backend):
        components = imbalanced_components()
        outcome = run_component_tasks(
            components,
            walksat_tasks(components),
            backend=backend,
            workers=2,
            dispatch="steal",
        )
        assert outcome.dispatch == "steal"
        assert outcome.executed == len(components)
        assert outcome.discarded == 0
        assert outcome.steals >= 0
        if backend != "serial":
            assert sum(outcome.worker_task_counts.values()) == len(components)

    def test_wave_dispatch_is_reported(self):
        components = imbalanced_components()
        outcome = run_component_tasks(
            components,
            walksat_tasks(components),
            backend="threads",
            workers=2,
            dispatch="wave",
        )
        assert outcome.dispatch == "wave"
        assert outcome.executed == len(components)
        # A barrier assignment is not a steal, no matter how many waves ran.
        assert outcome.steals == 0

    def test_unknown_dispatch_mode_is_rejected(self):
        components = imbalanced_components()[:2]
        with pytest.raises(ValueError):
            run_component_tasks(
                components,
                walksat_tasks(components),
                backend="serial",
                workers=1,
                dispatch="bogus",
            )
