"""Tests for the greedy partitioner, bin packing, loading and the tradeoff
estimator."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.example1 import example1_mrf
from repro.datasets.example2 import example2_mrf
from repro.grounding.clause_table import GroundClauseStore
from repro.mrf.components import connected_components
from repro.mrf.graph import MRF
from repro.partitioning.binpacking import Bin, first_fit_decreasing, packing_quality
from repro.partitioning.bisection import (
    bisection_cost,
    greedy_improve_bisection,
    random_balanced_bisection,
)
from repro.partitioning.greedy import GreedyPartitioner, partition_for_memory_budget
from repro.partitioning.loader import BatchLoader
from repro.partitioning.tradeoff import partitioning_benefit
from repro.rdbms.database import Database
from repro.utils.rng import RandomSource


def chain_mrf(n_atoms=20, weight_step=True):
    """A path graph: clause i connects atoms i and i+1."""
    store = GroundClauseStore()
    for index in range(1, n_atoms):
        weight = float(index) if weight_step else 1.0
        store.add((index, index + 1), weight)
    return MRF.from_store(store)


class TestGreedyPartitioner:
    def test_infinite_bound_recovers_components(self):
        mrf = example1_mrf(5)
        partitioning = GreedyPartitioner(math.inf).partition(mrf)
        assert partitioning.partition_count == 5
        assert partitioning.cut_size == 0
        components = connected_components(mrf)
        assert sorted(map(sorted, partitioning.atom_partitions)) == sorted(
            sorted(c.atom_ids) for c in components.components
        )

    def test_size_bound_respected(self):
        mrf = chain_mrf(30)
        bound = 12
        partitioning = GreedyPartitioner(bound).partition(mrf)
        assert partitioning.partition_count > 1
        for size in partitioning.sizes(mrf):
            assert size <= bound

    def test_every_clause_assigned_or_cut(self):
        mrf = chain_mrf(25)
        partitioning = GreedyPartitioner(10).partition(mrf)
        assert len(partitioning.clause_assignment) + partitioning.cut_size == mrf.clause_count

    def test_partitions_cover_all_atoms_disjointly(self):
        mrf = chain_mrf(25)
        partitioning = GreedyPartitioner(10).partition(mrf)
        covered = [atom for atoms in partitioning.atom_partitions for atom in atoms]
        assert sorted(covered) == sorted(mrf.atom_ids)

    def test_high_weight_clauses_preferred(self):
        # Clause weights increase along the chain; the partitioner should cut
        # lower-weight clauses rather than the heaviest ones.
        mrf = chain_mrf(20, weight_step=True)
        partitioning = GreedyPartitioner(15).partition(mrf)
        assert partitioning.cut_size > 0
        cut_weights = [abs(mrf.clauses[i].weight) for i in partitioning.cut_clauses]
        kept_weights = [abs(mrf.clauses[i].weight) for i in partitioning.clause_assignment]
        assert min(kept_weights) >= 1.0
        assert max(cut_weights) < max(kept_weights)

    def test_partition_mrfs_and_cut_objects(self):
        mrf = chain_mrf(10)
        partitioning = GreedyPartitioner(8).partition(mrf)
        parts = partitioning.partition_mrfs(mrf)
        assert sum(part.clause_count for part in parts) == len(partitioning.clause_assignment)
        assert len(partitioning.cut_clause_objects(mrf)) == partitioning.cut_size
        assert partitioning.cut_weight(mrf) > 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            GreedyPartitioner(0)

    def test_memory_budget_wrapper(self):
        mrf = chain_mrf(30)
        partitioning = partition_for_memory_budget(mrf, budget_bytes=64 * 12, bytes_per_unit=64)
        for size in partitioning.sizes(mrf):
            assert size <= 12

    @given(st.integers(min_value=4, max_value=40), st.integers(min_value=4, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_size_bound_property(self, atoms, bound):
        mrf = chain_mrf(atoms)
        partitioning = GreedyPartitioner(bound).partition(mrf)
        assert all(size <= max(bound, 3) for size in partitioning.sizes(mrf))
        covered = sorted(a for atoms_ in partitioning.atom_partitions for a in atoms_)
        assert covered == sorted(mrf.atom_ids)


class TestBinPacking:
    def test_ffd_respects_capacity(self):
        bins = first_fit_decreasing([7, 5, 3, 3, 2], capacity=10, size_of=float)
        assert all(bin_.used <= 10 for bin_ in bins)
        assert sum(len(bin_) for bin_ in bins) == 5

    def test_ffd_is_reasonably_tight(self):
        sizes = [4, 4, 4, 4, 4, 4]
        bins = first_fit_decreasing(sizes, capacity=8, size_of=float)
        assert len(bins) == 3

    def test_oversized_items_get_their_own_bin(self):
        bins = first_fit_decreasing([15, 2], capacity=10, size_of=float)
        assert len(bins) == 2
        assert any(bin_.used > 10 for bin_ in bins)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([1], capacity=0, size_of=float)

    def test_bin_add_checks_capacity(self):
        bin_ = Bin(capacity=5)
        bin_.add("a", 3)
        with pytest.raises(ValueError):
            bin_.add("b", 3)
        assert bin_.free == 2

    def test_packing_quality(self):
        bins = first_fit_decreasing([5, 5], capacity=5, size_of=float)
        count, fill = packing_quality(bins)
        assert count == 2 and fill == pytest.approx(1.0)
        assert packing_quality([]) == (0, 0.0)

    @given(
        st.lists(st.integers(min_value=1, max_value=9), min_size=0, max_size=30),
        st.integers(min_value=10, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_ffd_properties(self, sizes, capacity):
        bins = first_fit_decreasing(sizes, capacity=capacity, size_of=float)
        # Every item is packed exactly once.
        packed = sorted(item for bin_ in bins for item in bin_.items)
        assert packed == sorted(sizes)
        # No bin exceeds capacity (items are all <= capacity here).
        assert all(bin_.used <= capacity for bin_ in bins)
        # FFD guarantee: uses at most ceil(2 * sum / capacity) + 1 bins (a
        # loose but universally valid bound that catches gross regressions).
        if sizes:
            assert len(bins) <= math.ceil(2 * sum(sizes) / capacity) + 1


class TestBatchLoader:
    def _database_with_clause_table(self, mrf):
        # A one-page buffer pool so every clause-table scan pays real
        # (simulated) I/O instead of hitting a warm cache.
        database = Database(page_size=16, buffer_pool_pages=1)
        store = GroundClauseStore()
        for clause in mrf.clauses:
            store.add(clause.literals, clause.weight, clause.source)
        store.store_in_database(database)
        return database

    def test_batched_fewer_scans_than_one_by_one(self):
        mrf = example1_mrf(40)
        components = connected_components(mrf).components
        batched_db = self._database_with_clause_table(mrf)
        batched = BatchLoader(batched_db, memory_budget=100.0).load(components, batched=True)
        one_by_one_db = self._database_with_clause_table(mrf)
        one_by_one = BatchLoader(one_by_one_db, memory_budget=100.0).load(
            components, batched=False
        )
        assert batched.batch_count < one_by_one.batch_count
        assert one_by_one.batch_count == len(components)
        assert batched.component_count == len(components)
        assert batched.scans < one_by_one.scans
        assert batched.simulated_seconds < one_by_one.simulated_seconds

    def test_peak_batch_size_within_budget(self):
        mrf = example1_mrf(20)
        components = connected_components(mrf).components
        database = self._database_with_clause_table(mrf)
        plan = BatchLoader(database, memory_budget=50.0).load(components)
        assert plan.peak_batch_size() <= 50.0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            BatchLoader(Database(), memory_budget=0)


class TestBisection:
    def test_cost_counts_spanning_clauses(self):
        mrf = chain_mrf(6, weight_step=False)
        # Splitting a path in the middle cuts exactly one clause.
        assert bisection_cost(mrf, {1, 2, 3}) == 1
        assert bisection_cost(mrf, set(mrf.atom_ids)) == 0

    def test_random_bisection_is_balanced(self):
        mrf = chain_mrf(10, weight_step=False)
        one, two = random_balanced_bisection(mrf, RandomSource(0))
        assert abs(len(one) - len(two)) <= 1
        assert sorted(one + two) == sorted(mrf.atom_ids)

    def test_greedy_improvement_never_worse(self):
        mrf, side_one, side_two = example2_mrf(4)
        rng = RandomSource(3)
        random_one, random_two = random_balanced_bisection(mrf, rng)
        start_cost = bisection_cost(mrf, random_one)
        _, _, improved = greedy_improve_bisection(mrf, random_one, random_two, max_swaps=20)
        assert improved <= start_cost
        # The natural split of Example 2 cuts exactly one clause.
        assert bisection_cost(mrf, side_one) == 1


class TestTradeoffEstimator:
    def test_component_partitioning_is_beneficial(self):
        mrf = example1_mrf(12)
        partitioning = GreedyPartitioner(math.inf).partition(mrf)
        estimate = partitioning_benefit(mrf, partitioning, steps_per_round=1000)
        assert estimate.is_beneficial
        assert estimate.cut_clauses == 0

    def test_heavy_cut_is_detrimental(self):
        mrf = chain_mrf(12, weight_step=False)
        partitioning = GreedyPartitioner(4).partition(mrf)
        estimate = partitioning_benefit(
            mrf, partitioning, steps_per_round=10_000, positive_cost_components=1
        )
        assert estimate.slowdown_term > 0
        assert not estimate.is_beneficial

    def test_invalid_steps(self):
        mrf = chain_mrf(5)
        partitioning = GreedyPartitioner(math.inf).partition(mrf)
        with pytest.raises(ValueError):
            partitioning_benefit(mrf, partitioning, steps_per_round=0)

    def test_estimate_terms_match_the_formula(self):
        """W = 2^(N/3) - T * |cut| / |E| on a crafted partitioning."""
        mrf = chain_mrf(12, weight_step=False)  # 11 clauses
        partitioning = GreedyPartitioner(8).partition(mrf)
        estimate = partitioning_benefit(mrf, partitioning, steps_per_round=100)
        assert estimate.total_clauses == 11
        assert estimate.cut_clauses == partitioning.cut_size
        assert estimate.positive_components == partitioning.partition_count
        assert estimate.speedup_term == pytest.approx(
            2.0 ** (partitioning.partition_count / 3.0)
        )
        assert estimate.slowdown_term == pytest.approx(
            100 * partitioning.cut_size / 11
        )
        assert estimate.benefit == pytest.approx(
            estimate.speedup_term - estimate.slowdown_term
        )

    def test_positive_component_override_flips_the_verdict(self):
        """The caller's knowledge of zero-cost components changes the call:
        the same cut is worth paying for many positive-cost components and
        not for a single one."""
        mrf = chain_mrf(40, weight_step=False)
        partitioning = GreedyPartitioner(6).partition(mrf)
        assert partitioning.partition_count >= 8
        optimistic = partitioning_benefit(mrf, partitioning, steps_per_round=150)
        pessimistic = partitioning_benefit(
            mrf, partitioning, steps_per_round=150, positive_cost_components=1
        )
        assert optimistic.is_beneficial
        assert not pessimistic.is_beneficial
        assert optimistic.slowdown_term == pessimistic.slowdown_term

    def test_exponent_cap_keeps_the_estimate_finite(self):
        mrf = example1_mrf(400)
        partitioning = GreedyPartitioner(math.inf).partition(mrf)
        estimate = partitioning_benefit(
            mrf, partitioning, steps_per_round=10, cap_exponent=60.0
        )
        assert estimate.speedup_term == 2.0 ** 60
        assert math.isfinite(estimate.benefit)
        assert estimate.is_beneficial

    def test_empty_mrf_has_zero_slowdown(self):
        mrf = MRF.from_clauses([])
        partitioning = GreedyPartitioner(math.inf).partition(mrf)
        estimate = partitioning_benefit(mrf, partitioning, steps_per_round=10)
        assert estimate.slowdown_term == 0.0
        assert estimate.cut_clauses == 0
