"""Tests for filter/join expressions."""

import pytest

from repro.rdbms.expressions import (
    And,
    ColumnRef,
    Comparison,
    Const,
    IsNull,
    Not,
    Or,
    column_equals,
    columns_equal,
    conjunction,
)
from repro.rdbms.schema import TableSchema
from repro.rdbms.types import ColumnType

SCHEMA = TableSchema.of(
    ("a", ColumnType.INTEGER), ("b", ColumnType.INTEGER), ("t", ColumnType.TRUTH)
)


def evaluate(expression, row):
    return expression.bind(SCHEMA)(row)


class TestBasicExpressions:
    def test_const_and_column(self):
        assert evaluate(Const(5), (1, 2, None)) == 5
        assert evaluate(ColumnRef("b"), (1, 2, None)) == 2

    def test_comparisons(self):
        assert evaluate(Comparison("=", ColumnRef("a"), Const(1)), (1, 2, None)) is True
        assert evaluate(Comparison("!=", ColumnRef("a"), ColumnRef("b")), (1, 2, None)) is True
        assert evaluate(Comparison("<", ColumnRef("a"), ColumnRef("b")), (1, 2, None)) is True
        assert evaluate(Comparison(">=", ColumnRef("a"), Const(1)), (1, 2, None)) is True

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("~", ColumnRef("a"), Const(1))

    def test_null_comparisons_are_false(self):
        assert evaluate(Comparison("=", ColumnRef("t"), Const(True)), (1, 2, None)) is False
        assert evaluate(Comparison("!=", ColumnRef("t"), Const(True)), (1, 2, None)) is False

    def test_null_safe_distinct_from(self):
        distinct = Comparison("is_distinct_from", ColumnRef("t"), Const(True))
        assert evaluate(distinct, (1, 2, None)) is True
        assert evaluate(distinct, (1, 2, False)) is True
        assert evaluate(distinct, (1, 2, True)) is False
        same = Comparison("is_not_distinct_from", ColumnRef("t"), Const(None))
        assert evaluate(same, (1, 2, None)) is True

    def test_is_null(self):
        assert evaluate(IsNull(ColumnRef("t")), (1, 2, None)) is True
        assert evaluate(IsNull(ColumnRef("t"), negated=True), (1, 2, None)) is False

    def test_boolean_connectives(self):
        both = And.of(
            Comparison("=", ColumnRef("a"), Const(1)),
            Comparison("=", ColumnRef("b"), Const(2)),
        )
        either = Or.of(
            Comparison("=", ColumnRef("a"), Const(9)),
            Comparison("=", ColumnRef("b"), Const(2)),
        )
        assert evaluate(both, (1, 2, None)) is True
        assert evaluate(either, (1, 2, None)) is True
        assert evaluate(Not(both), (1, 2, None)) is False
        assert evaluate(And(()), (0, 0, None)) is True
        assert evaluate(Or(()), (0, 0, None)) is False

    def test_referenced_columns(self):
        expression = And.of(column_equals("a", 1), columns_equal("a", "b"))
        assert expression.referenced_columns() == ["a", "a", "b"]

    def test_conjunction_helper(self):
        assert isinstance(conjunction([]), And)
        single = column_equals("a", 1)
        assert conjunction([single]) is single
        assert isinstance(conjunction([single, column_equals("b", 2)]), And)


class TestSqlRendering:
    def test_comparison_sql(self):
        assert column_equals("a", 1).to_sql() == "a = 1"
        assert Comparison("!=", ColumnRef("a"), Const("x")).to_sql() == "a <> 'x'"
        assert (
            Comparison("is_distinct_from", ColumnRef("t"), Const(True)).to_sql()
            == "t IS DISTINCT FROM TRUE"
        )

    def test_connective_sql(self):
        text = And.of(column_equals("a", 1), Not(column_equals("b", 2))).to_sql()
        assert "AND" in text and "NOT" in text
        assert And(()).to_sql() == "TRUE"
        assert Or(()).to_sql() == "FALSE"

    def test_isnull_sql(self):
        assert IsNull(ColumnRef("t")).to_sql() == "t IS NULL"
        assert IsNull(ColumnRef("t"), negated=True).to_sql() == "t IS NOT NULL"
