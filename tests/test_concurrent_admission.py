"""Concurrent request admission: interleaved requests equal their solo runs.

The session's concurrency contract (:mod:`repro.core.session`): up to
``max_inflight_requests`` submitted requests run interleaved over the
shared session state — persistent pool, shared-memory result banks,
grounding caches, kernel-state lease — and every request's MAP
assignment, marginals, skipped set and telemetry are bit-identical to
running the same request alone.  Checked across parallel backends,
dispatch modes and worker counts, including a per-request deadline and
an injected slow worker (the ``stall_worker`` hook) forcing maximal
interleaving skew on a shared pool.
"""

import threading

import pytest

from repro.cli import main
from repro.core.config import InferenceConfig
from repro.core.engine import TuffyEngine
from repro.datasets import DatasetScale, load_dataset
from repro.grounding.clause_table import GroundClauseStore
from repro.inference.walksat import WalkSATOptions
from repro.mrf.graph import MRF
from repro.parallel import processes_available
from repro.parallel.pool import ComponentTask, WorkerPool
from repro.parallel.scheduler import run_component_tasks
from repro.utils.rng import RandomSource

BACKENDS = [
    backend for backend in ("serial", "threads", "processes")
    if backend != "processes" or processes_available()
]
WORKER_COUNTS = (1, 2, 4)


def _program():
    return load_dataset("RC", DatasetScale(factor=0.25, seed=0)).program


PROGRAM_TEXT = """
*wrote(author, paper)
*refers(paper, paper)
cat(paper, category)
5 cat(p, c1), cat(p, c2) => c1 = c2
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2 cat(p1, c), refers(p1, p2) => cat(p2, c)
-1 cat(p, "Networking")
"""

EVIDENCE_TEXT = """
wrote(Joe, P1)
wrote(Joe, P2)
wrote(Jake, P3)
refers(P1, P3)
cat(P2, "DB")
"""


def _delta_program():
    from repro.core.program import MLNProgram

    program = MLNProgram.from_text(PROGRAM_TEXT, EVIDENCE_TEXT)
    program.add_constants("category", ["DB", "AI", "Networking"])
    return program


def _config(**overrides):
    defaults = dict(seed=0, max_flips=1500, mcsat_samples=20)
    defaults.update(overrides)
    return InferenceConfig(**defaults)


def _assert_same_map(result, reference, key=None):
    assert result.assignment == reference.assignment, key
    assert result.cost == reference.cost, key
    assert result.flips == reference.flips, key
    assert result.component_count == reference.component_count, key
    # An interleaved request never pays *more* simulated I/O than its solo
    # run — concurrent setup is serialized and the buffer cache can only
    # absorb repeated scans.
    assert result.simulated_seconds <= reference.simulated_seconds, key


def _assert_same_marginal(result, reference, key=None):
    assert result.marginals.probabilities == reference.marginals.probabilities, key
    assert result.assignment == reference.assignment, key
    assert result.cost == reference.cost, key


class TestConcurrentAdmissionParity:
    """K mixed in-flight requests, each bit-equal to its solo run."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_mixed_inflight_requests_match_solo_runs(self, backend, workers):
        solo_map_0 = TuffyEngine(_program(), _config(
            parallel_backend=backend, workers=workers)).run_map(seed=0)
        solo_map_7 = TuffyEngine(_program(), _config(
            parallel_backend=backend, workers=workers)).run_map(seed=7)
        solo_marginal = TuffyEngine(_program(), _config(
            parallel_backend=backend, workers=workers)).run_marginal(seed=3)
        solo_deadline = TuffyEngine(_program(), _config(
            parallel_backend=backend, workers=workers)).run_map(
            seed=5, deadline_seconds=1e-9)

        with TuffyEngine(_program(), _config(
            parallel_backend=backend, workers=workers, max_inflight_requests=4,
        )) as engine:
            futures = [
                engine.submit_map(seed=0),
                engine.submit_map(seed=7),
                engine.submit_marginal(seed=3),
                engine.submit_map(seed=5, deadline_seconds=1e-9),
            ]
            got = [future.result() for future in futures]

        key = (backend, workers)
        _assert_same_map(got[0], solo_map_0, key)
        _assert_same_map(got[1], solo_map_7, key)
        _assert_same_marginal(got[2], solo_marginal, key)
        _assert_same_map(got[3], solo_deadline, key)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_wave_dispatch_interleaves_identically(self, backend):
        solo = TuffyEngine(_program(), _config(
            parallel_backend=backend, workers=2, parallel_dispatch="wave",
        )).run_map(seed=0)
        with TuffyEngine(_program(), _config(
            parallel_backend=backend, workers=2, parallel_dispatch="wave",
            max_inflight_requests=3,
        )) as engine:
            futures = [engine.submit_map(seed=0) for _ in range(3)]
            for future in futures:
                _assert_same_map(future.result(), solo, key=backend)

    def test_repeat_interleaved_batches_stay_warm(self):
        # Two consecutive concurrent batches: the second reuses grounding,
        # components and leased states, and still matches the solo run.
        solo = TuffyEngine(_program(), _config(workers=2)).run_map(seed=0)
        with TuffyEngine(_program(), _config(
            workers=2, max_inflight_requests=2,
        )) as engine:
            for _batch in range(2):
                futures = [engine.submit_map(seed=0) for _ in range(2)]
                for future in futures:
                    _assert_same_map(future.result(), solo)
            assert engine.stats.requests == 4
            assert engine.stats.ground_runs == 1

    def test_interleaved_requests_straddle_an_evidence_delta(self):
        # A delta between two batches drains in-flight requests, re-grounds
        # once, and the next batch matches a replayed solo session.
        replay = TuffyEngine(_delta_program(), _config(workers=2))
        replay.run_map(seed=0)
        replay.add_evidence("wrote", ("Jake", "P1"))
        expected = replay.run_map(seed=0)

        with TuffyEngine(_delta_program(), _config(
            workers=2, max_inflight_requests=2,
        )) as engine:
            futures = [engine.submit_map(seed=0) for _ in range(2)]
            for future in futures:
                future.result()
            engine.add_evidence("wrote", ("Jake", "P1"))
            futures = [engine.submit_map(seed=0) for _ in range(2)]
            for future in futures:
                _assert_same_map(future.result(), expected)
            assert engine.stats.ground_runs == 2


class TestSessionGuards:
    """Lifecycle and accounting edges of the admission path."""

    def test_submit_after_close_raises(self):
        engine = TuffyEngine(_delta_program(), _config())
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit_map(seed=0)
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit_marginal(seed=0)

    def test_first_request_reports_component_detection_phase(self):
        # Component detection runs during the first request's setup, after
        # admission — its time must still land in that request's report.
        with TuffyEngine(_program(), _config(workers=2)) as engine:
            result = engine.run_map(seed=0)
        assert "component_detection" in result.phase_seconds

    def test_mismatched_pool_teardown_waits_for_inflight_searches(self, monkeypatch):
        # Regression: _pool_for used to shut a mismatched pool down while
        # another admitted request was still draining its shared-memory
        # result regions.  The teardown must wait for the drain.
        from repro.core import session as session_module
        from repro.core.session import EngineSession

        session = EngineSession(_delta_program(), _config(
            parallel_backend="processes", workers=2))
        events = []

        class OldPool:
            def matches(self, components):
                return False

            def shutdown(self):
                events.append(("shutdown", session._active_searches))

        class FreshPool:
            def __init__(self, components, workers, result_banks=1, metrics=None):
                events.append(("forked", len(components)))

            def shutdown(self):
                pass

        monkeypatch.setattr(session_module, "WorkerPool", FreshPool)
        monkeypatch.setattr(
            session_module, "resolve_parallel_backend", lambda *a, **k: "processes"
        )
        session._pool_holder["pool"] = OldPool()
        session._enter_search()  # a concurrent request mid-search

        done = threading.Event()

        def swap_pool():
            session._pool_for([object(), object()])
            done.set()

        thread = threading.Thread(target=swap_pool)
        thread.start()
        try:
            assert not done.wait(0.2), "teardown did not wait for the drain"
            assert events == []
        finally:
            session._finish_request(None)
            thread.join(timeout=5.0)
        assert done.is_set()
        assert events == [("shutdown", 0), ("forked", 2)]


def conflicted_chain(n_atoms, first_atom=1, weight=1.0):
    """A chain component that never reaches zero cost (predictable flips)."""
    store = GroundClauseStore()
    atoms = list(range(first_atom, first_atom + n_atoms))
    for left, right in zip(atoms, atoms[1:]):
        store.add((left, right), weight)
    for atom in atoms:
        store.add((atom,), weight)
        store.add((-atom,), weight * 0.8)
    return MRF.from_store(store)


def imbalanced_components():
    sizes = [14, 3, 3, 2, 2, 2]
    components = []
    base = 1
    for size in sizes:
        components.append(conflicted_chain(size, first_atom=base))
        base += 1000
    return components


def walksat_tasks(components, flips=400):
    rng = RandomSource(7)
    return [
        ComponentTask(
            index=index,
            kind="walksat",
            seed=rng.spawn(index + 1).seed,
            walksat=WalkSATOptions(max_flips=flips, trace_label=f"component-{index}"),
        )
        for index in range(len(components))
    ]


def result_fields(result):
    return (
        result.best_assignment,
        result.best_cost,
        result.flips,
        result.tries,
        result.trace.label,
        [(p.time, p.cost, p.flips) for p in result.trace.points],
    )


@pytest.mark.skipif(not processes_available(), reason="fork not available")
class TestSharedPoolMultiplexing:
    """Two requests drive one pool at once; tokens route per request."""

    def _drive_concurrently(self, pool, components, request_ids):
        reference = run_component_tasks(
            components, walksat_tasks(components), backend="serial", workers=1
        )
        outcomes = {}
        errors = []

        def drive(request_id):
            try:
                outcomes[request_id] = run_component_tasks(
                    components,
                    walksat_tasks(components),
                    backend="processes",
                    workers=2,
                    dispatch="steal",
                    pool=pool,
                    request_id=request_id,
                )
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=(request_id,))
            for request_id in request_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        return reference, outcomes

    def test_interleaved_requests_with_stalled_worker(self):
        components = imbalanced_components()
        with WorkerPool(
            components, 2, stall_worker=(0, 0.02), result_banks=2
        ) as pool:
            reference, outcomes = self._drive_concurrently(
                pool, components, (1, 2)
            )
        for request_id, outcome in outcomes.items():
            for got, want in zip(outcome.results, reference.results):
                assert result_fields(got) == result_fields(want), request_id
            # Shipping counters are attributed per request, not cumulative
            # across the pool's lifetime.
            assert outcome.shm_shipped == len(components), request_id
            assert outcome.pickle_shipped == 0, request_id
            assert outcome.executed == len(components), request_id

    def test_bank_exhaustion_falls_back_to_pickle(self):
        # One result bank, two in-flight requests: whichever request misses
        # the bank ships every result through the pickled queue — slower,
        # never wrong.
        components = imbalanced_components()
        with WorkerPool(components, 2, result_banks=1) as pool:
            reference, outcomes = self._drive_concurrently(
                pool, components, (1, 2)
            )
        shipped = []
        for request_id, outcome in outcomes.items():
            for got, want in zip(outcome.results, reference.results):
                assert result_fields(got) == result_fields(want), request_id
            assert (
                outcome.shm_shipped + outcome.pickle_shipped == len(components)
            ), request_id
            shipped.append((outcome.shm_shipped, outcome.pickle_shipped))
        total_shm = sum(shm for shm, _pickled in shipped)
        total_pickled = sum(pickled for _shm, pickled in shipped)
        assert total_shm + total_pickled == 2 * len(components)

    def test_shm_token_without_inflight_record_raises(self):
        # Regression: a shm completion token with no in-flight record used
        # to default to bank 0 — another request's live result region.
        components = [conflicted_chain(3)]
        with WorkerPool(components, 1) as pool:
            task = walksat_tasks(components)[0]
            pool.submit(task)
            with pool._route_lock:
                pool._inflight.clear()
            with pytest.raises(RuntimeError, match="no in-flight task record"):
                pool.next_outcome(task.request_id)

    def test_warm_sequential_requests_report_per_request_shipping(self):
        # Regression for the stale-telemetry bug: the second warm request
        # used to report the pool-lifetime cumulative counters.
        components = imbalanced_components()
        with WorkerPool(components, 2, result_banks=1) as pool:
            for request_id in (1, 2):
                outcome = run_component_tasks(
                    components,
                    walksat_tasks(components),
                    backend="processes",
                    workers=2,
                    dispatch="steal",
                    pool=pool,
                    request_id=request_id,
                )
                assert outcome.shm_shipped == len(components), request_id
                assert outcome.pickle_shipped == 0, request_id
                assert (
                    sum(outcome.worker_task_counts.values()) == len(components)
                ), request_id
            # The pool-lifetime counters do accumulate.
            assert pool.shm_shipped == 2 * len(components)


class TestConcurrentCLI:
    def test_session_concurrent_prints_aggregate_throughput(self, capsys):
        status = main([
            "dataset", "RC", "--scale", "0.2", "--max-flips", "500",
            "--session-requests", "3", "--session-concurrent", "3",
        ])
        captured = capsys.readouterr().out
        assert status == 0
        assert "# session (concurrent)" in captured
        assert "aggregate req/sec" in captured
        assert "in-flight" in captured
