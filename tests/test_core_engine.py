"""End-to-end tests of TuffyEngine and the Alchemy baseline engine."""

import math

import pytest

from repro.baselines.alchemy import AlchemyEngine
from repro.core.config import InferenceConfig
from repro.core.engine import TuffyEngine
from repro.core.program import MLNProgram
from repro.mrf.cost import assignment_cost

PROGRAM_TEXT = """
*wrote(author, paper)
*refers(paper, paper)
cat(paper, category)
5 cat(p, c1), cat(p, c2) => c1 = c2
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2 cat(p1, c), refers(p1, p2) => cat(p2, c)
-1 cat(p, "Networking")
"""

EVIDENCE_TEXT = """
wrote(Joe, P1)
wrote(Joe, P2)
wrote(Jake, P3)
refers(P1, P3)
cat(P2, "DB")
"""


def figure1_program():
    program = MLNProgram.from_text(PROGRAM_TEXT, EVIDENCE_TEXT)
    program.add_constants("category", ["DB", "AI", "Networking"])
    return program


class TestTuffyEngine:
    def test_map_inference_classifies_papers(self):
        engine = TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=30_000))
        result = engine.run_map()
        # Papers linked by authorship / citation inherit the evidence labels.
        assert result.truth_of("cat", ["P1", "DB"]) is True
        assert result.truth_of("cat", ["P3", "DB"]) is True
        assert result.truth_of("cat", ["P1", "Networking"]) is False
        # Evidence atoms keep their evidence value.
        assert result.truth_of("cat", ["P2", "DB"]) is True
        assert result.truth_of("cat", ["P9", "DB"]) is None

    def test_reported_cost_matches_assignment(self):
        engine = TuffyEngine(figure1_program(), InferenceConfig(seed=1, max_flips=20_000))
        result = engine.run_map()
        mrf = engine.build_mrf()
        recomputed = assignment_cost(mrf, result.assignment, hard_as_infinite=False)
        recomputed += engine.grounding_result.clauses.evidence_violation_cost
        assert result.cost == pytest.approx(recomputed)

    def test_partitioned_and_monolithic_agree_on_quality(self):
        partitioned = TuffyEngine(
            figure1_program(), InferenceConfig(seed=0, max_flips=20_000, use_partitioning=True)
        ).run_map()
        monolithic = TuffyEngine(
            figure1_program(), InferenceConfig(seed=0, max_flips=20_000, use_partitioning=False)
        ).run_map()
        assert partitioned.cost <= monolithic.cost + 1e-9
        assert partitioned.label == "tuffy"
        assert monolithic.label == "tuffy-p"

    def test_top_down_strategy_equivalent_grounding(self):
        bottom_up = TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=1000))
        top_down = TuffyEngine(
            figure1_program(),
            InferenceConfig(seed=0, max_flips=1000, grounding_strategy="top-down"),
        )
        a = bottom_up.ground()
        b = top_down.ground()
        assert a.ground_clause_count == b.ground_clause_count
        assert a.strategy == "bottom-up" and b.strategy == "top-down"

    def test_lazy_closure_never_grows_clause_count(self):
        plain = TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=100))
        lazy = TuffyEngine(
            figure1_program(), InferenceConfig(seed=0, max_flips=100, use_lazy_closure=True)
        )
        assert lazy.ground().ground_clause_count <= plain.ground().ground_clause_count

    def test_memory_budget_triggers_further_partitioning(self):
        config = InferenceConfig(seed=0, max_flips=5_000, memory_budget_bytes=64 * 30)
        engine = TuffyEngine(figure1_program(), config)
        result = engine.run_map()
        assert result.cost < math.inf
        assert result.peak_memory_bytes <= 64 * 40  # bounded by roughly the budget

    def test_phase_breakdown_and_summary(self):
        engine = TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=2_000))
        result = engine.run_map()
        assert "grounding" in result.phase_seconds
        assert "search" in result.phase_seconds
        summary = result.summary()
        assert summary["components"] == result.component_count
        assert summary["ground_clauses"] > 0
        assert result.flips > 0

    def test_run_marginal_produces_probabilities(self):
        config = InferenceConfig(seed=0, mcsat_samples=20, mcsat_burn_in=5)
        engine = TuffyEngine(figure1_program(), config)
        result = engine.run_marginal()
        assert result.marginals is not None
        probabilities = result.marginals.probabilities
        assert probabilities
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())
        # The strongly supported atom should have a high marginal.
        atom_id = engine.grounding_result.atoms.lookup("cat", ("P1", "DB"))
        assert result.marginals.probability(atom_id) >= 0.5

    def test_run_marginal_honours_configured_kernel_backend(self, monkeypatch):
        """Regression: run_marginal used to build MCSatOptions with the
        default backend, so the config's kernel_backend was ignored."""
        import repro.core.engine as engine_module

        captured = {}
        real_mcsat = engine_module.MCSat

        class SpyMCSat(real_mcsat):
            def __init__(self, options=None, rng=None):
                captured["options"] = options
                super().__init__(options, rng)

        monkeypatch.setattr(engine_module, "MCSat", SpyMCSat)
        config = InferenceConfig(
            seed=0, mcsat_samples=2, mcsat_burn_in=0, kernel_backend="flat"
        )
        TuffyEngine(figure1_program(), config).run_marginal()
        assert captured["options"].kernel_backend == "flat"
        assert captured["options"].samplesat.kernel_backend == "flat"

    def test_kernel_backend_threaded_into_map_search(self, monkeypatch):
        """Every WalkSATOptions the engine constructs carries the configured
        kernel backend (monolithic, component-aware and Gauss-Seidel)."""
        import repro.core.engine as engine_module
        from repro.inference.walksat import WalkSATOptions

        seen = []
        real_init = WalkSATOptions.__init__

        def spy_init(self, *args, **kwargs):
            real_init(self, *args, **kwargs)
            seen.append(self.kernel_backend)

        monkeypatch.setattr(WalkSATOptions, "__init__", spy_init)
        for use_partitioning in (False, True):
            config = InferenceConfig(
                seed=0,
                max_flips=200,
                kernel_backend="flat",
                use_partitioning=use_partitioning,
                memory_budget_bytes=64 * 30 if use_partitioning else None,
            )
            TuffyEngine(figure1_program(), config).run_map()
        AlchemyEngine(
            figure1_program(), InferenceConfig(seed=0, max_flips=200, kernel_backend="flat")
        ).run_map()
        assert seen and all(backend == "flat" for backend in seen)

    def test_marginals_identical_across_kernel_backends(self):
        pytest.importorskip("numpy")
        results = {}
        for backend in ("flat", "vectorized"):
            config = InferenceConfig(
                seed=0, mcsat_samples=15, mcsat_burn_in=3, kernel_backend=backend
            )
            result = TuffyEngine(figure1_program(), config).run_marginal()
            results[backend] = result.marginals.probabilities
        assert results["flat"] == results["vectorized"]

    def test_invalid_kernel_backend_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            InferenceConfig(kernel_backend="simd")

    def test_true_atoms_only_query_atoms(self):
        engine = TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=10_000))
        result = engine.run_map()
        names = {str(atom) for atom in result.true_atoms("cat")}
        assert "cat(P2, DB)" not in names  # evidence, not a query atom
        assert any(name.startswith("cat(P1") for name in names)


class TestAlchemyEngine:
    def test_runs_and_reports_memory_peak(self):
        engine = AlchemyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=10_000))
        result = engine.run_map()
        assert result.label == "alchemy"
        assert result.component_count == 1
        assert result.cost < math.inf
        assert result.peak_memory_bytes > 0

    def test_alchemy_grounding_slower_or_equal_and_memory_larger(self):
        program = figure1_program()
        tuffy = TuffyEngine(program, InferenceConfig(seed=0, max_flips=1_000))
        alchemy = AlchemyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=1_000))
        tuffy_result = tuffy.run_map()
        alchemy_result = alchemy.run_map()
        # The analytic memory model must charge Alchemy for intermediate
        # grounding state that Tuffy leaves inside the RDBMS.
        assert alchemy_result.memory["grounding"] > 0
        assert tuffy_result.memory["grounding"] == 0
        assert alchemy_result.peak_memory_bytes > tuffy_result.peak_memory_bytes

    def test_same_ground_mrf_as_tuffy(self):
        tuffy = TuffyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=100))
        alchemy = AlchemyEngine(figure1_program(), InferenceConfig(seed=0, max_flips=100))
        assert tuffy.ground().ground_clause_count == alchemy.ground().ground_clause_count
