"""Tests for MLNProgram, InferenceConfig and InferenceResult."""

import pytest

from repro.core.config import InferenceConfig
from repro.core.errors import ConfigurationError, ProgramError
from repro.core.program import MLNProgram
from repro.logic.formulas import PredicateFormula
from repro.logic.terms import Constant, Variable

PROGRAM_TEXT = """
*wrote(author, paper)
cat(paper, category)
2 wrote(x, p), cat(p, c) => cat(p, c)
-1 cat(p, "Networking")
"""


class TestMLNProgram:
    def test_from_text_builds_predicates_and_rules(self):
        program = MLNProgram.from_text(PROGRAM_TEXT, "wrote(Joe, P1)")
        assert len(program.predicates) == 2
        assert len(program.rules) == 2
        assert len(program.evidence) == 1
        assert len(program.clauses()) == 2

    def test_declare_and_add_rule_programmatically(self):
        program = MLNProgram("manual")
        cat = program.declare("cat", ["paper", "category"])
        program.add_rule(
            PredicateFormula(cat, (Variable("p"), Constant("DB"))), 1.5, name="bias"
        )
        program.add_hard_rule(PredicateFormula(cat, (Constant("P1"), Constant("DB"))))
        clauses = program.clauses()
        assert len(clauses) == 2
        assert clauses.hard_clauses()

    def test_add_rule_text_requires_known_predicates(self):
        program = MLNProgram()
        program.declare("cat", ["paper", "category"])
        program.add_rule_text("1.5 cat(p, c1), cat(p, c2) => c1 = c2")
        assert len(program.clauses()) == 1

    def test_evidence_updates_domains(self):
        program = MLNProgram.from_text(PROGRAM_TEXT)
        program.add_evidence("wrote", ("Ann", "P7"))
        assert program.domains["author"].constants()[-1].value == "Ann"
        assert program.domains["paper"].constants()[-1].value == "P7"

    def test_evidence_arity_checked(self):
        program = MLNProgram.from_text(PROGRAM_TEXT)
        with pytest.raises(ProgramError):
            program.add_evidence("wrote", ("only-one",))

    def test_unknown_predicate_rejected(self):
        program = MLNProgram()
        with pytest.raises(ProgramError):
            program.add_evidence("nope", ("A",))

    def test_query_atoms_rejected_for_closed_world(self):
        program = MLNProgram.from_text(PROGRAM_TEXT)
        with pytest.raises(ProgramError):
            program.add_query_atom("wrote", ("Joe", "P1"))

    def test_cartesian_atom_generation(self):
        program = MLNProgram.from_text(PROGRAM_TEXT, "wrote(Joe, P1)\nwrote(Ann, P2)")
        program.add_constants("category", ["DB", "AI"])
        registry = program.build_atom_registry()
        # 2 papers x 2 categories query atoms + 2 evidence atoms.
        assert len(registry.query_atom_ids()) == 4
        assert len(registry.evidence_atom_ids()) == 2

    def test_explicit_atom_generation(self):
        program = MLNProgram.from_text(PROGRAM_TEXT, "wrote(Joe, P1)")
        program.add_constants("category", ["DB", "AI"])
        program.add_query_atom("cat", ("P1", "DB"))
        registry = program.build_atom_registry(generate_query_atoms="explicit")
        assert len(registry.query_atom_ids()) == 1

    def test_invalid_generation_mode(self):
        program = MLNProgram.from_text(PROGRAM_TEXT)
        with pytest.raises(ProgramError):
            program.build_atom_registry("everything")

    def test_empty_domain_skips_generation(self):
        program = MLNProgram()
        program.declare("cat", ["paper", "category"])
        registry = program.build_atom_registry()
        assert len(registry) == 0

    def test_statistics_shape(self):
        program = MLNProgram.from_text(PROGRAM_TEXT, "wrote(Joe, P1)")
        program.add_constants("category", ["DB"])
        statistics = program.statistics()
        row = statistics.as_dict()
        assert row["#relations"] == 2
        assert row["#rules"] == 2
        assert row["#evidence tuples"] == 1
        assert row["#query atoms"] == 1
        assert row["#entities"] == 3

    def test_clause_cache_invalidation(self):
        program = MLNProgram.from_text(PROGRAM_TEXT)
        first = len(program.clauses())
        program.add_rule_text("1 cat(p, c) => cat(p, c)")
        assert len(program.clauses()) == first + 1


class TestInferenceConfig:
    def test_defaults_valid(self):
        config = InferenceConfig()
        assert config.grounding_strategy == "bottom-up"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grounding_strategy": "sideways"},
            {"max_flips": 0},
            {"noise": 1.5},
            {"workers": 0},
            {"memory_budget_bytes": 0},
            {"gauss_seidel_rounds": 0},
            {"mcsat_samples": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            InferenceConfig(**kwargs)
