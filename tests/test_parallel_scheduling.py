"""The partition scheduler: buffers, dispatch order, deadline handling.

Covers the pieces under the ``parallel_backend`` seam that the parity
suite does not: the shared-memory component buffers round-trip exactly,
dispatch is largest-first, ``scheduling.run_components`` honors the
deadline by post-hoc bookkeeping (a dispatch position counts iff the
summed simulated costs of the positions before it stay under the
deadline — identical across backends, dispatch modes and worker counts),
and the Gauss-Seidel refinement merge is backend-independent.
"""

import math

import pytest

from repro.grounding.clause_table import GroundClauseStore
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.scheduling import run_components
from repro.inference.walksat import WalkSATOptions
from repro.mrf.graph import MRF
from repro.parallel import processes_available
from repro.parallel.buffers import ComponentBufferSet
from repro.parallel.merge import gauss_seidel_refine
from repro.parallel.pool import ComponentOutcome, ComponentTask, execute_component_task
from repro.parallel.scheduler import dispatch_order
from repro.partitioning.greedy import GreedyPartitioner
from repro.utils.rng import RandomSource

BACKENDS = [
    backend for backend in ("serial", "threads", "processes")
    if backend != "processes" or processes_available()
]


def conflicted_chain(n_atoms, first_atom=1, weight=1.0):
    """A chain component whose optimum cost is strictly positive.

    Unit clauses push every atom both ways, so WalkSAT never reaches zero
    violated clauses and spends its whole flip budget — which makes the
    simulated durations (and therefore deadline behaviour) predictable.
    """
    store = GroundClauseStore()
    atoms = list(range(first_atom, first_atom + n_atoms))
    for left, right in zip(atoms, atoms[1:]):
        store.add((left, right), weight)
    for atom in atoms:
        store.add((atom,), weight)
        store.add((-atom,), weight * 0.8)
    return MRF.from_store(store)


def sized_components():
    """Three disjoint components with strictly decreasing sizes."""
    return [
        conflicted_chain(9, first_atom=1),
        conflicted_chain(5, first_atom=100),
        conflicted_chain(2, first_atom=200),
    ]


def walksat_tasks(components, flips=300, noise=0.5):
    rng = RandomSource(0)
    return [
        ComponentTask(
            index=index,
            kind="walksat",
            seed=rng.spawn(index + 1).seed,
            walksat=WalkSATOptions(max_flips=flips, noise=noise),
        )
        for index in range(len(components))
    ]


def zero_flip_placeholder(components):
    from repro.inference.state import make_search_state
    from repro.inference.walksat import WalkSATResult

    def placeholder(index):
        state = make_search_state(components[index])
        result = WalkSATResult(
            best_assignment=state.assignment_dict(),
            best_cost=state.cost,
            flips=0,
            tries=0,
            seconds=0.0,
        )
        return ComponentOutcome(index, result, 0.0)

    return placeholder


class TestComponentBuffers:
    def test_roundtrip_preserves_structure(self):
        components = sized_components()
        # A hard and a negative clause exercise the weight encoding.
        store = GroundClauseStore()
        store.add((300, 301), math.inf)
        store.add((-301, 302), -2.5)
        components.append(MRF.from_store(store))
        buffers = ComponentBufferSet.pack(components)
        try:
            assert len(buffers) == len(components)
            for index, original in enumerate(components):
                rebuilt = buffers.component(index)
                assert rebuilt.atom_ids == original.atom_ids
                assert [c.literals for c in rebuilt.clauses] == [
                    c.literals for c in original.clauses
                ]
                assert [c.weight for c in rebuilt.clauses] == [
                    c.weight for c in original.clauses
                ]
                original_view = original.flat_view()
                rebuilt_view = rebuilt.flat_view()
                assert rebuilt_view.clause_codes == original_view.clause_codes
                assert rebuilt_view.adjacency == original_view.adjacency
                assert (
                    rebuilt_view.clause_atom_positions
                    == original_view.clause_atom_positions
                )
                # Rebuilt components are cached, not rebuilt per task.
                assert buffers.component(index) is rebuilt
        finally:
            buffers.destroy()

    def test_rebuilt_component_searches_identically(self):
        components = sized_components()
        buffers = ComponentBufferSet.pack(components)
        try:
            task = walksat_tasks(components)[0]
            original = execute_component_task(task, components[0])
            rebuilt = execute_component_task(task, buffers.component(0))
            assert rebuilt.result.best_assignment == original.result.best_assignment
            assert rebuilt.result.best_cost == original.result.best_cost
            assert rebuilt.simulated_seconds == original.simulated_seconds
        finally:
            buffers.destroy()


class TestDispatchOrder:
    def test_largest_first_with_stable_ties(self):
        components = sized_components()
        assert dispatch_order(components) == [0, 1, 2]
        assert dispatch_order(list(reversed(components))) == [2, 1, 0]
        same = [conflicted_chain(3, first_atom=base) for base in (1, 100, 200)]
        assert dispatch_order(same) == [0, 1, 2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scheduler_records_dispatch_order(self, backend):
        components = list(reversed(sized_components()))
        outcome = run_components(
            components,
            walksat_tasks(components),
            parallel_backend=backend,
            workers=2,
        )
        assert outcome.dispatch_order == [2, 1, 0]
        assert outcome.skipped == []


class TestDeadlineHandling:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_expired_deadline_stops_all_dispatch(self, backend):
        components = sized_components()
        tasks = walksat_tasks(components)
        outcome = run_components(
            components,
            tasks,
            parallel_backend=backend,
            workers=2,
            deadline_seconds=0.0,
            placeholder=zero_flip_placeholder(components),
        )
        assert outcome.skipped == [0, 1, 2]
        assert outcome.dispatch_order == []
        assert all(result.flips == 0 for result in outcome.results)
        assert outcome.sequential_simulated_seconds == 0.0

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (1, 2, 4))
    @pytest.mark.parametrize("dispatch", ("steal", "wave"))
    def test_tiny_deadline_counts_only_first_position(
        self, backend, workers, dispatch
    ):
        components = sized_components()
        tasks = walksat_tasks(components)
        outcome = run_components(
            components,
            tasks,
            parallel_backend=backend,
            workers=workers,
            deadline_seconds=1e-9,
            placeholder=zero_flip_placeholder(components),
            dispatch=dispatch,
        )
        # Post-hoc rule: position 0 always counts (zero spend before it);
        # its cost alone exceeds the tiny deadline, so everything after is
        # skipped — on every backend, dispatch mode and worker count.
        assert outcome.dispatch_order == dispatch_order(components)[:1]
        assert outcome.skipped == [1, 2]
        for index, result in enumerate(outcome.results):
            if index == 0:
                assert result.flips > 0
            else:
                assert result.flips == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_component_walksat_deadline_is_deterministic(self, backend):
        components = sized_components()
        searcher = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=900, deadline_seconds=1e-9),
            RandomSource(0),
            parallel_backend=backend,
        )
        result = searcher.run(components, total_flips=900)
        # workers=1: exactly the largest component ran; the others carry
        # their deterministic initial (all-false-reset) placeholder state.
        assert result.skipped_components == [1, 2]
        assert result.component_results[0].flips > 0
        assert result.component_results[1].flips == 0
        assert result.component_results[2].flips == 0
        assert set(result.best_assignment) == {
            atom for component in components for atom in component.atom_ids
        }
        reference = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=900, deadline_seconds=1e-9),
            RandomSource(0),
            parallel_backend="serial",
        ).run(components, total_flips=900)
        assert result.best_assignment == reference.best_assignment
        assert result.best_cost == reference.best_cost

    def test_deadline_run_identical_across_backends_and_workers(self):
        """The strengthened contract: the deadline outcome is decided by
        post-hoc bookkeeping over the simulated costs, so it is identical
        across backends *and* worker counts (the old wave scheduler
        completed more components at higher worker counts)."""
        components = sized_components()
        reference = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=900, deadline_seconds=1e-9),
            RandomSource(0),
            workers=1,
            parallel_backend="serial",
        ).run(components, total_flips=900)
        assert reference.skipped_components == [1, 2]
        for backend in BACKENDS:
            for workers in (1, 2, 4):
                result = ComponentAwareWalkSAT(
                    WalkSATOptions(max_flips=900, deadline_seconds=1e-9),
                    RandomSource(0),
                    workers=workers,
                    parallel_backend=backend,
                ).run(components, total_flips=900)
                label = f"{backend}/workers={workers}"
                assert result.best_assignment == reference.best_assignment, label
                assert result.best_cost == reference.best_cost, label
                assert result.skipped_components == reference.skipped_components

    def test_no_deadline_dispatches_everything_in_one_wave(self):
        components = sized_components()
        outcome = run_components(
            components,
            walksat_tasks(components),
            parallel_backend="serial",
            workers=1,
        )
        assert outcome.skipped == []
        assert all(result.flips > 0 for result in outcome.results)

    def test_missing_placeholder_is_an_error(self):
        components = sized_components()
        with pytest.raises(RuntimeError):
            run_components(
                components,
                walksat_tasks(components),
                parallel_backend="serial",
                workers=1,
                deadline_seconds=0.0,
            )


class TestTaskErrors:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bad_task_kind_surfaces(self, backend):
        components = sized_components()
        tasks = walksat_tasks(components)
        tasks[1] = ComponentTask(index=1, kind="bogus", seed=0)
        with pytest.raises((ValueError, RuntimeError)):
            run_components(
                components, tasks, parallel_backend=backend, workers=2
            )


class TestGaussSeidelRefine:
    def _oversized(self):
        return conflicted_chain(16), GreedyPartitioner(24)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_refine_backend_independent(self, backend):
        mrf, partitioner = self._oversized()
        partitions = partitioner.partition(mrf).atom_partitions
        assert len(partitions) > 1
        reference = gauss_seidel_refine(
            mrf,
            partitions,
            options=WalkSATOptions(max_flips=800),
            rng=RandomSource(3),
            rounds=2,
        )
        result = gauss_seidel_refine(
            mrf,
            partitions,
            options=WalkSATOptions(max_flips=800),
            rng=RandomSource(3),
            rounds=2,
            parallel_backend=backend,
            workers=2,
        )
        assert result.best_assignment == reference.best_assignment
        assert result.best_cost == reference.best_cost
        assert result.flips == reference.flips

    def test_refine_covers_all_atoms_and_counts_cut(self):
        mrf, partitioner = self._oversized()
        partitions = partitioner.partition(mrf).atom_partitions
        result = gauss_seidel_refine(
            mrf,
            partitions,
            options=WalkSATOptions(max_flips=800),
            rng=RandomSource(0),
            rounds=2,
        )
        assert set(result.best_assignment) == set(mrf.atom_ids)
        assert result.cut_clause_count >= 1
        assert result.flips > 0
        assert result.best_cost < math.inf
