"""Tests for component-aware WalkSAT, Gauss-Seidel search, SampleSAT and MC-SAT."""

import math

import pytest

from repro.datasets.example1 import example1_mrf, example1_optimal_cost
from repro.datasets.example2 import example2_mrf
from repro.grounding.clause_table import GroundClause, GroundClauseStore
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.gauss_seidel import GaussSeidelSearch
from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.samplesat import SampleSAT, SampleSATOptions
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.components import connected_components
from repro.mrf.cost import assignment_cost
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


class TestComponentAwareWalkSAT:
    def test_reaches_optimum_on_example1(self):
        mrf = example1_mrf(12)
        searcher = ComponentAwareWalkSAT(WalkSATOptions(max_flips=4000), RandomSource(0))
        result = searcher.run(mrf)
        assert result.component_count == 12
        assert result.best_cost == pytest.approx(example1_optimal_cost(12))
        recomputed = assignment_cost(mrf, result.best_assignment, hard_as_infinite=False)
        assert recomputed == pytest.approx(result.best_cost)

    def test_accepts_precomputed_components(self):
        mrf = example1_mrf(5)
        decomposition = connected_components(mrf)
        result = ComponentAwareWalkSAT(rng=RandomSource(1)).run(decomposition, total_flips=2000)
        assert result.component_count == 5

    def test_component_aware_beats_monolithic_with_equal_budget(self):
        """The Theorem 3.1 phenomenon: with the same flip budget, the
        component-aware search reaches a better (or equal) cost than the
        monolithic search, and on enough components strictly better."""
        mrf = example1_mrf(30)
        budget = 3000
        component_result = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=budget), RandomSource(0)
        ).run(mrf, total_flips=budget)
        monolithic = WalkSAT(WalkSATOptions(max_flips=budget), RandomSource(0)).run(mrf)
        assert component_result.best_cost <= monolithic.best_cost
        assert component_result.best_cost == pytest.approx(example1_optimal_cost(30))
        assert monolithic.best_cost > example1_optimal_cost(30)

    def test_parallel_workers_produce_valid_result(self):
        mrf = example1_mrf(16)
        result = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=2000), RandomSource(2), workers=4
        ).run(mrf)
        assert result.best_cost == pytest.approx(example1_optimal_cost(16))
        assert result.parallel_simulated_seconds <= result.simulated_seconds + 1e-9

    def test_trace_merges_components(self):
        result = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=1000), RandomSource(3)
        ).run(example1_mrf(4))
        assert result.trace.points
        assert result.trace.best_cost == pytest.approx(example1_optimal_cost(4))


class TestComponentTargetCost:
    """Regression: _make_task hardcoded target_cost=0.0, ignoring the
    caller's WalkSATOptions.target_cost."""

    def test_explicit_target_cost_is_honored(self):
        mrf = example1_mrf(4)
        # Any assignment of one component costs at most 3 (its total
        # |weight|), so a per-component target of 50 is met by the very
        # first state of every try: zero flips everywhere.
        searcher = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=500, target_cost=50.0), RandomSource(0)
        )
        result = searcher.run(mrf)
        assert all(r.reached_target for r in result.component_results)
        assert result.flips == 0

    def test_default_target_remains_component_optimum(self):
        mrf = example1_mrf(4)
        searcher = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=2000), RandomSource(0)
        )
        result = searcher.run(mrf)
        # Component cost can never reach 0 on example1 (optimum is 1), so
        # with the default target the budget is spent searching.
        assert result.flips > 0
        assert result.best_cost == pytest.approx(example1_optimal_cost(4))

    def test_initial_assignment_still_restricted_per_component(self):
        mrf = example1_mrf(4)
        optimal = {atom: True for atom in mrf.atom_ids}
        searcher = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=400, random_restarts=False), RandomSource(1)
        )
        result = searcher.run(mrf, initial_assignment=optimal)
        assert result.best_cost == pytest.approx(example1_optimal_cost(4))
        assert result.best_assignment == optimal


class TestGaussSeidelSearch:
    def test_example2_reaches_low_cost(self):
        mrf, side_one, side_two = example2_mrf(4)
        searcher = GaussSeidelSearch(
            WalkSATOptions(max_flips=4000), RandomSource(0), rounds=4
        )
        result = searcher.run(mrf, [side_one, side_two])
        # Optimum: each pair violates exactly one clause (the negative one).
        assert result.best_cost <= 8.5
        assert result.cut_clause_count == 1
        assert result.rounds == 4
        recomputed = assignment_cost(mrf, result.best_assignment, hard_as_infinite=False)
        assert recomputed == pytest.approx(result.best_cost)

    def test_partitions_must_cover_and_not_overlap(self):
        mrf, side_one, side_two = example2_mrf(2)
        searcher = GaussSeidelSearch(rng=RandomSource(0))
        with pytest.raises(ValueError):
            searcher.run(mrf, [side_one])
        with pytest.raises(ValueError):
            searcher.run(mrf, [side_one, side_one + side_two])

    def test_single_partition_equivalent_to_plain_search(self):
        mrf = example1_mrf(3)
        searcher = GaussSeidelSearch(WalkSATOptions(max_flips=2000), RandomSource(1), rounds=2)
        result = searcher.run(mrf, [list(mrf.atom_ids)])
        assert result.best_cost == pytest.approx(example1_optimal_cost(3))

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            GaussSeidelSearch(rounds=0)


class TestSampleSAT:
    def test_satisfies_simple_constraints(self):
        store = GroundClauseStore()
        store.add((1, 2), 1.0)
        store.add((-1, 3), 1.0)
        clauses = store.clauses()
        sample = SampleSAT(rng=RandomSource(0)).sample(clauses, [1, 2, 3])
        for clause in clauses:
            satisfied = any(
                sample[abs(l)] == (l > 0) for l in clause.literals
            )
            assert satisfied

    def test_option_validation(self):
        with pytest.raises(ValueError):
            SampleSATOptions(walksat_probability=2.0)
        with pytest.raises(ValueError):
            SampleSATOptions(temperature=0.0)

    def test_different_seeds_explore_different_states(self):
        store = GroundClauseStore()
        store.add((1, 2), 1.0)
        clauses = store.clauses()
        samples = {
            tuple(sorted(SampleSAT(rng=RandomSource(seed)).sample(clauses, [1, 2]).items()))
            for seed in range(12)
        }
        assert len(samples) > 1


class TestMCSat:
    def _biased_mrf(self):
        """Atom 1 is strongly preferred true, atom 2 strongly preferred false."""
        store = GroundClauseStore()
        store.add((1,), 3.0)
        store.add((-2,), 3.0)
        store.add((1, 2), 0.5)
        return MRF.from_store(store)

    def test_marginals_follow_weights(self):
        result = MCSat(MCSatOptions(samples=80, burn_in=10), RandomSource(0)).run(self._biased_mrf())
        assert result.probability(1) > 0.7
        assert result.probability(2) < 0.3
        assert result.samples == 80

    def test_hard_clauses_always_respected(self):
        store = GroundClauseStore()
        store.add((1,), math.inf)
        store.add((-2,), 1.0)
        mrf = MRF.from_store(store)
        result = MCSat(MCSatOptions(samples=30, burn_in=5), RandomSource(1)).run(mrf)
        assert result.probability(1) == pytest.approx(1.0)

    def test_most_likely_thresholding(self):
        result = MCSat(MCSatOptions(samples=40, burn_in=5), RandomSource(2)).run(self._biased_mrf())
        world = result.most_likely()
        assert world[1] is True
        assert world[2] is False

    def test_option_validation(self):
        with pytest.raises(ValueError):
            MCSatOptions(samples=0)
        with pytest.raises(ValueError):
            MCSatOptions(burn_in=-1)
        with pytest.raises(ValueError):
            MCSatOptions(kernel_backend="simd")


class TestMCSatClauseSelection:
    """Selection edge cases around hard and negative weights (the spec's
    ``_select_clauses``): hard clauses of either sign are constrained
    without consuming randomness, and a hard negative clause is constrained
    even when the current world satisfies it (regression: it used to be
    silently dropped from M, and the unsatisfied case burned an rng draw on
    a keep probability that is always 1)."""

    @staticmethod
    def _select(clauses, flags, seed=0):
        rng = RandomSource(seed)
        before = rng.raw().getstate()
        selected = MCSat(rng=rng)._select_clauses(clauses, flags)
        return selected, before == rng.raw().getstate()

    def test_hard_negative_satisfied_is_constrained_to_stay_unsatisfied(self):
        clause = GroundClause(1, (1, -2), -math.inf)
        selected, untouched = self._select([clause], [True])
        assert [c.literals for c in selected] == [(-1,), (2,)]
        assert all(c.weight == 1.0 for c in selected)
        assert untouched  # hard clauses never consume randomness

    def test_hard_negative_unsatisfied_is_constrained_without_a_draw(self):
        clause = GroundClause(1, (1, -2), -math.inf)
        selected, untouched = self._select([clause], [False])
        assert [c.literals for c in selected] == [(-1,), (2,)]
        assert untouched

    def test_hard_positive_is_selected_without_a_draw(self):
        clause = GroundClause(1, (1, 2), math.inf)
        for satisfied in (True, False):
            selected, untouched = self._select([clause], [satisfied])
            assert [c.literals for c in selected] == [(1, 2)]
            assert untouched

    def test_soft_negative_unsatisfied_draws_exactly_once(self):
        # Large |weight|: keep probability 1 - exp(-3) ~ 0.95, so seed 0's
        # first draw selects it; the unit negations follow in literal order.
        clause = GroundClause(1, (1, -2), -3.0)
        selected, untouched = self._select([clause], [False])
        assert not untouched
        assert [c.literals for c in selected] == [(-1,), (2,)]
        reference = RandomSource(0)
        reference.random()  # exactly one draw consumed
        rng = RandomSource(0)
        MCSat(rng=rng)._select_clauses([clause], [False])
        assert rng.raw().getstate() == reference.raw().getstate()

    def test_soft_negative_satisfied_is_skipped_without_a_draw(self):
        clause = GroundClause(1, (1, -2), -3.0)
        selected, untouched = self._select([clause], [True])
        assert selected == []
        assert untouched

    def test_hard_negative_clause_respected_end_to_end(self):
        """With (1 v 2) hard-negative, every sampled world must keep both
        atoms false no matter how hard the soft clauses push them true."""
        clauses = [
            GroundClause(1, (1, 2), -math.inf),
            GroundClause(2, (1,), 2.0),
            GroundClause(3, (2,), 1.5),
        ]
        mrf = MRF.from_clauses(clauses)
        result = MCSat(MCSatOptions(samples=40, burn_in=5), RandomSource(0)).run(mrf)
        assert result.probability(1) == pytest.approx(0.0)
        assert result.probability(2) == pytest.approx(0.0)
