"""Tests for repro.utils.timer and repro.utils.memory."""

import pytest

from repro.utils.memory import MemoryModel, MemoryReport, clause_table_bytes, deep_sizeof
from repro.utils.timer import Stopwatch, Timer


class TestStopwatch:
    def test_accumulates_across_cycles(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        first = watch.total
        with watch.measure():
            pass
        assert watch.total >= first

    def test_double_start_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running


class TestTimer:
    def test_phases_are_independent(self):
        timer = Timer()
        with timer.measure("grounding"):
            pass
        with timer.measure("search"):
            pass
        breakdown = timer.breakdown()
        assert set(breakdown) == {"grounding", "search"}
        assert timer.total() == pytest.approx(sum(breakdown.values()))

    def test_unknown_phase_is_zero(self):
        assert Timer().seconds("missing") == 0.0


class TestDeepSizeof:
    def test_nested_structures_bigger_than_flat(self):
        flat = deep_sizeof([1, 2, 3])
        nested = deep_sizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat > 0

    def test_handles_cycles(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_counts_object_attributes(self):
        class Holder:
            def __init__(self):
                self.payload = list(range(100))

        assert deep_sizeof(Holder()) > deep_sizeof(object())


class TestMemoryModel:
    def test_peak_tracks_maximum(self):
        model = MemoryModel()
        model.charge("grounding", 1000)
        model.charge("grounding", 500)
        model.release("grounding")
        model.charge("search", 200)
        assert model.peak_bytes == 1500
        assert model.current_bytes == 200

    def test_charge_atoms_and_clauses(self):
        model = MemoryModel(bytes_per_atom=10, bytes_per_literal=2, bytes_per_clause=5)
        model.charge_atoms(3)
        model.charge_clauses(2, 6)
        assert model.current_bytes == 3 * 10 + 2 * 5 + 6 * 2

    def test_snapshot_and_report(self):
        model = MemoryModel()
        model.charge("a", 1024 * 1024)
        report = model.snapshot()
        assert isinstance(report, MemoryReport)
        assert report.megabytes() == pytest.approx(1.0)
        assert report["a"] == 1024 * 1024
        assert report["missing"] == 0

    def test_report_merge(self):
        first = MemoryReport({"a": 10})
        second = MemoryReport({"a": 5, "b": 7})
        merged = first.merge(second)
        assert merged["a"] == 15
        assert merged["b"] == 7

    def test_reset(self):
        model = MemoryModel()
        model.charge("x", 100)
        model.reset()
        assert model.peak_bytes == 0
        assert model.current_bytes == 0


class TestClauseTableBytes:
    def test_matches_model_constants(self):
        model = MemoryModel(bytes_per_clause=10, bytes_per_literal=1)
        assert clause_table_bytes([2, 3], model) == 10 + 2 + 10 + 3

    def test_empty(self):
        assert clause_table_bytes([]) == 0
