"""Tests for the clause -> conjunctive-query compiler (Algorithm 2)."""

import pytest

from repro.grounding.bottom_up import predicate_table_schema
from repro.grounding.compiler import ClauseCompilationError, GroundingCompiler
from repro.logic.clauses import WeightedClause
from repro.logic.literals import Literal
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Variable

CAT = Predicate("cat", ("paper", "category"))
REFERS = Predicate("refers", ("paper", "paper"), closed_world=True)
SAME = Predicate("same", ("paper", "paper"))

P, P1, P2, C, C1, C2 = (Variable(n) for n in ("p", "p1", "p2", "c", "c1", "c2"))


def compile_clause(clause):
    return GroundingCompiler().compile(clause)


class TestCompilation:
    def test_f3_shape(self):
        clause = WeightedClause(
            (
                Literal(CAT, (P1, C), positive=False),
                Literal(REFERS, (P1, P2), positive=False),
                Literal(CAT, (P2, C), positive=True),
            ),
            2.0,
            "F3",
        )
        compilation = compile_clause(clause)
        query = compilation.query
        assert [relation.table_name for relation in query.relations] == [
            "pred_cat",
            "pred_refers",
            "pred_cat",
        ]
        # Shared variables become join conditions: p1 (t0-t1), p2 (t1-t2), c (t0-t2).
        joins = {(condition.left, condition.right) for condition in query.join_conditions}
        assert ("t0.arg0", "t1.arg0") in joins
        assert ("t1.arg1", "t2.arg0") in joins
        assert ("t0.arg1", "t2.arg1") in joins
        # Pruning filters: negated literals need truth IS DISTINCT FROM FALSE,
        # the positive head needs truth IS DISTINCT FROM TRUE.
        filters = {(f.column, f.value) for f in query.constant_filters if f.operator == "is_distinct_from"}
        assert ("t0.truth", False) in filters
        assert ("t1.truth", False) in filters
        assert ("t2.truth", True) in filters
        # Outputs carry aid and truth for every literal.
        assert len(query.projection) == 6
        assert compilation.sql is not None and "SELECT" in compilation.sql

    def test_constant_argument_becomes_filter(self):
        clause = WeightedClause((Literal(CAT, (P, Constant("Networking"))),), -1.0, "F5")
        query = compile_clause(clause).query
        constants = {(f.column, f.operator, f.value) for f in query.constant_filters}
        assert ("t0.arg1", "=", "Networking") in constants

    def test_equality_constraint_becomes_inequality_filter(self):
        clause = WeightedClause(
            (
                Literal(CAT, (P, C1), positive=False),
                Literal(CAT, (P, C2), positive=False),
            ),
            5.0,
            "F1",
            ((C1, C2, True),),
        )
        query = compile_clause(clause).query
        comparisons = {(c.left, c.operator, c.right) for c in query.column_comparisons}
        assert ("t0.arg1", "!=", "t1.arg1") in comparisons

    def test_negative_equality_becomes_equality_filter(self):
        clause = WeightedClause(
            (Literal(CAT, (P, C1), positive=False), Literal(CAT, (P, C2), positive=False)),
            1.0,
            equalities=((C1, C2, False),),
        )
        query = compile_clause(clause).query
        comparisons = {(c.left, c.operator, c.right) for c in query.column_comparisons}
        assert ("t0.arg1", "=", "t1.arg1") in comparisons

    def test_constant_equality_trivially_satisfied(self):
        clause = WeightedClause(
            (Literal(CAT, (P, C1)),),
            1.0,
            equalities=((Constant("A"), Constant("A"), True),),
        )
        compilation = compile_clause(clause)
        assert compilation.trivially_satisfied
        assert compilation.query is None

    def test_constant_inequality_drops_out(self):
        clause = WeightedClause(
            (Literal(CAT, (P, C1)),),
            1.0,
            equalities=((Constant("A"), Constant("B"), True),),
        )
        compilation = compile_clause(clause)
        assert not compilation.trivially_satisfied
        assert compilation.query is not None
        assert compilation.query.column_comparisons == []

    def test_equality_with_constant_side(self):
        clause = WeightedClause(
            (Literal(CAT, (P, C1)),),
            1.0,
            equalities=((C1, Constant("DB"), True),),
        )
        query = compile_clause(clause).query
        constants = {(f.column, f.operator, f.value) for f in query.constant_filters}
        assert ("t0.arg1", "!=", "DB") in constants

    def test_unbound_equality_variable_rejected(self):
        clause = WeightedClause(
            (Literal(CAT, (P, C1)),),
            1.0,
            equalities=((C1, C2, True),),
        )
        with pytest.raises(ClauseCompilationError):
            compile_clause(clause)

    def test_repeated_variable_within_literal(self):
        clause = WeightedClause((Literal(SAME, (P, P)),), 1.0)
        query = compile_clause(clause).query
        comparisons = {(c.left, c.operator, c.right) for c in query.column_comparisons}
        assert ("t0.arg0", "=", "t0.arg1") in comparisons

    def test_equality_only_clause_has_no_query(self):
        clause = WeightedClause((), 1.0, equalities=((Constant("A"), Constant("B"), True),))
        compilation = compile_clause(clause)
        assert compilation.query is None
        assert compilation.trivially_satisfied

    def test_compile_all(self):
        clauses = [
            WeightedClause((Literal(CAT, (P, C)),), 1.0),
            WeightedClause((Literal(REFERS, (P1, P2), positive=False),), 2.0),
        ]
        compilations = GroundingCompiler().compile_all(clauses)
        assert len(compilations) == 2


class TestPredicateTableSchema:
    def test_schema_shape(self):
        schema = predicate_table_schema(CAT)
        assert schema.column_names == ["aid", "arg0", "arg1", "truth"]
