"""The adaptive kernel-threshold calibration (repro.utils.autotune).

The suite runs with ``REPRO_AUTOTUNE=off`` pinned by the repo-root
conftest, so these tests flip the environment explicitly per case and
restore it via monkeypatch.  The probe's *output* is machine-dependent by
design; what the tests pin down is the resolution order (env override >
off-mode default > cached probe), the clamping contract, and the
power-of-two rounding — the properties CI determinism rests on.
"""

import pytest

from repro.utils import autotune


@pytest.fixture(autouse=True)
def clean_caches():
    saved_cache = dict(autotune._CACHE)
    saved_measured = dict(autotune._MEASURED)
    autotune._CACHE.clear()
    autotune._MEASURED.clear()
    yield
    autotune._CACHE.clear()
    autotune._CACHE.update(saved_cache)
    autotune._MEASURED.clear()
    autotune._MEASURED.update(saved_measured)


class TestEnvOverride:
    def test_env_pin_wins_over_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "on")
        monkeypatch.setenv("REPRO_MY_THRESHOLD", "96")
        assert autotune.threshold("MY_THRESHOLD", 128) == 96

    def test_env_pin_applies_even_when_autotune_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "off")
        monkeypatch.setenv("REPRO_MY_THRESHOLD", "32")
        assert autotune.threshold("MY_THRESHOLD", 128) == 32

    def test_env_pin_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_MY_THRESHOLD", "0")
        with pytest.raises(ValueError):
            autotune.threshold("MY_THRESHOLD", 128)

    def test_env_pin_must_be_an_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_MY_THRESHOLD", "fast")
        with pytest.raises(ValueError):
            autotune.threshold("MY_THRESHOLD", 128)


class TestOffMode:
    @pytest.mark.parametrize("value", ("off", "0", "no", "false", "OFF", "False"))
    def test_disabled_values_keep_the_default(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_AUTOTUNE", value)
        assert not autotune.autotune_enabled()
        assert autotune.threshold("MY_THRESHOLD", 128) == 128

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)
        assert autotune.autotune_enabled()


class TestProbeResolution:
    def test_probed_threshold_is_cached_per_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "on")
        first = autotune.threshold("MY_THRESHOLD", 128)
        assert autotune._CACHE["MY_THRESHOLD"] == first
        # Poison the shared measurement: a second call must not re-probe.
        autotune._MEASURED["crossover"] = 1e9
        assert autotune.threshold("MY_THRESHOLD", 128) == first

    def test_probe_is_shared_across_thresholds(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "on")
        autotune.threshold("FIRST", 128)
        measured = dict(autotune._MEASURED)
        autotune.threshold("SECOND", 256)
        assert autotune._MEASURED == measured

    def test_result_is_clamped_power_of_two(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "on")
        for default in (128, 256):
            resolved = autotune.threshold(f"T{default}", default)
            assert default // 4 <= resolved <= default * 4
            assert resolved & (resolved - 1) == 0  # power of two

    def test_extreme_crossovers_hit_the_clamp(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "on")
        autotune._MEASURED["crossover"] = 1e9  # pathologically slow numpy
        assert autotune.threshold("SLOW", 128) == 128 * 4
        autotune._MEASURED["crossover"] = 1e-9  # pathologically fast numpy
        assert autotune.threshold("FAST", 128) == 128 // 4

    def test_inconclusive_probe_keeps_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "on")
        autotune._MEASURED["crossover"] = -1.0  # the "no numpy" sentinel
        assert autotune.threshold("MY_THRESHOLD", 128) == 128


class TestRounding:
    def test_round_power_of_two(self):
        assert autotune._round_power_of_two(0.5) == 1
        assert autotune._round_power_of_two(1.0) == 1
        assert autotune._round_power_of_two(2.0) == 2
        assert autotune._round_power_of_two(127.0) == 128
        assert autotune._round_power_of_two(128.0) == 128
        # Geometric midpoint: 181.02 ~= sqrt(128*256) rounds up past it.
        assert autotune._round_power_of_two(180.0) == 128
        assert autotune._round_power_of_two(182.0) == 256


class TestCallSites:
    def test_thresholds_resolve_to_defaults_under_test_env(self):
        # The repo-root conftest pins REPRO_AUTOTUNE=off, so the suite
        # always sees the reference crossovers at the three call sites.
        from repro.inference.state import VECTOR_AUTO_MIN_CLAUSES
        from repro.inference.vector_kernel import GREEDY_MIN_ENTRIES
        from repro.rdbms.executor import COLUMNAR_AUTO_MIN_ROWS

        assert VECTOR_AUTO_MIN_CLAUSES == 256
        assert GREEDY_MIN_ENTRIES == 128
        assert COLUMNAR_AUTO_MIN_ROWS == 128
