"""Tests for WalkSAT, the RDBMS-backed variant, tracing and scheduling."""

import math

import pytest

from repro.datasets.example1 import example1_mrf
from repro.grounding.clause_table import GroundClauseStore
from repro.inference.rdbms_walksat import RDBMSWalkSAT
from repro.inference.scheduling import run_tasks, weighted_flip_allocation
from repro.inference.tracing import FlipRateMeter, TimeCostTrace, merge_traces
from repro.inference.walksat import WalkSAT, WalkSATOptions, expected_hitting_time
from repro.mrf.components import connected_components
from repro.mrf.cost import assignment_cost
from repro.mrf.graph import MRF
from repro.rdbms.database import Database
from repro.utils.clock import CostModel, SimulatedClock
from repro.utils.rng import RandomSource


def satisfiable_mrf():
    """A small satisfiable weighted SAT instance (optimal cost 0)."""
    store = GroundClauseStore()
    store.add((1, 2), 1.0)
    store.add((-1, 3), 1.0)
    store.add((-2, -3), 1.0)
    store.add((2, 3), 1.0)
    return MRF.from_store(store)


class TestWalkSATOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            WalkSATOptions(noise=1.5)
        with pytest.raises(ValueError):
            WalkSATOptions(max_flips=0)


class TestWalkSAT:
    def test_finds_zero_cost_solution(self):
        result = WalkSAT(WalkSATOptions(max_flips=5000), RandomSource(0)).run(satisfiable_mrf())
        assert result.best_cost == pytest.approx(0.0)
        assert result.flips > 0
        # The returned assignment really has that cost.
        recomputed = assignment_cost(satisfiable_mrf(), result.best_assignment)
        assert recomputed == pytest.approx(0.0)

    def test_deterministic_given_seed(self):
        options = WalkSATOptions(max_flips=200)
        first = WalkSAT(options, RandomSource(7)).run(example1_mrf(5))
        second = WalkSAT(options, RandomSource(7)).run(example1_mrf(5))
        assert first.best_cost == second.best_cost
        assert first.best_assignment == second.best_assignment

    def test_target_cost_stops_early(self):
        options = WalkSATOptions(max_flips=100_000, target_cost=5.0)
        result = WalkSAT(options, RandomSource(1)).run(example1_mrf(5))
        assert result.reached_target
        assert result.best_cost <= 5.0
        assert result.flips < 100_000

    def test_deadline_on_simulated_clock(self):
        clock = SimulatedClock(CostModel(memory_flip=1.0))
        options = WalkSATOptions(max_flips=10_000, deadline_seconds=50.0)
        result = WalkSAT(options, RandomSource(2), clock).run(example1_mrf(20))
        assert result.flips <= 51

    def test_trace_is_monotone_nonincreasing(self):
        result = WalkSAT(WalkSATOptions(max_flips=2000), RandomSource(3)).run(example1_mrf(8))
        costs = [point.cost for point in result.trace.points]
        assert costs == sorted(costs, reverse=True)

    def test_multiple_tries_restart(self):
        options = WalkSATOptions(max_flips=50, max_tries=3)
        result = WalkSAT(options, RandomSource(4)).run(example1_mrf(4))
        assert result.tries >= 1
        assert result.flips <= 150

    def test_initial_assignment_used(self):
        mrf = example1_mrf(3)
        optimal = {atom: True for atom in mrf.atom_ids}
        options = WalkSATOptions(max_flips=10, target_cost=3.0, random_restarts=False)
        result = WalkSAT(options, RandomSource(5)).run(mrf, optimal)
        assert result.best_cost == pytest.approx(3.0)

    def test_expected_hitting_time_positive(self):
        mean = expected_hitting_time(example1_mrf(2), target_cost=2.0, runs=5, max_flips=500, seed=1)
        assert 0 <= mean <= 500


class _FixedRandom(RandomSource):
    """``random()`` always returns a fixed value; other draws stay seeded."""

    def __init__(self, value, seed=0):
        super().__init__(seed)
        self._value = value

    def random(self):
        return self._value


class _NoPickRandom(_FixedRandom):
    """Fails the test if the random (non-greedy) branch is ever taken."""

    def pick(self, items):
        raise AssertionError("random flip taken despite noise=0.0")


def greedy_test_state():
    """All-false state where the greedy choice is unambiguous.

    Clause (1, 2) is violated.  Flipping atom 1 repairs it but breaks the
    weight-5 clause (-1,), so greedy must flip atom 2 (delta -1 vs +4).
    """
    store = GroundClauseStore()
    store.add((1, 2), 1.0)
    store.add((-1,), 5.0)
    from repro.inference.state import SearchState

    state = SearchState(MRF.from_store(store))
    violated = state.violated_clause_indices()
    assert violated == [0]
    return state


class TestNoiseBoundary:
    """Regression: ``rng.random() <= noise`` made noise=0.0 take a random
    flip whenever the RNG returned exactly 0.0."""

    def test_zero_noise_is_purely_greedy(self):
        state = greedy_test_state()
        searcher = WalkSAT(WalkSATOptions(noise=0.0), _NoPickRandom(0.0))
        position = searcher._choose_atom(state, 0)
        assert state.atom_id_at(position) == 2

    def test_full_noise_is_purely_random(self):
        state = greedy_test_state()

        class PickFirst(_FixedRandom):
            def pick(self, items):
                return items[0]

        # random() returns just under 1.0; noise=1.0 must take the random
        # branch, which here picks atom 1 (the greedy choice is atom 2).
        searcher = WalkSAT(WalkSATOptions(noise=1.0), PickFirst(1.0 - 2**-53))
        position = searcher._choose_atom(state, 0)
        assert state.atom_id_at(position) == 1


class _RawStub:
    """Stands in for rng._random inside the kernel stepper."""

    def __init__(self, value):
        self.value = value

    def getrandbits(self, _bits):
        return 0  # always selects index 0 of the sampled sequence

    def random(self):
        return self.value


class _StubSource:
    def __init__(self, raw):
        self._raw = raw

    def raw(self):
        return self._raw


class TestKernelStepperNoiseBoundary:
    """The same noise-boundary regression, at the kernel's hot entry point."""

    def test_zero_noise_stepper_is_greedy(self):
        state = greedy_test_state()
        state.make_walksat_stepper(_StubSource(_RawStub(0.0)), noise=0.0)()
        assert state.value_of(2) is True  # greedy flip
        assert state.value_of(1) is False

    def test_full_noise_stepper_is_random(self):
        state = greedy_test_state()
        # random() just below 1.0 with noise=1.0 takes the random branch,
        # whose getrandbits stub picks the clause's first atom (atom 1).
        state.make_walksat_stepper(_StubSource(_RawStub(1.0 - 2**-53)), noise=1.0)()
        assert state.value_of(1) is True
        assert state.value_of(2) is False

    def test_stepper_raises_on_satisfied_state(self):
        state = greedy_test_state()
        step = state.make_walksat_stepper(_StubSource(_RawStub(0.0)), noise=0.0)
        step()  # repairs the only violated clause
        assert not state.has_violations()
        with pytest.raises(ValueError):
            step()


class TestInitialTargetCost:
    """Regression: a try whose *initial* state already meets target_cost
    must report reached_target with a zero-flip hitting time."""

    def test_initial_state_meeting_target(self):
        mrf = example1_mrf(3)
        optimal = {atom: True for atom in mrf.atom_ids}  # cost 3 (the optimum)
        options = WalkSATOptions(
            max_flips=1000, target_cost=3.0, random_restarts=False
        )
        result = WalkSAT(options, RandomSource(0)).run(mrf, optimal)
        assert result.reached_target
        assert result.hitting_time == 0
        assert result.flips == 0
        assert result.best_cost == pytest.approx(3.0)

    def test_expected_hitting_time_zero_when_target_trivial(self):
        # The cost can never exceed the total |weight| (9 here), so every
        # random initial state is already at the target: the mean must be
        # exactly 0 flips, not max_flips.
        mean = expected_hitting_time(
            example1_mrf(3), target_cost=9.0, runs=4, max_flips=200, seed=3
        )
        assert mean == pytest.approx(0.0)


class TestDeadlineAcrossRestarts:
    """Regressions for deadline/target handling in run_on_state: the
    deadline must be honored mid-try and must stop the restart loop, and
    the result can never surface the pre-randomized placeholder with
    best_cost == inf."""

    def test_deadline_expired_at_entry_returns_finite_best(self):
        clock = SimulatedClock(CostModel(memory_flip=1.0))
        clock.advance(100.0)  # already past the deadline before the run
        options = WalkSATOptions(
            max_flips=1_000, max_tries=5, deadline_seconds=50.0
        )
        mrf = example1_mrf(5)
        result = WalkSAT(options, RandomSource(0), clock).run(mrf)
        assert result.flips == 0
        assert result.tries == 1  # the deadline also stops the restarts
        assert math.isfinite(result.best_cost)
        # The best assignment is the first randomized state, not the
        # pre-randomized placeholder: its recomputed cost matches.
        recomputed = assignment_cost(mrf, result.best_assignment, hard_as_infinite=False)
        assert recomputed == pytest.approx(result.best_cost)

    def test_deadline_mid_try_stops_flips_and_restarts(self):
        clock = SimulatedClock(CostModel(memory_flip=1.0))
        options = WalkSATOptions(
            max_flips=30, max_tries=4, deadline_seconds=50.0
        )
        result = WalkSAT(options, RandomSource(2), clock).run(example1_mrf(20))
        # 30 flips in try one, then the deadline lands mid-try-two.
        assert result.flips <= 51
        assert result.tries <= 2
        assert math.isfinite(result.best_cost)

    def test_deadline_mid_try_same_result_as_single_try(self):
        """Once the deadline passes, extra allowed tries must not change
        the outcome."""
        mrf = example1_mrf(10)

        def run(max_tries):
            clock = SimulatedClock(CostModel(memory_flip=1.0))
            options = WalkSATOptions(
                max_flips=100, max_tries=max_tries, deadline_seconds=40.0
            )
            return WalkSAT(options, RandomSource(3), clock).run(mrf)

        single = run(1)
        many = run(6)
        assert single.best_cost == many.best_cost
        assert single.best_assignment == many.best_assignment
        assert single.flips == many.flips

    def test_best_cost_finite_even_on_hard_only_mrf(self):
        store = GroundClauseStore()
        store.add((1, 2), math.inf)
        store.add((-1, -2), math.inf)
        mrf = MRF.from_store(store)
        options = WalkSATOptions(max_flips=10, max_tries=2)
        result = WalkSAT(options, RandomSource(0)).run(mrf)
        assert math.isfinite(result.best_cost)
        assert set(result.best_assignment) == set(mrf.atom_ids)


class TestRDBMSWalkSAT:
    def test_reaches_same_quality_but_pays_io(self):
        mrf = satisfiable_mrf()
        database = Database()
        searcher = RDBMSWalkSAT(
            database, WalkSATOptions(max_flips=300, trace_label="tuffy-mm"), RandomSource(0)
        )
        result = searcher.run(mrf)
        assert result.best_cost == pytest.approx(0.0)
        assert database.clock.now() > 0.0
        assert database.io_statistics().page_writes > 0

    def test_simulated_flip_rate_orders_of_magnitude_slower(self):
        """Reproduces the Table 3 gap: in-memory search performs vastly more
        flips per simulated second than the RDBMS-backed search."""
        mrf = example1_mrf(30)
        memory_clock = SimulatedClock()
        memory_result = WalkSAT(WalkSATOptions(max_flips=2000), RandomSource(0), memory_clock).run(mrf)
        memory_rate = memory_result.flips / max(memory_clock.now(), 1e-12)

        database = Database()
        rdbms_result = RDBMSWalkSAT(
            database, WalkSATOptions(max_flips=50), RandomSource(0)
        ).run(mrf)
        rdbms_rate = rdbms_result.flips / max(database.clock.now(), 1e-12)
        assert memory_rate / rdbms_rate > 1000

    def test_deadline_respected(self):
        database = Database()
        options = WalkSATOptions(max_flips=10_000, deadline_seconds=0.5)
        result = RDBMSWalkSAT(database, options, RandomSource(1)).run(example1_mrf(10))
        assert database.clock.now() >= 0.5
        assert result.flips < 10_000

    def test_deadline_stops_restart_loop(self):
        """Regression: a deadline hit mid-try must end the run; with more
        tries allowed the result must be identical to a single-try run."""

        def run(max_tries):
            options = WalkSATOptions(
                max_flips=10_000, max_tries=max_tries, deadline_seconds=0.5
            )
            return RDBMSWalkSAT(Database(), options, RandomSource(1)).run(
                example1_mrf(10)
            )

        single = run(1)
        many = run(3)
        assert single.best_cost == many.best_cost
        assert single.best_assignment == many.best_assignment
        assert single.flips == many.flips


class TestTracing:
    def test_record_keeps_only_improvements(self):
        trace = TimeCostTrace("t")
        trace.record(0.0, 10.0)
        trace.record(1.0, 12.0)
        trace.record(2.0, 5.0)
        assert [point.cost for point in trace.points] == [10.0, 5.0]
        assert trace.best_cost == 5.0

    def test_cost_at_accounts_for_grounding_offset(self):
        trace = TimeCostTrace("t", grounding_seconds=10.0)
        trace.record(0.0, 8.0)
        trace.record(5.0, 3.0)
        assert math.isinf(trace.cost_at(9.0))
        assert trace.cost_at(10.0) == 8.0
        assert trace.cost_at(15.0) == 3.0

    def test_shifted(self):
        trace = TimeCostTrace("t")
        trace.record(1.0, 4.0)
        shifted = trace.shifted(2.0)
        assert shifted.points[0].time == pytest.approx(3.0)

    def test_merge_traces_sums_component_bests(self):
        first = TimeCostTrace("a")
        first.record(0.0, 5.0)
        first.record(2.0, 1.0)
        second = TimeCostTrace("b")
        second.record(1.0, 4.0)
        merged = merge_traces([first, second])
        assert merged.points[-1].cost == pytest.approx(5.0)
        # Before the second component reports anything the sum is undefined.
        assert all(point.time >= 1.0 for point in merged.points)

    def test_flip_rate_meter(self):
        meter = FlipRateMeter()
        meter.record(100, 2.0)
        meter.record(300, 2.0)
        assert meter.flips_per_second == pytest.approx(100.0)
        assert FlipRateMeter().flips_per_second == 0.0


def _component(atoms: int, clauses: int) -> MRF:
    """An MRF with the given atom and clause counts (for allocation tests)."""
    from repro.grounding.clause_table import GroundClause

    clause_list = [
        GroundClause(index + 1, (1,), 1.0) for index in range(clauses)
    ]
    return MRF.from_clauses(clause_list, extra_atoms=range(1, atoms + 1))


class TestScheduling:
    def test_weighted_allocation_proportional(self):
        components = connected_components(example1_mrf(4)).components
        allocation = weighted_flip_allocation(components, 1000)
        assert len(allocation) == 4
        assert sum(allocation) == 1000
        assert all(share >= 1 for share in allocation)

    def test_weighted_allocation_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            weighted_flip_allocation([], 0)

    def test_allocation_conserves_budget_exactly(self):
        """Regression: per-component round() could over- or under-spend the
        budget by up to one flip per component.  Three equal thirds of 100
        rounded to 33 each (99 flips); largest remainder spends exactly 100."""
        components = [_component(1, 1), _component(1, 1), _component(1, 1)]
        allocation = weighted_flip_allocation(components, 100)
        assert sum(allocation) == 100
        # Rounding-up overspend case: 5 components at 1/2 + 9/2 atoms.
        components = [_component(3, 1) for _ in range(5)]
        allocation = weighted_flip_allocation(components, 7)
        assert sum(allocation) == 7

    def test_allocation_property_over_random_mixes(self):
        """Property-style: for random component mixes the shares always sum
        to exactly total_flips, are non-negative, and every non-trivial
        component gets >= 1 flip whenever the budget permits."""
        rng = RandomSource(0)
        for _trial in range(200):
            count = rng.randint(1, 12)
            components = [
                _component(rng.randint(0, 50), rng.randint(0, 3))
                for _ in range(count)
            ]
            total = rng.randint(1, 5000)
            shares = weighted_flip_allocation(components, total)
            assert len(shares) == count
            assert sum(shares) == (
                total if any(c.atom_count for c in components) else 0
            )
            assert all(share >= 0 for share in shares)
            nontrivial = [
                index
                for index, component in enumerate(components)
                if component.atom_count > 0 and component.clause_count > 0
            ]
            if total >= len(nontrivial):
                assert all(shares[index] >= 1 for index in nontrivial)

    def test_allocation_is_deterministic_and_proportional(self):
        components = [_component(10, 1), _component(30, 1), _component(60, 1)]
        shares = weighted_flip_allocation(components, 1000)
        assert shares == [100, 300, 600]
        assert weighted_flip_allocation(components, 1000) == shares

    def test_run_tasks_sequential_and_parallel(self):
        def make_task(duration):
            def task():
                return duration, duration

            return task

        outcome = run_tasks([make_task(d) for d in (3.0, 1.0, 2.0)], workers=1)
        assert outcome.results == [3.0, 1.0, 2.0]
        assert outcome.sequential_simulated_seconds == pytest.approx(6.0)
        parallel = run_tasks([make_task(d) for d in (3.0, 1.0, 2.0)], workers=2)
        assert parallel.parallel_simulated_seconds == pytest.approx(3.0)
        assert parallel.simulated_speedup == pytest.approx(2.0)

    def test_run_tasks_invalid_workers(self):
        with pytest.raises(ValueError):
            run_tasks([], workers=0)
