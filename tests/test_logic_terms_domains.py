"""Tests for repro.logic.terms and repro.logic.domains."""

import pytest

from repro.logic.domains import Domain, DomainRegistry
from repro.logic.terms import Constant, Variable, is_ground, substitute, term_from_token


class TestTerms:
    def test_constant_and_variable_flags(self):
        assert Constant("P1").is_variable is False
        assert Variable("p").is_variable is True

    def test_terms_are_hashable_and_comparable(self):
        assert Constant("A") == Constant("A")
        assert Variable("x") == Variable("x")
        assert Constant("A") != Variable("A")
        assert len({Constant("A"), Constant("A"), Variable("x")}) == 2

    def test_term_from_token_conventions(self):
        assert term_from_token("P1") == Constant("P1")
        assert term_from_token("'quoted value'") == Constant("quoted value")
        assert term_from_token('"DB"') == Constant("DB")
        assert term_from_token("42") == Constant("42")
        assert term_from_token("paper") == Variable("paper")

    def test_term_from_token_empty_raises(self):
        with pytest.raises(ValueError):
            term_from_token("  ")

    def test_substitute(self):
        binding = {Variable("x"): Constant("A")}
        assert substitute(Variable("x"), binding) == Constant("A")
        assert substitute(Variable("y"), binding) == Variable("y")
        assert substitute(Constant("B"), binding) == Constant("B")

    def test_is_ground(self):
        assert is_ground(Constant("A"))
        assert not is_ground(Variable("x"))


class TestDomain:
    def test_add_is_idempotent_and_dense(self):
        domain = Domain("paper")
        first = domain.add(Constant("P1"))
        second = domain.add(Constant("P2"))
        again = domain.add(Constant("P1"))
        assert (first, second, again) == (0, 1, 0)
        assert len(domain) == 2

    def test_roundtrip_ids(self):
        domain = Domain("t")
        domain.add_value("A")
        domain.add_value("B")
        assert domain.constant_of(domain.id_of(Constant("B"))) == Constant("B")

    def test_contains_and_iteration(self):
        domain = Domain("t")
        domain.add_value("A")
        assert Constant("A") in domain
        assert Constant("Z") not in domain
        assert list(domain) == [Constant("A")]

    def test_unknown_constant_raises(self):
        with pytest.raises(KeyError):
            Domain("t").id_of(Constant("missing"))


class TestDomainRegistry:
    def test_domains_created_on_demand(self):
        registry = DomainRegistry()
        registry.add_constants("paper", ["P1", "P2"])
        registry.add_constant("author", Constant("Joe"))
        assert "paper" in registry
        assert len(registry["paper"]) == 2
        assert registry.total_constants() == 3
        assert registry.summary() == {"paper": 2, "author": 1}

    def test_type_names(self):
        registry = DomainRegistry()
        registry.domain("a")
        registry.domain("b")
        assert registry.type_names() == ["a", "b"]
        assert len(registry) == 2
