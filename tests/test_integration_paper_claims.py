"""Integration tests checking the *shape* of the paper's headline claims.

These tests are deliberately coarse: they do not check absolute numbers (the
substrate is an embedded Python engine, not PostgreSQL on 2011 hardware) but
they do check the direction and rough magnitude of every effect the paper
builds its argument on:

* bottom-up grounding beats top-down grounding, and the gap collapses when
  the optimizer is restricted to nested-loop joins (Table 2 / Table 6);
* the in-memory search performs orders of magnitude more flips per
  (simulated) second than the RDBMS-backed search (Table 3 / Figure 4);
* Tuffy's peak RAM is far below Alchemy's on the same program (Table 4);
* component-aware search reaches better costs than component-blind search
  with the same budget, and the empirical hitting-time gap on Example 1
  grows with the number of components (Theorem 3.1 / Table 5 / Figure 8);
* batch loading needs fewer clause-table scans than per-component loading
  (Table 7).
"""

import pytest

from repro.baselines.alchemy import AlchemyEngine
from repro.core import InferenceConfig, TuffyEngine
from repro.datasets import DatasetScale, example1_mrf, load_dataset
from repro.datasets.example1 import example1_optimal_cost
from repro.grounding.bottom_up import BottomUpGrounder
from repro.grounding.top_down import TopDownGrounder
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.rdbms_walksat import RDBMSWalkSAT
from repro.inference.walksat import WalkSAT, WalkSATOptions, expected_hitting_time
from repro.mrf.components import connected_components
from repro.rdbms.database import Database
from repro.rdbms.optimizer import OptimizerOptions
from repro.utils.clock import SimulatedClock
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def rc_dataset():
    return load_dataset("RC", DatasetScale(seed=0))


class TestGroundingClaims:
    def test_bottom_up_cheaper_than_top_down_in_work_done(self, rc_dataset):
        """Top-down grounding enumerates more intermediate bindings than the
        relational plans push through their joins — the source of the Table 2
        gap.  Bottom-up intermediate tuples are measured from the join
        operators (hash build/probe rows, nested-loop comparisons); they live
        inside the RDBMS, not the inference process, which is the Table 4
        memory asymmetry."""
        program = rc_dataset.program
        clauses = program.clauses()
        top_down = TopDownGrounder().ground(clauses, program.build_atom_registry())
        bottom_up = BottomUpGrounder().ground(clauses, program.build_atom_registry())
        assert bottom_up.ground_clause_count == top_down.ground_clause_count
        assert top_down.intermediate_tuples > 2 * top_down.ground_clause_count
        assert bottom_up.intermediate_tuples > 0
        assert bottom_up.intermediate_tuples < top_down.intermediate_tuples

    def test_nested_loop_lesion_slows_grounding(self, rc_dataset):
        """Table 6: forcing nested-loop joins makes grounding dramatically
        slower (measured in wall time on the same machine and data)."""
        program = rc_dataset.program
        clauses = program.clauses()
        full = BottomUpGrounder(optimizer_options=OptimizerOptions.full_optimizer())
        crippled = BottomUpGrounder(optimizer_options=OptimizerOptions.nested_loop_only())
        full_result = full.ground(clauses, program.build_atom_registry())
        crippled_result = crippled.ground(clauses, program.build_atom_registry())
        assert full_result.ground_clause_count == crippled_result.ground_clause_count
        assert crippled_result.seconds > full_result.seconds


class TestHybridArchitectureClaims:
    def test_flip_rate_gap_between_memory_and_rdbms_search(self):
        """Table 3: the in-memory flipping rate is orders of magnitude higher."""
        mrf = example1_mrf(40)
        memory_clock = SimulatedClock()
        memory = WalkSAT(WalkSATOptions(max_flips=5000), RandomSource(0), memory_clock).run(mrf)
        memory_rate = memory.flips / max(memory_clock.now(), 1e-12)

        database = Database()
        rdbms = RDBMSWalkSAT(database, WalkSATOptions(max_flips=40), RandomSource(0)).run(mrf)
        rdbms_rate = rdbms.flips / max(database.clock.now(), 1e-12)
        assert memory_rate > 1e4
        assert rdbms_rate < 1e3
        assert memory_rate / rdbms_rate > 1e3

    def test_tuffy_memory_far_below_alchemy(self, rc_dataset):
        """Table 4: Tuffy's RAM footprint is a small fraction of Alchemy's."""
        config = InferenceConfig(seed=0, max_flips=2_000)
        tuffy = TuffyEngine(rc_dataset.program, config).run_map()
        alchemy = AlchemyEngine(rc_dataset.program, config).run_map()
        assert tuffy.peak_memory_bytes < 0.5 * alchemy.peak_memory_bytes


class TestPartitioningClaims:
    def test_component_aware_search_dominates_on_fragmented_mrf(self):
        """Table 5 / Figure 5: with an equal flip budget the component-aware
        search reaches the optimum while the monolithic search does not."""
        mrf = example1_mrf(40)
        budget = 4_000
        aware = ComponentAwareWalkSAT(WalkSATOptions(max_flips=budget), RandomSource(0)).run(
            mrf, total_flips=budget
        )
        blind = WalkSAT(WalkSATOptions(max_flips=budget), RandomSource(0)).run(mrf)
        optimum = example1_optimal_cost(40)
        assert aware.best_cost == pytest.approx(optimum)
        assert blind.best_cost > optimum

    def test_hitting_time_gap_grows_with_component_count(self):
        """Theorem 3.1: the expected hitting time of component-blind WalkSAT
        grows much faster than linearly in the number of components, while
        component-aware search stays linear (its per-component hitting time
        is constant)."""
        small, large = 4, 12
        budget = 50_000
        blind_small = expected_hitting_time(
            example1_mrf(small), example1_optimal_cost(small), runs=6, max_flips=budget, seed=1
        )
        blind_large = expected_hitting_time(
            example1_mrf(large), example1_optimal_cost(large), runs=6, max_flips=budget, seed=1
        )
        # Growth factor far above the 3x component growth.
        assert blind_large > 4 * blind_small
        # Component-aware search: the per-component expected hitting time is
        # tiny (the paper bounds it by 4 flips), so the total stays small.
        per_component = expected_hitting_time(
            example1_mrf(1), 1.0, runs=20, max_flips=1_000, seed=2
        )
        assert per_component <= 10.0

    def test_rc_partitioning_improves_cost_at_equal_budget(self, rc_dataset):
        """Table 5, RC row: Tuffy (partitioning) beats Tuffy-p (no
        partitioning) at the same flip budget."""
        budget = 4_000
        partitioned = TuffyEngine(
            rc_dataset.program,
            InferenceConfig(seed=0, max_flips=budget, use_partitioning=True),
        ).run_map()
        monolithic = TuffyEngine(
            rc_dataset.program,
            InferenceConfig(seed=0, max_flips=budget, use_partitioning=False),
        ).run_map()
        assert partitioned.cost <= monolithic.cost
        assert partitioned.component_count > 1

    def test_batch_loading_reduces_scans(self, rc_dataset):
        """Table 7: batch loading scans the clause table far fewer times."""
        from repro.partitioning.loader import BatchLoader

        engine = TuffyEngine(rc_dataset.program, InferenceConfig(seed=0, max_flips=10))
        engine.ground()
        components = connected_components(engine.build_mrf()).components
        database_batched = Database(page_size=32, buffer_pool_pages=1)
        engine.grounding_result.clauses.store_in_database(database_batched)
        batched = BatchLoader(database_batched, memory_budget=2000.0).load(components, batched=True)
        database_single = Database(page_size=32, buffer_pool_pages=1)
        engine.grounding_result.clauses.store_in_database(database_single)
        one_by_one = BatchLoader(database_single, memory_budget=2000.0).load(
            components, batched=False
        )
        assert batched.scans < one_by_one.scans
        assert batched.simulated_seconds < one_by_one.simulated_seconds
