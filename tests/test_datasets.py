"""Tests for the synthetic dataset generators and the paper's examples."""

import pytest

from repro.core import InferenceConfig, TuffyEngine
from repro.datasets import (
    DATASET_NAMES,
    DatasetScale,
    example1_mrf,
    example1_store,
    example2_mrf,
    load_dataset,
    random_program,
)
from repro.datasets.example1 import example1_atom_ids, example1_optimal_cost
from repro.mrf.components import connected_components
from repro.mrf.cost import assignment_cost


class TestRegistry:
    def test_all_four_datasets_registered(self):
        assert set(DATASET_NAMES) == {"LP", "IE", "RC", "ER"}

    def test_lookup_is_case_insensitive(self):
        assert load_dataset("rc").name == "RC"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")


class TestGenerators:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_generators_are_deterministic(self, name):
        first = load_dataset(name, DatasetScale(seed=3)).statistics().as_dict()
        second = load_dataset(name, DatasetScale(seed=3)).statistics().as_dict()
        assert first == second

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_statistics_rows_are_complete(self, name):
        row = load_dataset(name, DatasetScale(seed=0)).statistics_row()
        for key in ("#relations", "#rules", "#entities", "#evidence tuples", "#query atoms"):
            assert row[key] > 0

    def test_scale_factor_grows_dataset(self):
        small = load_dataset("RC", DatasetScale(factor=0.5, seed=0)).statistics()
        large = load_dataset("RC", DatasetScale(factor=1.5, seed=0)).statistics()
        assert large.evidence_tuples > small.evidence_tuples
        assert large.query_atoms > small.query_atoms

    def test_component_structure_matches_paper_shape(self):
        """LP and ER are single components; IE and RC fragment heavily
        (Table 1 of the paper: 1 / 5341 / 489 / 1 components)."""
        structure = {}
        for name in DATASET_NAMES:
            dataset = load_dataset(name, DatasetScale(seed=0))
            engine = TuffyEngine(dataset.program, InferenceConfig(seed=0, max_flips=10))
            engine.ground()
            structure[name] = connected_components(engine.build_mrf()).component_count
        assert structure["LP"] == 1
        assert structure["ER"] == 1
        assert structure["IE"] >= 20
        assert structure["RC"] >= 10
        assert structure["IE"] > structure["RC"]

    def test_rc_uses_figure1_rules(self):
        dataset = load_dataset("RC", DatasetScale(seed=0))
        weights = sorted(rule.weight for rule in dataset.program.rules)
        assert weights == [-1.0, 1.0, 2.0, 5.0]

    def test_ie_components_are_small(self):
        dataset = load_dataset("IE", DatasetScale(seed=0))
        engine = TuffyEngine(dataset.program, InferenceConfig(seed=0, max_flips=10))
        engine.ground()
        decomposition = connected_components(engine.build_mrf())
        sizes = [component.atom_count for component in decomposition.components]
        assert max(sizes) <= 20

    def test_er_is_dense(self):
        dataset = load_dataset("ER", DatasetScale(seed=0))
        engine = TuffyEngine(dataset.program, InferenceConfig(seed=0, max_flips=10))
        grounding = engine.ground()
        mrf = engine.build_mrf()
        assert grounding.ground_clause_count > 5 * mrf.atom_count


class TestExample1:
    def test_store_structure(self):
        store = example1_store(4)
        assert len(store) == 12
        assert example1_atom_ids(0) == (1, 2)
        assert example1_atom_ids(3) == (7, 8)

    def test_optimal_assignment_cost(self):
        mrf = example1_mrf(5)
        all_true = {atom: True for atom in mrf.atom_ids}
        all_false = {atom: False for atom in mrf.atom_ids}
        assert assignment_cost(mrf, all_true, hard_as_infinite=False) == pytest.approx(
            example1_optimal_cost(5)
        )
        assert assignment_cost(mrf, all_false, hard_as_infinite=False) == pytest.approx(10.0)

    def test_component_count(self):
        assert connected_components(example1_mrf(9)).component_count == 9

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            example1_store(0)


class TestExample2:
    def test_single_component_with_one_cut_edge(self):
        mrf, side_one, side_two = example2_mrf(3)
        assert connected_components(mrf).component_count == 1
        assert set(side_one) & set(side_two) == set()
        assert sorted(side_one + side_two) == sorted(mrf.atom_ids)
        cut = mrf.cut_clauses(side_one)
        assert len(cut) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            example2_mrf(0)


class TestRandomProgram:
    def test_deterministic_given_seed(self):
        first = random_program(seed=5)
        second = random_program(seed=5)
        assert [str(c) for c in first.clauses()] == [str(c) for c in second.clauses()]
        assert len(first.evidence) == len(second.evidence)

    def test_respects_size_parameters(self):
        program = random_program(seed=1, n_predicates=4, domain_size=3, n_clauses=6)
        assert len(program.predicates) == 4
        assert len(program.clauses()) == 6

    def test_groundable_end_to_end(self):
        program = random_program(seed=2)
        engine = TuffyEngine(program, InferenceConfig(seed=0, max_flips=500))
        result = engine.run_map()
        assert result.cost >= 0.0
