"""Tests for repro.utils.rng."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RandomSource, round_robin, spawn_rng


class TestRandomSource:
    def test_same_seed_same_stream(self):
        first = RandomSource(42)
        second = RandomSource(42)
        assert [first.random() for _ in range(10)] == [second.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        first = [RandomSource(1).random() for _ in range(5)]
        second = [RandomSource(2).random() for _ in range(5)]
        assert first != second

    def test_pick_returns_member(self):
        rng = RandomSource(0)
        items = ["a", "b", "c"]
        assert rng.pick(items) in items

    def test_pick_empty_raises(self):
        with pytest.raises(ValueError):
            RandomSource(0).pick([])

    def test_coin_probability_extremes(self):
        rng = RandomSource(0)
        assert rng.coin(1.0) is True
        assert rng.coin(0.0) is False

    def test_randint_bounds(self):
        rng = RandomSource(3)
        values = [rng.randint(2, 5) for _ in range(100)]
        assert min(values) >= 2
        assert max(values) <= 5

    def test_sample_distinct(self):
        rng = RandomSource(7)
        sample = rng.sample(range(10), 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4

    def test_shuffle_preserves_elements(self):
        rng = RandomSource(5)
        items = list(range(20))
        shuffled = rng.shuffle(list(items))
        assert sorted(shuffled) == items

    def test_spawn_independent_and_reproducible(self):
        parent = RandomSource(9)
        child_a = parent.spawn(1)
        child_b = parent.spawn(2)
        assert child_a.seed != child_b.seed
        again = RandomSource(9).spawn(1)
        assert [child_a.random() for _ in range(5)] == [again.random() for _ in range(5)]

    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_in_unit_interval(self, seed):
        value = RandomSource(seed).random()
        assert 0.0 <= value < 1.0


class TestSpawnRng:
    def test_spawn_rng_with_salt_differs(self):
        base = spawn_rng(1, salt=0)
        salted = spawn_rng(1, salt=3)
        assert [base.random() for _ in range(3)] != [salted.random() for _ in range(3)]

    def test_spawn_rng_none_seed(self):
        rng = spawn_rng(None)
        assert 0.0 <= rng.random() < 1.0


class TestRoundRobin:
    def test_interleaves_groups(self):
        groups = [[1, 2, 3], ["a", "b"], [True]]
        assert list(round_robin(groups)) == [1, "a", True, 2, "b", 3]

    def test_empty_groups(self):
        assert list(round_robin([])) == []
        assert list(round_robin([[], []])) == []
