"""GroundClauseStore.add_batch: semantics identical to repeated add calls.

``add_batch`` has three implementations under one contract — the plain
Python loop (list inputs), and the vectorized numpy path (array inputs) —
and the batched grounding consumer depends on all of them matching ``add``
exactly: duplicate merging, sequential weight summing, hard-clause
handling, tautology/empty accounting and clause ordering.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.grounding.clause_table import GroundClauseStore

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None


def flatten(rows):
    flat = [literal for row in rows for literal in row]
    lengths = [len(row) for row in rows]
    return flat, lengths


def store_state(store):
    return {
        "clauses": [
            (clause.clause_id, clause.literals, clause.weight, clause.source)
            for clause in store
        ],
        "evidence_violation_cost": store.evidence_violation_cost,
        "tautologies": store.tautologies,
        "satisfied_by_evidence": store.satisfied_by_evidence,
        "atom_ids": store.atom_ids(),
        "total_literals": store.total_literals(),
        "hard_clauses": store.hard_clause_count(),
    }


def input_variants(rows):
    """The same batch as list input and (when available) numpy input."""
    flat, lengths = flatten(rows)
    variants = [("list", flat, lengths)]
    if np is not None:
        variants.append(
            ("array", np.asarray(flat, dtype=np.int64), np.asarray(lengths, dtype=np.int64))
        )
    return variants


def assert_batch_matches_sequential(batches, merge_duplicates=True):
    """Apply batches via add() and via each add_batch input form; compare."""
    reference = GroundClauseStore(merge_duplicates=merge_duplicates)
    expected_stored = []
    for rows, weight, source in batches:
        stored = 0
        for row in rows:
            if reference.add(row, weight, source) is not None:
                stored += 1
        expected_stored.append(stored)
    expected = store_state(reference)

    variant_names = {name for rows, _, _ in batches for name, _, _ in input_variants(rows)}
    for variant in sorted(variant_names):
        store = GroundClauseStore(merge_duplicates=merge_duplicates)
        returned = []
        for rows, weight, source in batches:
            for name, flat, lengths in input_variants(rows):
                if name != variant:
                    continue
                returned.append(store.add_batch(flat, lengths, weight, source))
        assert store_state(store) == expected, f"variant {variant}"
        assert returned == expected_stored, f"variant {variant}"


class TestAddBatchSemantics:
    def test_merges_duplicates_and_sums_weights(self):
        rows = [(1, -2), (3,), (1, -2), (-2, 1), (3,)]
        assert_batch_matches_sequential([(rows, 1.5, "r")])

    def test_merge_order_and_ids_match_first_occurrence(self):
        rows = [(5, 6), (7,), (5, 6), (8,), (7,), (5, 6)]
        assert_batch_matches_sequential([(rows, 0.25, None)])

    def test_hard_clauses_never_merge(self):
        rows = [(1, 2), (1, 2), (3,)]
        assert_batch_matches_sequential([(rows, math.inf, "hard")])

    def test_soft_after_hard_same_literals(self):
        store_batches = [
            ([(1, 2)], math.inf, "hard"),
            ([(1, 2), (1, 2)], 2.0, "soft"),
        ]
        assert_batch_matches_sequential(store_batches)

    def test_negative_and_infinite_weights(self):
        assert_batch_matches_sequential(
            [
                ([(1,), (1,), (-1, 2)], -0.75, "neg"),
                ([(2, 3)], -math.inf, "neg-hard"),
            ]
        )

    def test_empty_rows_charge_evidence_cost(self):
        rows = [(), (1,), (), (2,)]
        assert_batch_matches_sequential([(rows, 0.5, None)])
        assert_batch_matches_sequential([(rows, -0.5, None)])
        assert_batch_matches_sequential([(rows, math.inf, None)])

    def test_tautologies_and_duplicate_literals(self):
        rows = [(1, -1), (2, 2), (2, 2, -2), (3, 3), (4, -5)]
        assert_batch_matches_sequential([(rows, 1.0, "t")])

    def test_merge_duplicates_disabled(self):
        rows = [(1, 2), (1, 2), (2, 1), (1, -1), ()]
        assert_batch_matches_sequential([(rows, 1.0, None)], merge_duplicates=False)

    def test_cross_batch_and_cross_source_merging(self):
        assert_batch_matches_sequential(
            [
                ([(1, 2), (3,)], 1.0, "a"),
                ([(2, 1), (3,), (4,)], 2.0, "b"),
                ([(3,), (1, 2)], 0.5, "c"),
            ]
        )

    def test_weight_summing_is_sequential_addition(self):
        # 0.1 cannot be represented exactly; repeated addition and
        # count*weight differ in the last ulp, and add_batch must take the
        # sequential route the row engine takes.
        rows = [(9,)] * 7
        weight = 0.1
        sequential = GroundClauseStore()
        for row in rows:
            sequential.add(row, weight)
        for name, flat, lengths in input_variants(rows):
            store = GroundClauseStore()
            store.add_batch(flat, lengths, weight)
            assert store[0].weight == sequential[0].weight, name

    def test_length_mismatch_raises_before_mutation(self):
        store = GroundClauseStore()
        with pytest.raises(ValueError):
            store.add_batch([1, 2, 3], [2, 2], 1.0)
        assert len(store) == 0 and store.evidence_violation_cost == 0.0
        if np is not None:
            with pytest.raises(ValueError):
                store.add_batch(
                    np.asarray([1, 2, 3], dtype=np.int64),
                    np.asarray([2, 2], dtype=np.int64),
                    1.0,
                )
            assert len(store) == 0 and store.evidence_violation_cost == 0.0

    def test_empty_batch(self):
        store = GroundClauseStore()
        assert store.add_batch([], [], 1.0) == 0
        if np is not None:
            assert (
                store.add_batch(
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 1.0
                )
                == 0
            )
        assert len(store) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_randomized_batches_match_sequential(self, seed):
        rng = random.Random(seed)
        batches = []
        for _ in range(rng.randint(1, 4)):
            rows = []
            for _ in range(rng.randint(0, 25)):
                length = rng.randint(0, 4)
                rows.append(
                    tuple(
                        rng.choice([1, -1]) * rng.randint(1, 5) for _ in range(length)
                    )
                )
            weight = rng.choice([0.5, 1.0, -1.25, math.inf, 2.0])
            batches.append((rows, weight, rng.choice([None, "s1", "s2"])))
        assert_batch_matches_sequential(
            batches, merge_duplicates=rng.random() < 0.8
        )


class TestRecordSatisfied:
    def test_counted_batches(self):
        store = GroundClauseStore()
        store.record_satisfied_by_evidence()
        store.record_satisfied_by_evidence(41)
        assert store.satisfied_by_evidence == 42
