"""Regression gate: the repository's own ``src`` tree stays analyzer-clean.

This is the same check ``scripts/check.sh`` runs, expressed as a test so the
tier-1 suite fails the moment a change introduces a new determinism,
fork-safety or seam-conformance violation (or lets the checked-in baseline /
inline suppressions rot).
"""

import json
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.framework import run_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "analysis_baseline.json"


class TestLiveTree:
    def test_src_is_clean_modulo_baseline(self, capsys) -> None:
        exit_code = main([str(SRC), "--baseline", str(BASELINE)])
        output = capsys.readouterr().out
        assert exit_code == 0, f"analyzer found new violations:\n{output}"

    def test_baseline_has_no_stale_entries(self) -> None:
        report = run_analysis([SRC])
        match = Baseline.load(BASELINE).apply(report.findings)
        stale = [entry.key() for entry in match.stale]
        assert stale == [], f"stale baseline entries (delete them): {stale}"

    def test_baseline_entries_are_all_justified(self) -> None:
        document = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert document["version"] == 1
        for entry in document["findings"]:
            assert entry["justification"].strip(), entry

    def test_every_live_suppression_is_used(self) -> None:
        # bad-suppression (which covers unused/unknown/unjustified
        # suppressions) is never baselined, so a clean run proves hygiene.
        report = run_analysis([SRC])
        hygiene = [f for f in report.findings if f.rule == "bad-suppression"]
        assert hygiene == [], [f.render() for f in hygiene]

    def test_all_thirteen_rules_are_registered(self) -> None:
        report = run_analysis([SRC], select=None)
        assert report.rule_ids == sorted(report.rule_ids)
        assert set(report.rule_ids) == {
            "det-set-iter", "det-float-sum", "det-raw-random", "det-wallclock",
            "det-id-hash-order", "fork-module-state", "fork-pool-lifecycle",
            "fork-shm-publish", "fork-task-closure", "obs-purity",
            "req-state-isolation", "seam-kernel-api", "seam-config-threading",
        }
