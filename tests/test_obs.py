"""Unit tests for the observability subsystem (:mod:`repro.obs`).

Tracer semantics (ambient nesting, post-hoc stitching, request
attribution), metrics registry aggregates, and the Chrome trace-event /
metrics exporters.  The dynamic non-perturbation guarantee — tracing on
vs off is bit-identical — lives in ``tests/test_obs_parity.py``.
"""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    NullTracer,
    RecordingTracer,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.tracer import _NULL_SPAN


class TestNullTracer:
    def test_everything_is_a_shared_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.now() == 0.0
        assert tracer.span("x") is _NULL_SPAN
        assert tracer.record_span("x", 0.0, 1.0) is _NULL_SPAN
        assert tracer.instant("x") is _NULL_SPAN
        with tracer.span("request", kind="map") as span:
            assert span.annotate(request_id=3) is span
        assert tracer.spans() == []
        assert tracer.request_spans(3) == []
        assert tracer.current_span() is None


class TestRecordingTracer:
    def test_with_blocks_nest_via_the_ambient_stack(self):
        tracer = RecordingTracer()
        with tracer.span("request") as root:
            with tracer.span("setup") as setup:
                with tracer.span("ground") as ground:
                    pass
        assert root.parent_id is None
        assert setup.parent_id == root.span_id
        assert ground.parent_id == setup.span_id
        assert [s.name for s in tracer.spans()] == ["request", "setup", "ground"]
        for span in tracer.spans():
            assert span.wall_end is not None
            assert span.wall_end >= span.wall_start

    def test_record_span_defaults_to_ambient_parent(self):
        tracer = RecordingTracer()
        with tracer.span("request") as root:
            stitched = tracer.record_span("component[0]", 1.0, 2.0, worker=1)
        assert stitched.parent_id == root.span_id
        assert stitched.wall_duration == 1.0
        assert stitched.attributes["worker"] == 1

    def test_record_span_accepts_span_and_id_parents(self):
        tracer = RecordingTracer()
        with tracer.span("request") as root:
            pass
        by_span = tracer.record_span("a", 0.0, 1.0, parent=root)
        by_id = tracer.record_span("b", 0.0, 1.0, parent=root.span_id)
        assert by_span.parent_id == root.span_id
        assert by_id.parent_id == root.span_id

    def test_request_attribution_resolves_through_ancestors(self):
        tracer = RecordingTracer()
        with tracer.span("request") as root:
            root.annotate(request_id=7)
            with tracer.span("setup"):
                leaf = tracer.record_span("lease-checkout", 0.0, 1.0)
        assert tracer.request_id_of(leaf) == 7
        assert [s.name for s in tracer.request_spans(7)] == [
            "request",
            "setup",
            "lease-checkout",
        ]
        assert tracer.request_ids() == [7]

    def test_ambient_stack_is_per_thread(self):
        tracer = RecordingTracer()
        recorded = []

        def other_thread():
            recorded.append(tracer.record_span("orphan", 0.0, 1.0))

        with tracer.span("request"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert recorded[0].parent_id is None

    def test_simulated_clock_is_read_not_advanced(self):
        readings = iter([1.5, 2.5])
        tracer = RecordingTracer(simulated_now=lambda: next(readings))
        with tracer.span("request") as span:
            pass
        assert span.simulated_start == 1.5
        assert span.simulated_end == 2.5

    def test_exception_annotates_and_closes_the_span(self):
        tracer = RecordingTracer()
        with pytest.raises(ValueError):
            with tracer.span("request"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "ValueError"
        assert span.wall_end is not None
        assert tracer.current_span() is None


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.increment("pool.shm_shipped")
        registry.increment("pool.shm_shipped", 2)
        registry.set_gauge("io.page_reads", 42)
        registry.observe("request.phase.search", 1.0)
        registry.observe("request.phase.search", 3.0)
        assert registry.counter("pool.shm_shipped") == 3.0
        assert registry.counter("never.touched") == 0.0
        assert registry.gauge("io.page_reads") == 42.0
        histogram = registry.histogram("request.phase.search")
        assert histogram == {
            "count": 2.0,
            "total": 4.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }

    def test_render_text_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.increment("b.counter")
        registry.increment("a.counter")
        registry.set_gauge("z.gauge", 1.0)
        registry.observe("m.hist", 2.0)
        lines = registry.render_text().splitlines()
        assert lines[0] == "counter a.counter 1"
        assert lines[1] == "counter b.counter 1"
        assert any(line.startswith("gauge z.gauge") for line in lines)
        assert any(line.startswith("histogram m.hist") for line in lines)

    def test_render_json_round_trips(self):
        registry = MetricsRegistry()
        registry.increment("a", 2.5)
        payload = json.loads(registry.render_json())
        assert payload["counters"]["a"] == 2.5


class TestChromeTraceExport:
    def _tracer(self):
        tracer = RecordingTracer()
        with tracer.span("request", kind="map") as root:
            root.annotate(request_id=1)
            with tracer.span("setup"):
                pass
            tracer.record_span("component[0]", tracer.now(), tracer.now())
        return tracer

    def test_events_validate_and_normalize(self):
        tracer = self._tracer()
        payload = chrome_trace_events(tracer)
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        assert len(events) == 3
        assert min(event["ts"] for event in events) == 0
        # Request lanes: every event of request 1 rides tid 1.
        assert {event["tid"] for event in events} == {1}
        names = {event["name"] for event in events}
        assert names == {"request", "setup", "component[0]"}

    def test_write_chrome_trace_is_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._tracer(), path)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad_event = {"traceEvents": [{"ph": "X"}]}
        assert validate_chrome_trace(bad_event) != []
        negative_dur = {
            "traceEvents": [
                {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 0, "tid": 0}
            ]
        }
        assert validate_chrome_trace(negative_dur) != []

    def test_write_metrics_json_and_text(self, tmp_path):
        registry = MetricsRegistry()
        registry.increment("pool.shm_shipped", 4)
        json_path = tmp_path / "metrics.json"
        text_path = tmp_path / "metrics.txt"
        write_metrics(registry, json_path)
        write_metrics(registry, text_path)
        assert json.loads(json_path.read_text())["counters"]["pool.shm_shipped"] == 4.0
        assert "counter pool.shm_shipped 4" in text_path.read_text()
