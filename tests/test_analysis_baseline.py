"""Tests for the analyzer's grandfathering baseline.

The baseline matches findings by location-independent identity
(rule, path, message) with per-entry counts, requires a justification on
every entry, and reports entries that stopped matching as stale.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.framework import Finding


def finding(rule: str = "det-set-iter", path: str = "repro/mod.py",
            line: int = 10, message: str = "iteration over a set") -> Finding:
    return Finding(rule=rule, path=path, line=line, column=4, message=message)


class TestRoundTrip:
    def test_from_findings_save_load(self, tmp_path: Path) -> None:
        findings = [finding(line=3), finding(line=9), finding(rule="det-float-sum")]
        baseline = Baseline.from_findings(findings, justification="reviewed")
        target = tmp_path / "analysis_baseline.json"
        baseline.save(target)

        loaded = Baseline.load(target)
        assert len(loaded.entries) == 2  # two identical findings collapse to count=2
        by_rule = {entry.rule: entry for entry in loaded.entries}
        assert by_rule["det-set-iter"].count == 2
        assert by_rule["det-float-sum"].count == 1
        assert all(entry.justification == "reviewed" for entry in loaded.entries)

    def test_saved_document_is_versioned_and_sorted(self, tmp_path: Path) -> None:
        baseline = Baseline.from_findings([finding()], justification="reviewed")
        target = tmp_path / "b.json"
        baseline.save(target)
        document = json.loads(target.read_text())
        assert document["version"] == 1
        assert isinstance(document["findings"], list)


class TestLoadValidation:
    def test_wrong_version_rejected(self, tmp_path: Path) -> None:
        target = tmp_path / "b.json"
        target.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(target)

    def test_missing_justification_rejected(self, tmp_path: Path) -> None:
        target = tmp_path / "b.json"
        target.write_text(json.dumps({
            "version": 1,
            "findings": [{"rule": "det-set-iter", "path": "m.py",
                          "message": "x", "count": 1}],
        }))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(target)


class TestApply:
    def test_grandfathered_findings_are_split_out(self) -> None:
        baseline = Baseline([
            BaselineEntry(rule="det-set-iter", path="repro/mod.py",
                          message="iteration over a set", count=1,
                          justification="reviewed"),
        ])
        match = baseline.apply([finding(), finding(rule="det-float-sum")])
        assert [f.rule for f in match.baselined] == ["det-set-iter"]
        assert [f.rule for f in match.new] == ["det-float-sum"]
        assert match.stale == []

    def test_count_budget_is_a_multiset(self) -> None:
        baseline = Baseline([
            BaselineEntry(rule="det-set-iter", path="repro/mod.py",
                          message="iteration over a set", count=1,
                          justification="reviewed"),
        ])
        match = baseline.apply([finding(line=3), finding(line=9)])
        assert len(match.baselined) == 1
        assert len(match.new) == 1  # second identical finding exceeds the budget

    def test_line_moves_do_not_invalidate_the_baseline(self) -> None:
        baseline = Baseline.from_findings([finding(line=10)], justification="ok")
        match = baseline.apply([finding(line=999)])
        assert match.new == [] and len(match.baselined) == 1

    def test_unmatched_entries_are_stale(self) -> None:
        baseline = Baseline([
            BaselineEntry(rule="det-set-iter", path="repro/gone.py",
                          message="iteration over a set", count=1,
                          justification="fixed since"),
        ])
        match = baseline.apply([])
        assert len(match.stale) == 1
        assert match.stale[0].path == "repro/gone.py"
