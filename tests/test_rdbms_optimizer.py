"""Tests for the conjunctive-query optimizer, statistics and SQL rendering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdbms.database import Database
from repro.rdbms.operators import HashJoin, SortMergeJoin
from repro.rdbms.optimizer import (
    ConjunctiveQuery,
    OptimizerOptions,
    QueryError,
)
from repro.rdbms.schema import TableSchema
from repro.rdbms.sql import render_select
from repro.rdbms.stats import (
    StatisticsCatalog,
    TableStatistics,
    estimate_filter_selectivity,
    estimate_join_cardinality,
)
from repro.rdbms.types import ColumnType


def build_database():
    db = Database()
    db.create_table(
        "wrote",
        TableSchema.of(
            ("aid", ColumnType.INTEGER),
            ("author", ColumnType.TEXT),
            ("paper", ColumnType.TEXT),
            ("truth", ColumnType.TRUTH),
        ),
    )
    db.create_table(
        "cat",
        TableSchema.of(
            ("aid", ColumnType.INTEGER),
            ("paper", ColumnType.TEXT),
            ("category", ColumnType.TEXT),
            ("truth", ColumnType.TRUTH),
        ),
    )
    db.bulk_load(
        "wrote",
        [(1, "joe", "p1", True), (2, "joe", "p2", True), (3, "ann", "p3", True)],
    )
    db.bulk_load(
        "cat",
        [
            (10, "p1", "db", None),
            (11, "p2", "db", None),
            (12, "p3", "ai", True),
            (13, "p1", "ai", None),
        ],
    )
    return db


def join_query(distinct=False):
    query = ConjunctiveQuery(distinct=distinct)
    query.add_relation("t0", "wrote")
    query.add_relation("t1", "cat")
    query.add_join("t0.paper", "t1.paper")
    query.add_output("t0.aid", "wrote_aid")
    query.add_output("t1.aid", "cat_aid")
    return query


class TestConjunctiveQueryValidation:
    def test_duplicate_alias_rejected(self):
        query = ConjunctiveQuery()
        query.add_relation("t0", "wrote")
        with pytest.raises(QueryError):
            query.add_relation("t0", "cat")

    def test_unknown_alias_in_join_rejected(self):
        query = ConjunctiveQuery()
        query.add_relation("t0", "wrote")
        query.add_join("t0.paper", "t9.paper")
        query.add_output("t0.aid")
        with pytest.raises(QueryError):
            query.validate()

    def test_empty_projection_rejected(self):
        query = ConjunctiveQuery()
        query.add_relation("t0", "wrote")
        with pytest.raises(QueryError):
            query.validate()

    def test_no_relations_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery().validate()


class TestOptimizerPlans:
    def test_join_results_identical_across_lesion_settings(self):
        db = build_database()
        query = join_query()
        expected = sorted(db.execute(query, OptimizerOptions.full_optimizer()).rows)
        for options in (
            OptimizerOptions.fixed_join_order(),
            OptimizerOptions.nested_loop_only(),
            OptimizerOptions(enable_hash_join=False),
        ):
            assert sorted(db.execute(query, options).rows) == expected
        assert expected  # non-empty join

    def test_full_optimizer_uses_hash_join(self):
        db = build_database()
        plan = db.plan(join_query(), OptimizerOptions.full_optimizer())
        assert "HashJoin" in plan.explain()

    def test_nested_loop_only_never_uses_hash_or_merge(self):
        db = build_database()
        plan = db.plan(join_query(), OptimizerOptions.nested_loop_only())
        text = plan.explain()
        assert "HashJoin" not in text and "SortMergeJoin" not in text

    def test_sort_merge_selected_when_hash_disabled(self):
        db = build_database()
        plan = db.plan(join_query(), OptimizerOptions(enable_hash_join=False))
        assert "SortMergeJoin" in plan.explain()

    def test_fixed_join_order_respects_declaration(self):
        db = build_database()
        plan = db.plan(join_query(), OptimizerOptions.fixed_join_order())
        assert plan.join_order == ["t0", "t1"]

    def test_greedy_order_starts_with_most_selective(self):
        db = build_database()
        query = join_query()
        query.add_constant_filter("t1.category", "=", "ai")
        plan = db.plan(query, OptimizerOptions.full_optimizer())
        assert plan.join_order[0] == "t1"

    def test_constant_filters_applied_with_and_without_pushdown(self):
        db = build_database()
        query = join_query()
        query.add_constant_filter("t1.category", "=", "db")
        with_pushdown = db.execute(query, OptimizerOptions(enable_predicate_pushdown=True))
        without_pushdown = db.execute(query, OptimizerOptions(enable_predicate_pushdown=False))
        assert sorted(with_pushdown.rows) == sorted(without_pushdown.rows)
        assert len(with_pushdown.rows) == 2

    def test_column_comparison_residual(self):
        db = build_database()
        query = ConjunctiveQuery()
        query.add_relation("t0", "cat")
        query.add_relation("t1", "cat")
        query.add_join("t0.paper", "t1.paper")
        query.add_column_comparison("t0.category", "!=", "t1.category")
        query.add_output("t0.aid")
        query.add_output("t1.aid")
        rows = db.execute(query).rows
        assert (10, 13) in rows and (13, 10) in rows
        assert all(left != right for left, right in rows)

    def test_distinct(self):
        db = build_database()
        query = ConjunctiveQuery(distinct=True)
        query.add_relation("t0", "cat")
        query.add_output("t0.category", "category")
        assert sorted(db.execute(query).rows) == [("ai",), ("db",)]

    def test_cross_product_when_no_join_condition(self):
        db = build_database()
        query = ConjunctiveQuery()
        query.add_relation("t0", "wrote")
        query.add_relation("t1", "cat")
        query.add_output("t0.aid")
        query.add_output("t1.aid")
        assert len(db.execute(query).rows) == 12

    def test_unknown_table_raises(self):
        db = build_database()
        query = ConjunctiveQuery()
        query.add_relation("t0", "missing")
        query.add_output("t0.aid")
        with pytest.raises(QueryError):
            db.plan(query)


class TestStatistics:
    def test_analyze_counts_distinct_and_nulls(self):
        db = build_database()
        statistics = db.analyze("cat")
        assert statistics.row_count == 4
        assert statistics.column("paper").distinct_values == 3
        assert statistics.column("truth").null_fraction == pytest.approx(0.75)

    def test_unknown_column_defaults(self):
        statistics = TableStatistics(row_count=10)
        assert statistics.column("anything").distinct_values == 10

    def test_filter_selectivity(self):
        db = build_database()
        statistics = db.analyze("cat")
        selectivity = estimate_filter_selectivity(statistics, ["category"])
        assert 0.0 < selectivity <= 0.5

    def test_join_cardinality(self):
        assert estimate_join_cardinality(100, 100, 10, 20) == pytest.approx(500.0)
        assert estimate_join_cardinality(1, 1, 1, 1) == 1.0

    def test_catalog_reanalyzes_on_growth(self):
        db = build_database()
        catalog = StatisticsCatalog()
        table = db.table("cat")
        first = catalog.get_or_analyze(table)
        table.bulk_load([(14, "p9", "db", None)])
        second = catalog.get_or_analyze(table)
        assert second.row_count == first.row_count + 1


class TestSqlRendering:
    def test_render_select_shape(self):
        query = join_query()
        query.add_constant_filter("t0.truth", "is_distinct_from", True)
        sql = render_select(query)
        assert sql.startswith("SELECT t0.aid AS wrote_aid")
        assert "FROM wrote t0, cat t1" in sql
        assert "t0.paper = t1.paper" in sql
        assert "IS DISTINCT FROM TRUE" in sql
        assert sql.endswith(";")

    def test_distinct_rendered(self):
        sql = render_select(join_query(distinct=True))
        assert "SELECT DISTINCT" in sql


class TestExecutor:
    def test_execute_into_table(self):
        db = build_database()
        db.create_table(
            "out", TableSchema.of(("a", ColumnType.INTEGER), ("b", ColumnType.INTEGER))
        )
        db.execute_into(join_query(), "out")
        assert len(db.table("out")) == 4
        db.execute_into(join_query(), "out", truncate=True)
        assert len(db.table("out")) == 4

    def test_query_result_helpers(self):
        db = build_database()
        result = db.execute(join_query())
        assert len(result) == 4
        assert set(result.column("wrote_aid")) == {1, 2, 3}
        assert result.as_dicts()[0].keys() == {"wrote_aid", "cat_aid"}


@st.composite
def random_two_table_instances(draw):
    small = st.integers(min_value=0, max_value=3)
    left = draw(st.lists(st.tuples(small, small), min_size=0, max_size=10))
    right = draw(st.lists(st.tuples(small, small), min_size=0, max_size=10))
    return left, right


class TestOptimizerEquivalenceProperty:
    """All planner settings must return the same multiset of rows."""

    @given(random_two_table_instances())
    @settings(max_examples=40, deadline=None)
    def test_plans_agree(self, instance):
        left_rows, right_rows = instance
        db = Database()
        schema = TableSchema.of(("k", ColumnType.INTEGER), ("v", ColumnType.INTEGER))
        db.create_table("left_t", schema)
        db.create_table("right_t", schema)
        db.bulk_load("left_t", left_rows)
        db.bulk_load("right_t", right_rows)
        query = ConjunctiveQuery()
        query.add_relation("a", "left_t")
        query.add_relation("b", "right_t")
        query.add_join("a.k", "b.k")
        query.add_output("a.v")
        query.add_output("b.v")
        reference = sorted(db.execute(query, OptimizerOptions.nested_loop_only()).rows)
        for options in (OptimizerOptions.full_optimizer(), OptimizerOptions(enable_hash_join=False)):
            assert sorted(db.execute(query, options).rows) == reference
