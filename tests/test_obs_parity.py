"""Non-perturbation and span-tree shape of the observability subsystem.

The tracing contract: a recording tracer observes, never acts.  Results
— assignments, costs, flips, marginals, the RNG stream position and the
simulated clock — are **bit-identical** with tracing on vs off, across
parallel backends, dispatch modes and worker counts (``obs-purity``
enforces the static half of this; these tests prove the dynamic half).

Shape tests pin the stitched span tree: every worker task span resolves
to its request's root span, worker-side phase spans hang under their
component span, and the post-hoc emission order is deterministic.
"""

import logging

import pytest

from repro.core.config import InferenceConfig
from repro.core.session import EngineSession
from repro.datasets import DatasetScale, load_dataset
from repro.datasets.example1 import example1_mrf
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.walksat import WalkSATOptions
from repro.mrf.components import connected_components
from repro.obs import MetricsRegistry, RecordingTracer
from repro.parallel import processes_available
from repro.parallel.pool import ComponentTask, WorkerPool
from repro.utils.rng import RandomSource

BACKENDS = [
    backend for backend in ("serial", "threads", "processes")
    if backend != "processes" or processes_available()
]
DISPATCH_MODES = ("steal", "wave")
WORKER_COUNTS = (1, 4)


def _dataset_components(name, factor):
    dataset = load_dataset(name, DatasetScale(factor=factor, seed=0))
    from repro.core.engine import TuffyEngine

    return TuffyEngine(dataset.program, InferenceConfig(seed=0)).detect_components().components


@pytest.fixture(scope="module")
def workloads():
    return {
        "example1": connected_components(example1_mrf(10)).components,
        "RC": _dataset_components("RC", 0.25),
    }


def _driver_fields(result):
    """Everything about a ComponentSearchResult except wall-clock time."""
    return (
        result.best_assignment,
        result.best_cost,
        result.flips,
        result.simulated_seconds,
        result.parallel_simulated_seconds,
        result.skipped_components,
        [(r.best_assignment, r.best_cost, r.flips) for r in result.component_results],
    )


def _run(components, backend, dispatch, workers, tracer=None):
    rng = RandomSource(0)
    result = ComponentAwareWalkSAT(
        WalkSATOptions(max_flips=1500),
        rng,
        workers=workers,
        parallel_backend=backend,
        dispatch=dispatch,
        tracer=tracer,
        metrics=MetricsRegistry() if tracer is not None else None,
    ).run(components, total_flips=1500)
    # The RNG stream position after the run is part of the contract: a
    # tracer that drew even one number would shift this value.
    return _driver_fields(result), rng.random()


class TestTraceParity:
    @pytest.mark.parametrize("workload", ("example1", "RC"))
    @pytest.mark.parametrize("dispatch", DISPATCH_MODES)
    def test_driver_results_identical_traced_or_not(
        self, workloads, workload, dispatch
    ):
        components = workloads[workload]
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                untraced, rng_after = _run(components, backend, dispatch, workers)
                traced, traced_rng_after = _run(
                    components, backend, dispatch, workers,
                    tracer=RecordingTracer(),
                )
                key = (workload, backend, dispatch, workers)
                assert traced == untraced, key
                assert traced_rng_after == rng_after, key

    def test_session_map_and_marginal_bit_identical(self):
        # Whole-session parity: MAP assignment, marginals, phase-relevant
        # simulated clock — all bit-identical with tracing off vs on.
        def run(tracing):
            dataset = load_dataset("RC", DatasetScale(factor=0.25, seed=0))
            config = InferenceConfig(
                seed=0,
                max_flips=1500,
                workers=2,
                mcsat_samples=8,
                mcsat_burn_in=2,
                tracing=tracing,
            )
            with EngineSession(dataset.program, config) as session:
                map_result = session.run_map()
                marginal_result = session.run_marginal()
                return (
                    map_result.assignment,
                    map_result.cost,
                    map_result.flips,
                    map_result.simulated_seconds,
                    marginal_result.marginals.probabilities,
                    marginal_result.cost,
                    session.database.clock.now(),
                )

        assert run("on") == run("off")


class TestSpanTreeShape:
    def _traced_session_run(self, backend, workers):
        dataset = load_dataset("RC", DatasetScale(factor=0.25, seed=0))
        config = InferenceConfig(
            seed=0,
            max_flips=1000,
            workers=workers,
            parallel_backend=backend,
            tracing="on",
        )
        with EngineSession(dataset.program, config) as session:
            session.run_map()
            tracer = session.tracer
        return tracer

    @pytest.mark.parametrize(
        "backend", [b for b in ("threads", "processes") if b in BACKENDS]
    )
    def test_task_spans_resolve_to_their_request_root(self, backend):
        tracer = self._traced_session_run(backend, workers=2)
        assert tracer.request_ids() == [1]
        spans = tracer.request_spans(1)
        names = [span.name for span in spans]
        for expected in ("request", "setup", "search", "dispatch", "merge", "ship"):
            assert expected in names, expected
        component_spans = [s for s in spans if s.name.startswith("component[")]
        assert component_spans
        roots = [s for s in spans if s.name == "request"]
        assert len(roots) == 1
        for span in component_spans:
            assert tracer.request_id_of(span) == 1
        if backend == "processes":
            # Worker-side phase spans hang under their component span.
            by_id = {span.span_id: span for span in spans}
            worker_spans = [s for s in spans if s.name == "kernel-search"]
            assert len(worker_spans) == len(component_spans)
            for span in worker_spans:
                parent = by_id[span.parent_id]
                assert parent.name.startswith("component[")
                assert "worker" in span.attributes

    def test_stitched_order_is_deterministic(self):
        first = self._traced_session_run("threads", workers=4)
        second = self._traced_session_run("threads", workers=4)
        names_first = [span.name for span in first.request_spans(1)]
        names_second = [span.name for span in second.request_spans(1)]
        assert names_first == names_second
        # Component spans are emitted post-hoc in dispatch order, not
        # completion order — the sequence cannot depend on thread timing.
        components = [n for n in names_first if n.startswith("component[")]
        assert components == sorted(components, key=lambda n: int(n[10:-1]))

    def test_concurrent_requests_get_disjoint_complete_trees(self):
        dataset = load_dataset("RC", DatasetScale(factor=0.25, seed=0))
        config = InferenceConfig(
            seed=0, max_flips=800, workers=2, max_inflight_requests=4, tracing="on"
        )
        with EngineSession(dataset.program, config) as session:
            futures = [session.submit_map() for _ in range(4)]
            results = [future.result() for future in futures]
            tracer = session.tracer
        assert len({repr(sorted(r.assignment.items())) for r in results}) == 1
        assert tracer.request_ids() == [1, 2, 3, 4]
        for request_id in (1, 2, 3, 4):
            names = [span.name for span in tracer.request_spans(request_id)]
            for expected in ("request", "admission", "setup", "search", "dispatch"):
                assert expected in names, (request_id, expected)


@pytest.mark.skipif(
    "processes" not in BACKENDS, reason="fork start method unavailable"
)
class TestBankExhaustionSurfacing:
    def test_exhaustion_counts_metrics_and_warns(self, caplog):
        components = [
            connected_components(example1_mrf(6)).components[0],
            connected_components(example1_mrf(6)).components[1],
        ]
        registry = MetricsRegistry()
        task_a = ComponentTask(
            index=0, kind="walksat", seed=11,
            walksat=WalkSATOptions(max_flips=50), request_id=1,
        )
        task_b = ComponentTask(
            index=1, kind="walksat", seed=12,
            walksat=WalkSATOptions(max_flips=50), request_id=2,
        )
        with caplog.at_level(logging.WARNING, logger="repro.parallel.pool"):
            with WorkerPool(components, 1, result_banks=1, metrics=registry) as pool:
                pool.submit(task_a)  # takes the only bank
                pool.submit(task_b)  # exhausted: bank -1, pickled fallback
                outcome_a, _ = pool.next_outcome(1)
                outcome_b, _ = pool.next_outcome(2)
                pool.finish_request(1)
                pool.finish_request(2)
        assert outcome_a.result.best_assignment
        assert outcome_b.result.best_assignment
        assert registry.counter("pool.bank_checkouts") == 1.0
        assert registry.counter("pool.bank_exhausted") == 1.0
        assert registry.counter("pool.pickle_shipped") >= 1.0
        warnings = [r.message for r in caplog.records]
        assert any("result-bank exhaustion" in message for message in warnings)
        assert any("pickled fallback" in message for message in warnings)
