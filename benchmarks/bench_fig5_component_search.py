"""Figure 5 — Tuffy vs Tuffy-p vs Alchemy on IE and RC (search quality).

Figure 5 extends Table 5 in time: on the fragmented datasets the
component-aware search (Tuffy) keeps a persistent quality gap over the
monolithic searches (Tuffy-p, Alchemy) even as the run time grows — the
empirical face of Theorem 3.1.

Expected shape: Tuffy's final cost <= Tuffy-p's and Alchemy's on both
datasets, with a strict gap on at least one of them.
"""

from benchmarks.harness import default_config, emit, fresh_dataset, render_series, render_table
from repro.baselines.alchemy import AlchemyEngine
from repro.core import TuffyEngine

FLIP_BUDGET = 30_000


def run_dataset(name):
    tuffy = TuffyEngine(
        fresh_dataset(name).program, default_config(max_flips=FLIP_BUDGET, use_partitioning=True)
    ).run_map()
    tuffy_p = TuffyEngine(
        fresh_dataset(name).program, default_config(max_flips=FLIP_BUDGET, use_partitioning=False)
    ).run_map()
    alchemy = AlchemyEngine(
        fresh_dataset(name).program, default_config(max_flips=FLIP_BUDGET)
    ).run_map()
    return name, tuffy, tuffy_p, alchemy


def collect():
    return [run_dataset(name) for name in ("IE", "RC")]


def test_figure5_component_aware_search(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    sections = []
    rows = []
    for name, tuffy, tuffy_p, alchemy in results:
        sections.append(
            render_series(
                f"Figure 5 ({name}) — best cost over time (search phase)",
                {"Tuffy": tuffy.trace, "Tuffy-p": tuffy_p.trace, "Alchemy": alchemy.trace},
            )
        )
        rows.append((name, round(tuffy.cost, 1), round(tuffy_p.cost, 1), round(alchemy.cost, 1)))
        assert tuffy.cost <= tuffy_p.cost + 1e-9
        assert tuffy.cost <= alchemy.cost + 1e-9
    sections.append(
        render_table(
            "Figure 5 summary — final costs",
            ["dataset", "Tuffy", "Tuffy-p", "Alchemy"],
            rows,
        )
    )
    emit("fig5_component_search", "\n\n".join(sections))
    # A strict improvement somewhere (the paper sees it on both datasets).
    assert any(tuffy.cost < min(tuffy_p.cost, alchemy.cost) - 1e-9 for _, tuffy, tuffy_p, alchemy in results)
