"""Figure 3 — time-cost plots of Alchemy vs Tuffy on LP, IE, RC and ER.

The paper's headline figure: for each dataset, the cost of the best solution
found so far as a function of time.  Tuffy's curves start far earlier
(grounding is orders of magnitude faster) and on the fragmented datasets
(IE, RC) they also end lower (component-aware search).

Axis convention: time = measured wall-clock grounding seconds + simulated
search seconds (the simulated per-flip cost is calibrated to the measured
in-memory flip rate, so the two segments are commensurable).  Expected
shape: Tuffy's first trace point is earlier than Alchemy's on every dataset,
and Tuffy's final cost is no worse everywhere and strictly better on IE/RC.
"""

from benchmarks.harness import DATASETS, default_config, emit, fresh_dataset, render_series, render_table
from repro.baselines.alchemy import AlchemyEngine
from repro.core import TuffyEngine

FLIP_BUDGET = 20_000


def run_dataset(name):
    tuffy = TuffyEngine(fresh_dataset(name).program, default_config(max_flips=FLIP_BUDGET))
    tuffy_result = tuffy.run_map()
    tuffy_trace = tuffy_result.trace
    tuffy_trace.grounding_seconds = tuffy_result.phase_seconds.get("grounding", 0.0)

    alchemy = AlchemyEngine(fresh_dataset(name).program, default_config(max_flips=FLIP_BUDGET))
    alchemy_result = alchemy.run_map()
    alchemy_trace = alchemy_result.trace
    alchemy_trace.grounding_seconds = alchemy_result.phase_seconds.get("grounding", 0.0)
    return name, tuffy_result, alchemy_result


def collect():
    return [run_dataset(name) for name in DATASETS]


def test_figure3_time_cost_curves(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    sections = []
    summary_rows = []
    for name, tuffy_result, alchemy_result in results:
        sections.append(
            render_series(
                f"Figure 3 ({name}) — best cost over time",
                {"Tuffy": tuffy_result.trace, "Alchemy": alchemy_result.trace},
            )
        )
        summary_rows.append(
            (
                name,
                round(tuffy_result.grounding_seconds, 3),
                round(alchemy_result.grounding_seconds, 3),
                round(tuffy_result.cost, 1),
                round(alchemy_result.cost, 1),
            )
        )
    sections.append(
        render_table(
            "Figure 3 summary — grounding start and final cost",
            ["dataset", "Tuffy grounding (s)", "Alchemy grounding (s)", "Tuffy final cost", "Alchemy final cost"],
            summary_rows,
        )
    )
    emit("fig3_time_cost", "\n\n".join(sections))

    for name, tuffy_result, alchemy_result in results:
        # Tuffy's curve starts earlier (faster grounding)...
        assert tuffy_result.grounding_seconds <= alchemy_result.grounding_seconds
        # ...and ends at least as low on the fragmented datasets.
        if tuffy_result.component_count > 1:
            assert tuffy_result.cost <= alchemy_result.cost + 1e-9
