"""MC-SAT microbenchmark: sampling iterations per second across kernel backends.

Runs the *same* seeded MC-SAT chain (same RNG stream, same marginals) through
the scalar sampling loop (``kernel_backend="flat"`` — the executable
specification, equivalent to the pre-pipeline per-clause Python loop) and the
vectorized sampling pipeline (``kernel_backend="vectorized"`` — batched
clause selection, pooled SampleSAT constraint states, vector marginal
accumulation), and reports wall-clock MC-SAT iterations/sec plus the
speedup.  Because the pipelines are bit-identical (see
``tests/test_mcsat_parity.py``), every run draws exactly the same sample
sequence and produces exactly the same probabilities — the benchmark asserts
that on every workload, so the speedups are pure pipeline measurements.

What is measured: the per-iteration *pipeline* cost — satisfaction
evaluation, clause selection, constraint-state construction and marginal
accumulation — around a fixed SampleSAT move budget.  The move loop itself
is shared verbatim by both backends (it consumes the RNG stream
step-by-step and cannot be batched), so the benchmark bounds it
(``--max-flips`` / ``--mixing-steps``, defaults 300/50) to keep the
measured quantity the thing the pipeline optimises; ``--max-flips 3000
--mixing-steps 200`` reproduces the samplers' production defaults.

Workloads:

* ``example1-N`` — the paper's Example 1 at N two-atom components (3N
  clauses): many small clauses, so per-iteration selection/rebuild overhead
  dominates; this is where the scalar loop hurts most.
* ``RC`` — the synthetic Relational Classification dataset ground to its
  real MRF (~3.2k clauses, mixed positive/negative weights).

Usage::

    python benchmarks/bench_mcsat_throughput.py                     # full run
    python benchmarks/bench_mcsat_throughput.py --quick             # scripts/check.sh
    python benchmarks/bench_mcsat_throughput.py --backend vectorized --assert-speedup 2
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_ROOT, os.path.join(_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.datasets.example1 import example1_mrf
from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.samplesat import SampleSATOptions
from repro.inference.vector_kernel import NUMPY_AVAILABLE
from repro.utils.rng import RandomSource

BENCH_SEED = 0


def dataset_mrf(name: str, factor: float = 1.0):
    """Ground one of the synthetic datasets to an MRF (lazy heavy imports)."""
    from benchmarks.harness import default_config, fresh_dataset
    from repro.core import TuffyEngine

    dataset = fresh_dataset(name, factor)
    engine = TuffyEngine(dataset.program, default_config(max_flips=10))
    engine.ground()
    return engine.build_mrf()


def measure(mrf, backend: str, samples: int, burn_in: int, samplesat, repeats: int):
    """Best-of-``repeats`` wall-clock MC-SAT iterations/sec for one backend."""
    iterations = samples + burn_in
    best_rate = 0.0
    result = None
    for _ in range(repeats):
        options = MCSatOptions(
            samples=samples,
            burn_in=burn_in,
            samplesat=samplesat,
            kernel_backend=backend,
        )
        sampler = MCSat(options, RandomSource(BENCH_SEED))
        started = time.perf_counter()
        result = sampler.run(mrf)
        elapsed = max(time.perf_counter() - started, 1e-9)
        best_rate = max(best_rate, iterations / elapsed)
    return result, best_rate


def run_benchmark(quick: bool, samples: int, burn_in: int, samplesat, repeats, backends):
    if quick:
        workloads = [("example1-900", example1_mrf(900))]
    else:
        workloads = [
            ("example1-300", example1_mrf(300)),
            ("example1-900", example1_mrf(900)),
            ("RC", dataset_mrf("RC")),
        ]

    rows = []
    worst_speedup = float("inf")
    for label, mrf in workloads:
        results = {}
        rates = {}
        for backend in backends:
            result, rate = measure(mrf, backend, samples, burn_in, samplesat, repeats)
            results[backend] = result
            rates[backend] = rate
        if len(backends) == 2:
            # Identical seeded chains: the pipelines must agree bit-for-bit.
            assert (
                results["flat"].probabilities == results["vectorized"].probabilities
            ), (label, "backend marginals diverged")
            worst_speedup = min(
                worst_speedup, rates["vectorized"] / max(rates["flat"], 1e-9)
            )
        row = [label, f"{mrf.atom_count}/{mrf.clause_count}", samples + burn_in]
        for backend in backends:
            row.append(f"{rates[backend]:,.1f}")
        if len(backends) == 2:
            row.append(f"{rates['vectorized'] / max(rates['flat'], 1e-9):.2f}x")
        rows.append(tuple(row))
    return rows, worst_speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="example1-only workload, reduced samples/repeats (for scripts/check.sh)",
    )
    parser.add_argument(
        "--backend",
        choices=("flat", "vectorized", "both"),
        default="both",
        help="which sampling pipeline(s) to measure; 'vectorized' also times "
        "the scalar loop so the speedup can be reported (and exits with a "
        "skip message when numpy is unavailable)",
    )
    parser.add_argument("--samples", type=int, default=None, help="kept MC-SAT samples per run")
    parser.add_argument("--burn-in", type=int, default=5, help="burn-in iterations per run")
    parser.add_argument(
        "--max-flips",
        type=int,
        default=300,
        help="SampleSAT flip budget per iteration (shared by both backends)",
    )
    parser.add_argument(
        "--mixing-steps",
        type=int,
        default=50,
        help="SampleSAT mixing steps per iteration (shared by both backends)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per backend (best-of)"
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless the vectorized pipeline is at least X "
        "times faster than the scalar loop on every workload",
    )
    from benchmarks.harness import add_json_out_argument

    add_json_out_argument(parser)
    args = parser.parse_args(argv)

    if args.backend == "flat" and args.assert_speedup is not None:
        parser.error("--assert-speedup needs the vectorized backend (use --backend vectorized)")
    if args.backend in ("vectorized", "both") and not NUMPY_AVAILABLE:
        if args.backend == "vectorized":
            print("SKIP: vectorized kernel backend requested but numpy is unavailable")
            return 0
        if args.assert_speedup is not None:
            print("SKIP: --assert-speedup needs the vectorized backend but numpy is unavailable")
            return 0
        print("numpy unavailable: measuring the scalar pipeline only")
        backends = ["flat"]
    elif args.backend == "flat":
        backends = ["flat"]
    else:
        backends = ["flat", "vectorized"]

    samples = args.samples if args.samples is not None else (25 if args.quick else 50)
    repeats = args.repeats if args.repeats is not None else 3
    samplesat = SampleSATOptions(
        max_flips=args.max_flips, mixing_steps=args.mixing_steps
    )

    rows, worst_speedup = run_benchmark(
        args.quick, samples, args.burn_in, samplesat, repeats, backends
    )

    from benchmarks.harness import emit, render_table

    header = ["workload", "atoms/clauses", "iterations"]
    header.extend(f"{backend} it/s" for backend in backends)
    if len(backends) == 2:
        header.append("vec/flat")
    table = render_table(
        "MC-SAT sampling — wall-clock iterations/sec (scalar loop vs vectorized pipeline)",
        header,
        rows,
    )
    emit("mcsat_throughput_quick" if args.quick else "mcsat_throughput", table)
    if args.json_out:
        from benchmarks.harness import emit_json

        emit_json(
            "mcsat_throughput",
            [dict(zip(header, row)) for row in rows],
            path=args.json_out,
            metadata={
                "quick": args.quick,
                "backends": backends,
                "worst_speedup_vec_vs_flat": (
                    worst_speedup if len(backends) == 2 else None
                ),
            },
        )
    if len(backends) == 2:
        print(
            f"\nworst-case vectorized-vs-scalar speedup: {worst_speedup:.2f}x "
            "(marginals identical per seed)"
        )
        if args.assert_speedup is not None and worst_speedup < args.assert_speedup:
            print(
                f"FAIL: speedup below required {args.assert_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
