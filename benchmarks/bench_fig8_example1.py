"""Figure 8 — Example 1 with many components: Tuffy vs Tuffy-p vs Alchemy.

The paper runs the synthetic Example 1 MRF with 1000 components and shows
that the component-aware search drops to the optimal cost almost
immediately, while the component-blind searches (Tuffy-p, Alchemy) plateau
far above it — the hitting-time analysis of Theorem 3.1 made visible.

Here the MRF has 200 components (so the blind searches' plateau is well
separated within a small flip budget).  Expected shape: Tuffy reaches the
optimum (cost == #components); both blind searches stay strictly above it.
"""

from benchmarks.harness import emit, render_series, render_table
from repro.datasets.example1 import example1_mrf, example1_optimal_cost
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.utils.rng import RandomSource

N_COMPONENTS = 200
FLIP_BUDGET = 20_000


def run_all():
    mrf = example1_mrf(N_COMPONENTS)
    aware = ComponentAwareWalkSAT(
        WalkSATOptions(max_flips=FLIP_BUDGET, trace_label="tuffy"), RandomSource(0)
    ).run(mrf, total_flips=FLIP_BUDGET)
    tuffy_p = WalkSAT(
        WalkSATOptions(max_flips=FLIP_BUDGET, trace_label="tuffy-p"), RandomSource(1)
    ).run(mrf)
    alchemy = WalkSAT(
        WalkSATOptions(max_flips=FLIP_BUDGET, trace_label="alchemy"), RandomSource(2)
    ).run(mrf)
    return aware, tuffy_p, alchemy


def test_figure8_example1(benchmark):
    aware, tuffy_p, alchemy = benchmark.pedantic(run_all, rounds=1, iterations=1)
    optimum = example1_optimal_cost(N_COMPONENTS)
    sections = [
        render_series(
            f"Figure 8 — Example 1 with {N_COMPONENTS} components (optimum = {optimum:g})",
            {"Tuffy": aware.trace, "Tuffy-p": tuffy_p.trace, "Alchemy": alchemy.trace},
        ),
        render_table(
            "Figure 8 summary — final costs",
            ["system", "final cost", "flips"],
            [
                ("Tuffy (component-aware)", aware.best_cost, aware.flips),
                ("Tuffy-p", tuffy_p.best_cost, tuffy_p.flips),
                ("Alchemy", alchemy.best_cost, alchemy.flips),
            ],
        ),
    ]
    emit("fig8_example1", "\n\n".join(sections))
    assert aware.best_cost == optimum
    assert tuffy_p.best_cost > optimum
    assert alchemy.best_cost > optimum
