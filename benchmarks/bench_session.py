"""Engine sessions — warm-request throughput and delta-grounding speedup.

The session architecture (``repro.core.session``) keeps grounding, the
MRF, the component decomposition, kernel states and the forked worker
pool alive between requests.  This benchmark prices the two claims:

* **Warm requests/sec vs cold** on IE (the many-component regime) at
  1/2/4 workers: a cold request pays the full pipeline every time
  (ground + MRF + components + pool fork); a warm request on one session
  pays only search.  ``--assert-speedup X`` requires warm >= X * cold at
  the highest worker count (the check target is 3x at 4 workers).
* **Delta vs full reground**: after one evidence fact is added, the
  session replays every ground clause whose predicates are unchanged and
  re-runs only the affected relational queries; the same delta with
  ``delta_grounding=False`` re-executes everything.  The grounding delta
  report's counters (queries executed vs clauses replayed) are printed
  alongside the wall-clock ratio.
* **Concurrent admission** on one warm session: the same batch of
  requests is submitted through the admission queue with 1/2/4 in
  flight and the aggregate requests/sec compared.  In-flight requests
  overlap parent-side setup with pool-side search, so aggregate
  throughput should rise with admission width when cores exist.
  ``--assert-concurrent-speedup X`` requires the widest width to reach
  X times the width-1 rate (the check target is 1.5x at width 4).

Warm results are asserted bit-identical to cold results before any
timing is reported, so the numbers compare identical work (the session
parity suite proves the full contract).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core import InferenceConfig, TuffyEngine

BENCH_SEED = 0


def _config(workers: int, flips: int) -> InferenceConfig:
    return InferenceConfig(
        seed=BENCH_SEED,
        max_flips=flips,
        workers=workers,
        parallel_backend="auto",
    )


def _fresh_seedword_pair(program):
    """A (word, label) seedword pair not yet in the evidence.

    Uses only constants the program already knows, so the delta adds one
    new evidence atom without touching any typed domain.
    """
    words, labels, existing = [], [], set()
    for fact in program.evidence:
        if fact.atom.predicate.name != "seedword":
            continue
        word, label = fact.atom.argument_values()
        words.append(word)
        labels.append(label)
        existing.add((word, label))
    for word in words:
        for label in labels:
            if (word, label) not in existing:
                return word, label
    raise RuntimeError("IE workload has every seedword pair as evidence")


def measure_requests(program, workers: int, flips: int, requests: int):
    """(cold requests/sec, warm requests/sec, pool launches)."""
    # Cold: a fresh engine per request pays the whole pipeline each time.
    cold_result = None
    cold_started = time.perf_counter()
    for _request in range(requests):
        with TuffyEngine(program, _config(workers, flips)) as engine:
            cold_result = engine.run_map()
    cold_seconds = max(time.perf_counter() - cold_started, 1e-9)

    # Warm: one session; the first request pays the pipeline, the timed
    # ones reuse it.
    with TuffyEngine(program, _config(workers, flips)) as engine:
        warm_result = engine.run_map()
        assert warm_result.assignment == cold_result.assignment, (
            "warm session diverged from cold engine"
        )
        assert warm_result.cost == cold_result.cost
        assert warm_result.flips == cold_result.flips
        warm_started = time.perf_counter()
        for _request in range(requests):
            warm_result = engine.run_map()
        warm_seconds = max(time.perf_counter() - warm_started, 1e-9)
        assert warm_result.assignment == cold_result.assignment
        pool_launches = engine.stats.pool_launches
    return requests / cold_seconds, requests / warm_seconds, pool_launches


def measure_concurrent(program, workers: int, flips: int, requests: int, inflight: int):
    """Aggregate requests/sec with ``inflight`` requests admitted at once.

    One warm session serves the whole batch; every interleaved result is
    asserted bit-identical to the solo warm-up request before the rate
    is reported.
    """
    config = InferenceConfig(
        seed=BENCH_SEED,
        max_flips=flips,
        workers=workers,
        parallel_backend="auto",
        max_inflight_requests=inflight,
    )
    with TuffyEngine(program, config) as engine:
        reference = engine.run_map()  # warm up: ground + components + pool fork
        started = time.perf_counter()
        futures = [engine.submit_map() for _request in range(requests)]
        results = [future.result() for future in futures]
        seconds = max(time.perf_counter() - started, 1e-9)
        for result in results:
            assert result.assignment == reference.assignment, (
                "interleaved request diverged from its solo run"
            )
            assert result.cost == reference.cost
            assert result.flips == reference.flips
    return requests / seconds


def measure_delta_reground(program_factory, flips: int):
    """Wall seconds of a delta reground vs a full reground, plus counters."""

    def reground_seconds(delta_grounding: bool):
        config = InferenceConfig(
            seed=BENCH_SEED, max_flips=flips, delta_grounding=delta_grounding
        )
        with TuffyEngine(program_factory(), config) as engine:
            engine.ground()
            word, label = _fresh_seedword_pair(engine.program)
            engine.add_evidence("seedword", (word, label))
            started = time.perf_counter()
            engine.ground()
            seconds = max(time.perf_counter() - started, 1e-9)
            return seconds, engine.session.last_ground_report

    delta_seconds, delta_report = reground_seconds(True)
    full_seconds, full_report = reground_seconds(False)
    assert delta_report.clauses_replayed > 0, "delta reground replayed nothing"
    assert full_report.clauses_replayed == 0
    return delta_seconds, full_seconds, delta_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload and budgets (for scripts/check.sh)",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts",
    )
    parser.add_argument("--flips", type=int, default=None, help="flip budget per request")
    parser.add_argument(
        "--requests", type=int, default=None, help="timed requests per configuration"
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless warm requests/sec reaches X times cold at "
        "the highest worker count (skipped when the machine has fewer CPUs "
        "than workers)",
    )
    parser.add_argument(
        "--concurrent",
        default="1,2,4",
        help="comma-separated admission widths for the concurrent axis "
        "(aggregate requests/sec with N requests in flight on one warm "
        "session); pass an empty string to disable the axis",
    )
    parser.add_argument(
        "--assert-concurrent-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless aggregate requests/sec at the widest "
        "admission width reaches X times the width-1 rate (skipped when the "
        "machine has fewer CPUs than the widest width)",
    )
    from benchmarks.harness import add_json_out_argument, emit, emit_json, render_table

    add_json_out_argument(parser)
    args = parser.parse_args(argv)

    worker_counts = [int(token) for token in args.workers.split(",") if token.strip()]
    flips = args.flips if args.flips is not None else (10_000 if args.quick else 50_000)
    requests = args.requests if args.requests is not None else (4 if args.quick else 8)
    factor = 0.3 if args.quick else 1.0
    cpus = os.cpu_count() or 1

    from benchmarks.harness import fresh_dataset

    dataset = fresh_dataset("IE", factor)

    rows = []
    json_rows = []
    speedup_at_max = None
    for workers in worker_counts:
        cold_rps, warm_rps, pool_launches = measure_requests(
            dataset.program, workers, flips, requests
        )
        speedup = warm_rps / cold_rps
        rows.append(
            (
                "IE",
                workers,
                f"{cold_rps:.2f}",
                f"{warm_rps:.2f}",
                f"{speedup:.2f}x",
                pool_launches,
            )
        )
        json_rows.append(
            {
                "workload": "IE",
                "mode": "requests",
                "workers": workers,
                "cold_requests_per_sec": cold_rps,
                "warm_requests_per_sec": warm_rps,
                "warm_over_cold": speedup,
                "pool_launches": pool_launches,
            }
        )
        if workers == max(worker_counts):
            speedup_at_max = speedup

    concurrent_counts = [
        int(token) for token in args.concurrent.split(",") if token.strip()
    ]
    concurrent_rows = []
    concurrent_rps = {}
    # Two pool workers are enough to overlap parent-side setup with
    # pool-side search; admission width, not worker count, is the axis.
    concurrent_workers = min(2, max(worker_counts))
    for inflight in concurrent_counts:
        rps = measure_concurrent(
            dataset.program, concurrent_workers, flips, requests, inflight
        )
        concurrent_rps[inflight] = rps
    concurrent_speedup = None
    if concurrent_counts:
        base_width = min(concurrent_counts)
        base_rps = concurrent_rps[base_width]
        for inflight in concurrent_counts:
            ratio = concurrent_rps[inflight] / base_rps
            concurrent_rows.append(
                (
                    "IE",
                    inflight,
                    concurrent_workers,
                    f"{concurrent_rps[inflight]:.2f}",
                    f"{ratio:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": "IE",
                    "mode": "concurrent",
                    "inflight": inflight,
                    "workers": concurrent_workers,
                    "aggregate_requests_per_sec": concurrent_rps[inflight],
                    "concurrent_over_serial": ratio,
                }
            )
        concurrent_speedup = concurrent_rps[max(concurrent_counts)] / base_rps

    delta_seconds, full_seconds, report = measure_delta_reground(
        lambda: fresh_dataset("IE", factor).program, flips
    )
    delta_speedup = full_seconds / delta_seconds
    json_rows.append(
        {
            "workload": "IE",
            "mode": "delta_reground",
            "delta_seconds": delta_seconds,
            "full_seconds": full_seconds,
            "full_over_delta": delta_speedup,
            "clauses_total": report.clauses_total,
            "queries_executed": report.queries_executed,
            "clauses_replayed": report.clauses_replayed,
            "atom_tables_loaded": report.atom_tables_loaded,
            "atom_tables_reused": report.atom_tables_reused,
        }
    )

    table = render_table(
        "Engine sessions — warm vs cold requests/sec (IE)",
        ["workload", "workers", "cold req/s", "warm req/s", "warm/cold", "pool forks"],
        rows,
    )
    if concurrent_rows:
        table += "\n\n" + render_table(
            "Concurrent admission — aggregate requests/sec on one warm session (IE)",
            ["workload", "in-flight", "workers", "agg req/s", "vs width 1"],
            concurrent_rows,
        )
    table += "\n\n" + render_table(
        "Delta vs full reground after one evidence fact (IE)",
        ["reground", "seconds", "queries", "replayed", "tables loaded", "tables reused"],
        [
            (
                "delta",
                f"{delta_seconds:.4f}",
                report.queries_executed,
                report.clauses_replayed,
                report.atom_tables_loaded,
                report.atom_tables_reused,
            ),
            ("full", f"{full_seconds:.4f}", report.clauses_total, 0, "-", "-"),
            ("full/delta", f"{delta_speedup:.2f}x", "", "", "", ""),
        ],
    )
    emit("session_quick" if args.quick else "session", table)
    if args.json_out:
        emit_json(
            "session",
            json_rows,
            path=args.json_out,
            metadata={
                "quick": args.quick,
                "cpus": cpus,
                "flips": flips,
                "requests": requests,
                "ie_factor": factor,
            },
        )

    if args.assert_speedup is not None:
        if cpus < max(worker_counts):
            print(
                f"SKIP --assert-speedup: {cpus} CPU(s) < {max(worker_counts)} workers"
            )
            return 0
        if speedup_at_max is None or speedup_at_max < args.assert_speedup:
            print(
                f"FAIL: warm/cold requests/sec {speedup_at_max} below required "
                f"{args.assert_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: warm sessions {speedup_at_max:.2f}x cold at "
            f"{max(worker_counts)} workers (required {args.assert_speedup:.2f}x); "
            f"delta reground {delta_speedup:.2f}x faster than full"
        )

    if args.assert_concurrent_speedup is not None:
        if not concurrent_counts:
            print("SKIP --assert-concurrent-speedup: --concurrent axis disabled")
            return 0
        widest = max(concurrent_counts)
        if cpus < widest:
            print(
                f"SKIP --assert-concurrent-speedup: {cpus} CPU(s) < "
                f"{widest} in-flight requests"
            )
            return 0
        if concurrent_speedup is None or concurrent_speedup < args.assert_concurrent_speedup:
            print(
                f"FAIL: concurrent aggregate requests/sec {concurrent_speedup} "
                f"below required {args.assert_concurrent_speedup:.2f}x at "
                f"width {widest}",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: concurrent admission {concurrent_speedup:.2f}x the width-1 "
            f"aggregate rate at width {widest} "
            f"(required {args.assert_concurrent_speedup:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
