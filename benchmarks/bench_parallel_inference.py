"""Parallel component inference — wall-clock speedup of the process pool.

The paper's Table 7 parallelism claim: with the MRF split into components,
loading them in batches and searching them with a worker pool scales with
the number of cores.  ``bench_table7_loading_parallelism.py`` reports the
*simulated* model of that claim; this benchmark measures the real thing —
the ``parallel_backend = processes`` pool (shared-memory component buffers,
one forked worker per core) against the ``serial`` backend on the same
seeded search:

* **IE** — the many-component regime (one small component per citation),
  where the pool should approach linear speedup on multi-core machines
  (the check target is >= 1.8x at 4 workers);
* **ring** — a single-component MRF, where ``auto`` resolves to ``serial``
  and a *forced* ``processes`` run measures the pool's overhead (spin-up +
  shared-memory packing + one task round-trip); the bound is <= 10% over
  serial.

Every run is asserted bit-identical to the serial result (the determinism
contract of ``repro.parallel``), so the numbers compare identical work.
Wall-clock speedups are machine-dependent: on a single-CPU machine the
process measurements are skipped cleanly (there is nothing to win) unless
``--force`` is given.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core import InferenceConfig, TuffyEngine
from repro.grounding.clause_table import GroundClauseStore
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.walksat import WalkSATOptions
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource

BENCH_SEED = 0


def ie_components(factor: float):
    """The IE workload's component list (ground once, reuse everywhere)."""
    from benchmarks.harness import fresh_dataset

    dataset = fresh_dataset("IE", factor)
    engine = TuffyEngine(dataset.program, InferenceConfig(seed=BENCH_SEED))
    return engine.detect_components().components


def ring_mrf(n_atoms: int) -> MRF:
    """One connected component: a weighted ring with conflicting unit clauses.

    The optimum is strictly positive (every atom is pushed both ways), so
    WalkSAT spends its whole budget — the honest baseline for measuring
    pool overhead against.
    """
    store = GroundClauseStore()
    for atom in range(1, n_atoms + 1):
        succ = atom % n_atoms + 1
        store.add((atom, succ), 1.0)
        store.add((-atom, -succ), 1.0)
        store.add((atom,), 0.5)
    return MRF.from_store(store)


def measure(components, flips, backend, workers, repeats):
    """Best-of wall seconds (and the result) of one configuration."""
    best = None
    result = None
    for _ in range(repeats):
        searcher = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=flips),
            RandomSource(BENCH_SEED),
            workers=workers,
            parallel_backend=backend,
        )
        started = time.perf_counter()
        result = searcher.run(components, total_flips=flips)
        elapsed = max(time.perf_counter() - started, 1e-9)
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads and budgets (for scripts/check.sh)",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts for the processes backend",
    )
    parser.add_argument("--flips", type=int, default=None, help="total flip budget")
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per configuration"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="measure the processes backend even on a single-CPU machine",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless the processes backend reaches X speedup "
        "at the highest worker count on IE AND stays within 10%% of serial "
        "on the single-component workload (skipped when the machine has "
        "fewer CPUs than workers)",
    )
    from benchmarks.harness import add_json_out_argument, emit, emit_json, render_table

    add_json_out_argument(parser)
    args = parser.parse_args(argv)

    worker_counts = [int(token) for token in args.workers.split(",") if token.strip()]
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)
    flips = args.flips if args.flips is not None else (300_000 if args.quick else 2_000_000)
    ring_flips = 200_000 if args.quick else 1_000_000
    cpus = os.cpu_count() or 1

    from repro.parallel import processes_available

    run_processes = processes_available() and (cpus >= 2 or args.force)
    if not processes_available():
        print("SKIP processes backend: fork start method unavailable")
    elif not run_processes:
        print(
            "SKIP processes measurements: single-CPU machine "
            "(nothing to win; use --force to measure anyway)"
        )

    rows = []
    json_rows = []

    # --- IE: many components -------------------------------------------------
    components = ie_components(0.5 if args.quick else 1.0)
    serial_result, serial_seconds = measure(components, flips, "serial", 1, repeats)
    rows.append(
        ("IE", len(components), "serial", 1, f"{serial_seconds:.3f}", "1.00x", "1.00x")
    )
    json_rows.append(
        {
            "workload": "IE",
            "components": len(components),
            "backend": "serial",
            "workers": 1,
            "wall_seconds": serial_seconds,
            "speedup_vs_serial": 1.0,
        }
    )
    ie_speedup_at_max = None
    if run_processes:
        for workers in worker_counts:
            result, seconds = measure(components, flips, "processes", workers, repeats)
            assert result.best_assignment == serial_result.best_assignment, (
                "processes result diverged from serial"
            )
            assert result.best_cost == serial_result.best_cost
            speedup = serial_seconds / seconds
            simulated = (
                result.simulated_seconds / result.parallel_simulated_seconds
                if result.parallel_simulated_seconds > 0
                else 1.0
            )
            rows.append(
                (
                    "IE",
                    len(components),
                    "processes",
                    workers,
                    f"{seconds:.3f}",
                    f"{speedup:.2f}x",
                    f"{simulated:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": "IE",
                    "components": len(components),
                    "backend": "processes",
                    "workers": workers,
                    "wall_seconds": seconds,
                    "speedup_vs_serial": speedup,
                    "simulated_speedup": simulated,
                }
            )
            ie_speedup_at_max = speedup

    # --- ring: a single component (pool-overhead bound) ----------------------
    ring = [ring_mrf(60 if args.quick else 120)]
    ring_serial_result, ring_serial_seconds = measure(
        ring, ring_flips, "serial", 1, repeats
    )
    rows.append(
        ("ring", 1, "serial", 1, f"{ring_serial_seconds:.3f}", "1.00x", "1.00x")
    )
    json_rows.append(
        {
            "workload": "ring",
            "components": 1,
            "backend": "serial",
            "workers": 1,
            "wall_seconds": ring_serial_seconds,
            "speedup_vs_serial": 1.0,
        }
    )
    overhead = None
    if run_processes:
        # auto would fall back to serial here; force the pool to price it.
        result, seconds = measure(ring, ring_flips, "processes", max(worker_counts), repeats)
        assert result.best_assignment == ring_serial_result.best_assignment
        assert result.best_cost == ring_serial_result.best_cost
        overhead = seconds / ring_serial_seconds - 1.0
        rows.append(
            (
                "ring",
                1,
                "processes (forced)",
                max(worker_counts),
                f"{seconds:.3f}",
                f"{ring_serial_seconds / seconds:.2f}x",
                f"overhead {overhead * 100:+.1f}%",
            )
        )
        json_rows.append(
            {
                "workload": "ring",
                "components": 1,
                "backend": "processes",
                "workers": max(worker_counts),
                "wall_seconds": seconds,
                "speedup_vs_serial": ring_serial_seconds / seconds,
                "overhead_vs_serial": overhead,
            }
        )

    table = render_table(
        "Parallel component inference — wall-clock (serial vs multiprocess pool)",
        ["workload", "components", "backend", "workers", "seconds", "vs serial", "simulated"],
        rows,
    )
    emit("parallel_inference_quick" if args.quick else "parallel_inference", table)
    if args.json_out:
        emit_json(
            "parallel",
            json_rows,
            path=args.json_out,
            metadata={
                "quick": args.quick,
                "cpus": cpus,
                "flips": flips,
                "processes_measured": run_processes,
            },
        )

    if args.assert_speedup is not None:
        if not run_processes or cpus < max(worker_counts):
            print(
                f"SKIP --assert-speedup: {cpus} CPU(s) < {max(worker_counts)} workers "
                "(wall-clock parallel speedup is unobservable here)"
            )
            return 0
        failed = False
        if ie_speedup_at_max is None or ie_speedup_at_max < args.assert_speedup:
            print(
                f"FAIL: IE speedup {ie_speedup_at_max} below required "
                f"{args.assert_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True
        if overhead is not None and overhead > 0.10:
            print(
                f"FAIL: single-component pool overhead {overhead * 100:.1f}% "
                "exceeds the 10% bound",
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
