"""Parallel component inference — wall-clock speedup of the process pool.

The paper's Table 7 parallelism claim: with the MRF split into components,
loading them in batches and searching them with a worker pool scales with
the number of cores.  ``bench_table7_loading_parallelism.py`` reports the
*simulated* model of that claim; this benchmark measures the real thing —
the ``parallel_backend = processes`` pool (shared-memory component buffers,
one forked worker per core) against the ``serial`` backend on the same
seeded search:

* **IE** — the many-component regime (one small component per citation),
  where the pool should approach linear speedup on multi-core machines
  (the check target is >= 1.8x at 4 workers);
* **ring** — a single-component MRF, where ``auto`` resolves to ``serial``
  and a *forced* ``processes`` run measures the pool's overhead (spin-up +
  shared-memory packing + one task round-trip); the bound is <= 10% over
  serial;
* **imbalanced** — one giant component plus many tiny ones, the dispatch
  stress shape: the work-stealing loop (``--dispatch steal``, the default)
  is measured against the legacy barrier scheduler (``--dispatch wave``,
  waves of ``workers`` tasks that idle behind their slowest member) on one
  warm pool, along with the scheduler's telemetry (steal counts,
  shm-shipped result bytes).  ``--assert-dispatch-speedup X`` gates on
  steal beating wave by X at the highest worker count (skipped, like every
  wall-clock assertion, when the machine lacks the cores).

Every run is asserted bit-identical to the serial result (the determinism
contract of ``repro.parallel``), so the numbers compare identical work.
Wall-clock speedups are machine-dependent: on a single-CPU machine the
process measurements are skipped cleanly (there is nothing to win) unless
``--force`` is given.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core import InferenceConfig, TuffyEngine
from repro.grounding.clause_table import GroundClauseStore
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.walksat import WalkSATOptions
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource

BENCH_SEED = 0


def ie_components(factor: float):
    """The IE workload's component list (ground once, reuse everywhere)."""
    from benchmarks.harness import fresh_dataset

    dataset = fresh_dataset("IE", factor)
    engine = TuffyEngine(dataset.program, InferenceConfig(seed=BENCH_SEED))
    return engine.detect_components().components


def ring_mrf(n_atoms: int) -> MRF:
    """One connected component: a weighted ring with conflicting unit clauses.

    The optimum is strictly positive (every atom is pushed both ways), so
    WalkSAT spends its whole budget — the honest baseline for measuring
    pool overhead against.
    """
    store = GroundClauseStore()
    for atom in range(1, n_atoms + 1):
        succ = atom % n_atoms + 1
        store.add((atom, succ), 1.0)
        store.add((-atom, -succ), 1.0)
        store.add((atom,), 0.5)
    return MRF.from_store(store)


def imbalanced_mrfs(n_tiny: int, tiny_atoms: int, giant_atoms: int):
    """One giant chain plus many tiny ones — the stealing stress shape.

    Sized so the giant's flip share (proportional to its atom count) is
    close to the total tiny work divided by the remaining workers: a
    stealing dispatch hides the tiny components behind the giant, while
    the barrier scheduler pays for them in extra full waves.
    """

    def chain(n_atoms, first_atom):
        store = GroundClauseStore()
        atoms = list(range(first_atom, first_atom + n_atoms))
        for left, right in zip(atoms, atoms[1:]):
            store.add((left, right), 1.0)
        for atom in atoms:
            store.add((atom,), 1.0)
            store.add((-atom,), 0.8)
        return MRF.from_store(store)

    components = [chain(giant_atoms, 1)]
    base = 10_000
    for _ in range(n_tiny):
        components.append(chain(tiny_atoms, base))
        base += 1_000
    return components


def dispatch_tasks(components, flips):
    """The component tasks the searcher would build (weighted allocation)."""
    from repro.inference.scheduling import weighted_flip_allocation
    from repro.parallel.pool import ComponentTask

    allocation = weighted_flip_allocation(components, flips)
    rng = RandomSource(BENCH_SEED)
    return [
        ComponentTask(
            index=index,
            kind="walksat",
            seed=rng.spawn(index + 1).seed,
            walksat=WalkSATOptions(max_flips=max(budget, 1), target_cost=0.0),
        )
        for index, budget in enumerate(allocation)
    ]


def measure(components, flips, backend, workers, repeats, dispatch="steal"):
    """Best-of wall seconds (and the result) of one configuration."""
    best = None
    result = None
    for _ in range(repeats):
        searcher = ComponentAwareWalkSAT(
            WalkSATOptions(max_flips=flips),
            RandomSource(BENCH_SEED),
            workers=workers,
            parallel_backend=backend,
            dispatch=dispatch,
        )
        started = time.perf_counter()
        result = searcher.run(components, total_flips=flips)
        elapsed = max(time.perf_counter() - started, 1e-9)
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def measure_dispatch(components, flips, workers, dispatch, repeats, pool):
    """Best-of wall seconds of the raw scheduler on a warm lent pool."""
    from repro.parallel.scheduler import run_component_tasks

    best = None
    outcome = None
    for _ in range(repeats):
        tasks = dispatch_tasks(components, flips)
        started = time.perf_counter()
        outcome = run_component_tasks(
            components, tasks, backend="processes", workers=workers,
            pool=pool, dispatch=dispatch,
        )
        elapsed = max(time.perf_counter() - started, 1e-9)
        best = elapsed if best is None else min(best, elapsed)
    return outcome, best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads and budgets (for scripts/check.sh)",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts for the processes backend",
    )
    parser.add_argument("--flips", type=int, default=None, help="total flip budget")
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per configuration"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="measure the processes backend even on a single-CPU machine",
    )
    parser.add_argument(
        "--dispatch",
        choices=("steal", "wave"),
        default="steal",
        help="dispatch mode for the IE and ring measurements (the "
        "imbalanced section always measures both)",
    )
    parser.add_argument(
        "--assert-dispatch-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless work-stealing dispatch beats the wave "
        "barrier by X on the imbalanced workload at the highest worker "
        "count (skipped when the machine has fewer CPUs than workers)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless the processes backend reaches X speedup "
        "at the highest worker count on IE AND stays within 10%% of serial "
        "on the single-component workload (skipped when the machine has "
        "fewer CPUs than workers)",
    )
    from benchmarks.harness import add_json_out_argument, emit, emit_json, render_table

    add_json_out_argument(parser)
    args = parser.parse_args(argv)

    worker_counts = [int(token) for token in args.workers.split(",") if token.strip()]
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)
    flips = args.flips if args.flips is not None else (300_000 if args.quick else 2_000_000)
    ring_flips = 200_000 if args.quick else 1_000_000
    cpus = os.cpu_count() or 1

    from repro.parallel import processes_available

    run_processes = processes_available() and (cpus >= 2 or args.force)
    if not processes_available():
        print("SKIP processes backend: fork start method unavailable")
    elif not run_processes:
        print(
            "SKIP processes measurements: single-CPU machine "
            "(nothing to win; use --force to measure anyway)"
        )

    rows = []
    json_rows = []

    # --- IE: many components -------------------------------------------------
    components = ie_components(0.5 if args.quick else 1.0)
    serial_result, serial_seconds = measure(components, flips, "serial", 1, repeats)
    rows.append(
        ("IE", len(components), "serial", 1, f"{serial_seconds:.3f}", "1.00x", "1.00x")
    )
    json_rows.append(
        {
            "workload": "IE",
            "components": len(components),
            "backend": "serial",
            "workers": 1,
            "wall_seconds": serial_seconds,
            "speedup_vs_serial": 1.0,
        }
    )
    ie_speedup_at_max = None
    if run_processes:
        for workers in worker_counts:
            result, seconds = measure(
                components, flips, "processes", workers, repeats,
                dispatch=args.dispatch,
            )
            assert result.best_assignment == serial_result.best_assignment, (
                "processes result diverged from serial"
            )
            assert result.best_cost == serial_result.best_cost
            speedup = serial_seconds / seconds
            simulated = (
                result.simulated_seconds / result.parallel_simulated_seconds
                if result.parallel_simulated_seconds > 0
                else 1.0
            )
            rows.append(
                (
                    "IE",
                    len(components),
                    "processes",
                    workers,
                    f"{seconds:.3f}",
                    f"{speedup:.2f}x",
                    f"{simulated:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": "IE",
                    "components": len(components),
                    "backend": "processes",
                    "workers": workers,
                    "dispatch": args.dispatch,
                    "wall_seconds": seconds,
                    "speedup_vs_serial": speedup,
                    "simulated_speedup": simulated,
                }
            )
            ie_speedup_at_max = speedup

    # --- ring: a single component (pool-overhead bound) ----------------------
    ring = [ring_mrf(60 if args.quick else 120)]
    ring_serial_result, ring_serial_seconds = measure(
        ring, ring_flips, "serial", 1, repeats
    )
    rows.append(
        ("ring", 1, "serial", 1, f"{ring_serial_seconds:.3f}", "1.00x", "1.00x")
    )
    json_rows.append(
        {
            "workload": "ring",
            "components": 1,
            "backend": "serial",
            "workers": 1,
            "wall_seconds": ring_serial_seconds,
            "speedup_vs_serial": 1.0,
        }
    )
    overhead = None
    if run_processes:
        # auto would fall back to serial here; force the pool to price it.
        result, seconds = measure(
            ring, ring_flips, "processes", max(worker_counts), repeats,
            dispatch=args.dispatch,
        )
        assert result.best_assignment == ring_serial_result.best_assignment
        assert result.best_cost == ring_serial_result.best_cost
        overhead = seconds / ring_serial_seconds - 1.0
        rows.append(
            (
                "ring",
                1,
                "processes (forced)",
                max(worker_counts),
                f"{seconds:.3f}",
                f"{ring_serial_seconds / seconds:.2f}x",
                f"overhead {overhead * 100:+.1f}%",
            )
        )
        json_rows.append(
            {
                "workload": "ring",
                "components": 1,
                "backend": "processes",
                "workers": max(worker_counts),
                "wall_seconds": seconds,
                "speedup_vs_serial": ring_serial_seconds / seconds,
                "overhead_vs_serial": overhead,
            }
        )

    # --- imbalanced: stealing vs the wave barrier ----------------------------
    from repro.parallel.pool import WorkerPool
    from repro.parallel.scheduler import run_component_tasks

    imbalanced = imbalanced_mrfs(
        n_tiny=15 if args.quick else 25, tiny_atoms=3, giant_atoms=25
    )
    dispatch_flips = 150_000 if args.quick else 400_000
    dispatch_workers = max(worker_counts)
    started = time.perf_counter()
    serial_outcome = run_component_tasks(
        imbalanced, dispatch_tasks(imbalanced, dispatch_flips), backend="serial"
    )
    imbalanced_serial_seconds = max(time.perf_counter() - started, 1e-9)
    rows.append(
        (
            "imbalanced",
            len(imbalanced),
            "serial",
            1,
            f"{imbalanced_serial_seconds:.3f}",
            "1.00x",
            "1.00x",
        )
    )
    json_rows.append(
        {
            "workload": "imbalanced",
            "components": len(imbalanced),
            "backend": "serial",
            "workers": 1,
            "wall_seconds": imbalanced_serial_seconds,
            "speedup_vs_serial": 1.0,
        }
    )
    dispatch_speedup = None
    if run_processes:
        with WorkerPool(imbalanced, dispatch_workers) as pool:
            # One warm-up pass so forked workers fault in their buffers
            # before either mode is timed.
            measure_dispatch(
                imbalanced, dispatch_flips, dispatch_workers, "steal", 1, pool
            )
            seconds_by_mode = {}
            for dispatch in ("wave", "steal"):
                outcome, seconds = measure_dispatch(
                    imbalanced, dispatch_flips, dispatch_workers, dispatch,
                    repeats, pool,
                )
                assert [r.best_assignment for r in outcome.results] == [
                    r.best_assignment for r in serial_outcome.results
                ], f"{dispatch} dispatch diverged from serial"
                assert [r.best_cost for r in outcome.results] == [
                    r.best_cost for r in serial_outcome.results
                ]
                seconds_by_mode[dispatch] = seconds
                vs_wave = seconds_by_mode["wave"] / seconds
                rows.append(
                    (
                        "imbalanced",
                        len(imbalanced),
                        f"processes ({dispatch})",
                        dispatch_workers,
                        f"{seconds:.3f}",
                        f"{imbalanced_serial_seconds / seconds:.2f}x",
                        f"{vs_wave:.2f}x vs wave",
                    )
                )
                json_rows.append(
                    {
                        "workload": "imbalanced",
                        "components": len(imbalanced),
                        "backend": "processes",
                        "workers": dispatch_workers,
                        "dispatch": dispatch,
                        "wall_seconds": seconds,
                        "speedup_vs_serial": imbalanced_serial_seconds / seconds,
                        "speedup_vs_wave": vs_wave,
                        "steals": outcome.steals,
                        "executed": outcome.executed,
                        "shm_shipped": outcome.shm_shipped,
                        "pickle_shipped": outcome.pickle_shipped,
                        "shm_bytes": outcome.shm_bytes,
                    }
                )
            dispatch_speedup = seconds_by_mode["wave"] / seconds_by_mode["steal"]

    table = render_table(
        "Parallel component inference — wall-clock (serial vs multiprocess pool)",
        ["workload", "components", "backend", "workers", "seconds", "vs serial", "simulated"],
        rows,
    )
    emit("parallel_inference_quick" if args.quick else "parallel_inference", table)
    if args.json_out:
        emit_json(
            "parallel",
            json_rows,
            path=args.json_out,
            metadata={
                "quick": args.quick,
                "cpus": cpus,
                "flips": flips,
                "dispatch": args.dispatch,
                "processes_measured": run_processes,
            },
        )

    failed = False
    # Wall-clock speedups need the cores to exist; on smaller machines
    # both assertions skip (determinism is still enforced above).
    skip_wall_asserts = not run_processes or cpus < max(worker_counts)
    if args.assert_speedup is not None:
        if skip_wall_asserts:
            print(
                f"SKIP --assert-speedup: {cpus} CPU(s) < {max(worker_counts)} workers "
                "(wall-clock parallel speedup is unobservable here)"
            )
        else:
            if ie_speedup_at_max is None or ie_speedup_at_max < args.assert_speedup:
                print(
                    f"FAIL: IE speedup {ie_speedup_at_max} below required "
                    f"{args.assert_speedup:.2f}x",
                    file=sys.stderr,
                )
                failed = True
            if overhead is not None and overhead > 0.10:
                print(
                    f"FAIL: single-component pool overhead {overhead * 100:.1f}% "
                    "exceeds the 10% bound",
                    file=sys.stderr,
                )
                failed = True
    if args.assert_dispatch_speedup is not None:
        if skip_wall_asserts:
            print(
                f"SKIP --assert-dispatch-speedup: {cpus} CPU(s) < "
                f"{max(worker_counts)} workers (the wave barrier only "
                "costs wall time when workers actually run concurrently)"
            )
        elif (
            dispatch_speedup is None
            or dispatch_speedup < args.assert_dispatch_speedup
        ):
            print(
                f"FAIL: steal-vs-wave speedup {dispatch_speedup} below "
                f"required {args.assert_dispatch_speedup:.2f}x on the "
                "imbalanced workload",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
