"""Table 5 — effect of component partitioning (Tuffy vs Tuffy-p).

The paper's Table 5 gives, per dataset: the number of MRF components, RAM of
Tuffy vs Tuffy-p and the final costs after an equal step budget.  On the
fragmented datasets (IE: 5341 components, RC: 489) the component-aware
search reaches substantially lower cost (1635 vs 1933 and 1281 vs 1943),
while on the single-component datasets (LP, ER) the two are identical.

Expected shape here: comparable costs on the single-component LP and ER
(where partitioning has nothing to split), component-aware no worse — and
typically better — on IE and RC, and RAM(Tuffy) <= RAM(Tuffy-p).
"""

from benchmarks.harness import DATASETS, default_config, emit, fresh_dataset, render_table
from repro.core import TuffyEngine


def measure_dataset(name):
    budget = 15_000
    partitioned = TuffyEngine(
        fresh_dataset(name).program, default_config(max_flips=budget, use_partitioning=True)
    ).run_map()
    monolithic = TuffyEngine(
        fresh_dataset(name).program, default_config(max_flips=budget, use_partitioning=False)
    ).run_map()
    return (
        name,
        partitioned.component_count,
        monolithic.peak_memory_bytes / 1024.0,
        partitioned.peak_memory_bytes / 1024.0,
        monolithic.cost,
        partitioned.cost,
    )


def collect_rows():
    return [measure_dataset(name) for name in DATASETS]


def test_table5_partitioning_effect(benchmark):
    results = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    rows = [
        (name, components, round(ram_p, 1), round(ram, 1), round(cost_p, 1), round(cost, 1))
        for name, components, ram_p, ram, cost_p, cost in results
    ]
    emit(
        "table5_partitioning",
        render_table(
            "Table 5 — Tuffy (partitioning) vs Tuffy-p (no partitioning)",
            ["dataset", "#components", "Tuffy-p RAM (KB)", "Tuffy RAM (KB)", "Tuffy-p cost", "Tuffy cost"],
            rows,
        ),
    )
    by_name = {row[0]: row for row in results}
    for name, components, ram_p, ram, cost_p, cost in results:
        assert ram <= ram_p + 1e-9
        if components > 1:
            # Component-aware search must not lose on fragmented MRFs.
            assert cost <= cost_p + 1e-9
    # The fragmented datasets benefit; the single-component ones cannot.
    assert by_name["RC"][1] > 1 and by_name["IE"][1] > 1
    assert by_name["LP"][1] == 1 and by_name["ER"][1] == 1
