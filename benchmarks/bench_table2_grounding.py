"""Table 2 — grounding time, Alchemy (top-down) vs Tuffy (bottom-up).

The paper reports grounding times of 48/13/3913/23891 seconds for Alchemy
against 6/13/40/106 seconds for Tuffy on LP/IE/RC/ER: bottom-up grounding in
the RDBMS wins by up to a factor of 225, with the gap largest on the
join-heavy datasets (RC, ER).  This benchmark reruns both grounding
strategies on the generated workloads and reports wall-clock seconds plus
the speed-up factor; the expected shape is Tuffy >= Alchemy everywhere, and
a clearly larger factor on RC/ER than on IE.

The bottom-up grounder additionally runs on each requested *execution
backend* of the relational engine (``--backend``): ``row`` is the
tuple-at-a-time iterator engine, ``columnar`` the numpy batch engine
(results are bit-identical; the benchmark asserts it).  ``--scale``
rescales the generated datasets — the columnar engine's lead grows with
table size (see ``COLUMNAR_AUTO_MIN_ROWS``).

Usage::

    python benchmarks/bench_table2_grounding.py                     # full run
    python benchmarks/bench_table2_grounding.py --quick             # scripts/check.sh
    python benchmarks/bench_table2_grounding.py --backend columnar --scale 3
    python benchmarks/bench_table2_grounding.py --backend columnar --assert-speedup 2
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_ROOT, os.path.join(_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.grounding.bottom_up import BottomUpGrounder
from repro.grounding.top_down import TopDownGrounder
from repro.rdbms.column_batch import NUMPY_AVAILABLE


def _grounding_fingerprint(result):
    """A cheap identity of the ground *problem*, comparable across strategies.

    Statistics like satisfied-by-evidence counts legitimately differ between
    top-down (which enumerates satisfied bindings) and bottom-up (which
    prunes them inside the SQL), so only the resulting clause set is
    fingerprinted here; the execution backends are additionally held to
    bit-identical statistics by the grounding parity suite.
    """
    return (
        result.ground_clause_count,
        result.clauses.total_literals(),
        round(sum(abs(clause.weight) for clause in result.clauses if not clause.is_hard), 6),
    )


def ground_dataset(name, backends, scale=1.0, with_top_down=True, repeats=1):
    from benchmarks.harness import fresh_dataset

    def run(make_grounder):
        best_seconds = None
        result = None
        for _ in range(repeats):
            dataset = fresh_dataset(name, scale)
            clauses = dataset.program.clauses()
            atoms = dataset.program.build_atom_registry()
            grounder = make_grounder()
            started = time.perf_counter()
            result = grounder.ground(clauses, atoms)
            elapsed = time.perf_counter() - started
            best_seconds = elapsed if best_seconds is None else min(best_seconds, elapsed)
        return result, best_seconds

    timings = {}
    fingerprints = {}
    if with_top_down:
        result, seconds = run(TopDownGrounder)
        timings["top-down"] = seconds
        fingerprints["top-down"] = _grounding_fingerprint(result)
    clause_count = None
    for backend in backends:
        result, seconds = run(lambda: BottomUpGrounder(execution_backend=backend))
        timings[backend] = seconds
        fingerprints[backend] = _grounding_fingerprint(result)
        clause_count = result.ground_clause_count
    # Every strategy and backend must ground to the same problem.
    distinct = set(fingerprints.values())
    assert len(distinct) == 1, (name, fingerprints)
    return timings, clause_count


def collect_rows(backends, scale=1.0, with_top_down=True, datasets=None, repeats=1):
    from benchmarks.harness import DATASETS

    rows = []
    for name in datasets or DATASETS:
        timings, clause_count = ground_dataset(
            name, backends, scale=scale, with_top_down=with_top_down, repeats=repeats
        )
        rows.append((name, timings, clause_count))
    return rows


def render(rows, backends, with_top_down, scale):
    from benchmarks.harness import render_table

    headers = ["dataset"]
    if with_top_down:
        headers.append("Alchemy (top-down)")
    headers.extend(f"Tuffy ({backend})" for backend in backends)
    if with_top_down:
        headers.append("speed-up vs Alchemy")
    if "row" in backends and "columnar" in backends:
        headers.append("columnar vs row")
    headers.append("#ground clauses")

    table_rows = []
    for name, timings, clause_count in rows:
        cells = [name]
        if with_top_down:
            cells.append(round(timings["top-down"], 3))
        for backend in backends:
            cells.append(round(timings[backend], 3))
        if with_top_down:
            best_bottom_up = min(timings[backend] for backend in backends)
            cells.append(round(timings["top-down"] / max(best_bottom_up, 1e-9), 1))
        if "row" in backends and "columnar" in backends:
            cells.append(
                f"{timings['row'] / max(timings['columnar'], 1e-9):.2f}x"
            )
        cells.append(clause_count)
        table_rows.append(tuple(cells))
    title = "Table 2 — grounding time (seconds, wall clock)"
    if scale != 1.0:
        title += f" [dataset scale x{scale:g}]"
    return render_table(title, headers, table_rows)


def test_table2_grounding_time(benchmark):
    """pytest-benchmark entry point: the paper's Table 2 shape."""
    from benchmarks.harness import emit

    backends = ["row", "columnar"] if NUMPY_AVAILABLE else ["row"]
    rows = benchmark.pedantic(
        lambda: collect_rows(backends), rounds=1, iterations=1
    )
    emit("table2_grounding", render(rows, backends, with_top_down=True, scale=1.0))
    speedups = {
        name: timings["top-down"] / max(min(timings[b] for b in backends), 1e-9)
        for name, timings, _ in rows
    }
    # Bottom-up grounding must never lose, and must win clearly on the
    # join-heavy datasets (the paper's RC and ER columns).
    assert all(speedup >= 1.0 for speedup in speedups.values())
    assert speedups["ER"] > 2.0 or speedups["RC"] > 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced datasets (LP, RC) at half scale (for scripts/check.sh)",
    )
    parser.add_argument(
        "--backend",
        choices=("row", "columnar", "both"),
        default="both",
        help="bottom-up execution backend(s) to measure; 'columnar' also "
        "times the row engine so the speedup can be reported (and exits "
        "with a skip message when numpy is unavailable)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset generator scale factor"
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="timing repeats per grounder (best-of)"
    )
    parser.add_argument(
        "--no-top-down",
        action="store_true",
        help="skip the Alchemy-style top-down baseline",
    )
    parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated workload subset (default: LP,IE,RC,ER; "
        "ER grows very fast with --scale)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless the columnar backend is at least X times "
        "faster than the row engine on some dataset",
    )
    from benchmarks.harness import add_json_out_argument

    add_json_out_argument(parser)
    args = parser.parse_args(argv)

    if args.backend == "row" and args.assert_speedup is not None:
        parser.error("--assert-speedup needs the columnar backend (use --backend columnar)")
    if args.backend in ("columnar", "both") and not NUMPY_AVAILABLE:
        if args.backend == "columnar":
            print("SKIP: columnar execution backend requested but numpy is unavailable")
            return 0
        if args.assert_speedup is not None:
            print("SKIP: --assert-speedup needs the columnar backend but numpy is unavailable")
            return 0
        print("numpy unavailable: measuring the row backend only")
        backends = ["row"]
    elif args.backend == "row":
        backends = ["row"]
    else:
        backends = ["row", "columnar"]

    if args.datasets:
        datasets = tuple(token.strip().upper() for token in args.datasets.split(","))
    elif args.quick:
        datasets = ("LP", "RC")
    else:
        datasets = None
    scale = (0.5 if args.quick else 1.0) * args.scale
    with_top_down = not args.no_top_down

    rows = collect_rows(
        backends,
        scale=scale,
        with_top_down=with_top_down,
        datasets=datasets,
        repeats=args.repeats,
    )
    table = render(rows, backends, with_top_down, scale)

    from benchmarks.harness import emit

    if args.quick:
        artifact = "table2_grounding_quick"
    elif args.backend == "both" and scale == 1.0:
        artifact = "table2_grounding"
    else:
        artifact = "table2_grounding_backends"
    emit(artifact, table)
    if args.json_out:
        from benchmarks.harness import emit_json

        emit_json(
            "table2_grounding",
            [
                {"dataset": name, "ground_clauses": clause_count, **timings}
                for name, timings, clause_count in rows
            ],
            path=args.json_out,
            metadata={
                "quick": args.quick,
                "backends": backends,
                "scale": scale,
                "with_top_down": with_top_down,
            },
        )

    if len(backends) == 2:
        best = max(
            timings["row"] / max(timings["columnar"], 1e-9) for _, timings, _ in rows
        )
        print(f"\nbest columnar-vs-row grounding speedup: {best:.2f}x "
              "(groundings identical across backends)")
        if args.assert_speedup is not None and best < args.assert_speedup:
            print(
                f"FAIL: columnar speedup below required {args.assert_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
