"""Table 2 — grounding time, Alchemy (top-down) vs Tuffy (bottom-up).

The paper reports grounding times of 48/13/3913/23891 seconds for Alchemy
against 6/13/40/106 seconds for Tuffy on LP/IE/RC/ER: bottom-up grounding in
the RDBMS wins by up to a factor of 225, with the gap largest on the
join-heavy datasets (RC, ER).  This benchmark reruns both grounding
strategies on the generated workloads and reports wall-clock seconds plus
the speed-up factor; the expected shape is Tuffy >= Alchemy everywhere, and
a clearly larger factor on RC/ER than on IE.
"""

from benchmarks.harness import DATASETS, emit, fresh_dataset, render_table
from repro.grounding.bottom_up import BottomUpGrounder
from repro.grounding.top_down import TopDownGrounder


def ground_dataset(name):
    dataset = fresh_dataset(name)
    clauses = dataset.program.clauses()
    top_down = TopDownGrounder().ground(clauses, dataset.program.build_atom_registry())
    bottom_up = BottomUpGrounder().ground(clauses, dataset.program.build_atom_registry())
    assert top_down.ground_clause_count == bottom_up.ground_clause_count
    return name, top_down.seconds, bottom_up.seconds, top_down.ground_clause_count


def collect_rows():
    return [ground_dataset(name) for name in DATASETS]


def test_table2_grounding_time(benchmark):
    results = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    rows = [
        (
            name,
            round(alchemy_seconds, 3),
            round(tuffy_seconds, 3),
            round(alchemy_seconds / max(tuffy_seconds, 1e-9), 1),
            clauses,
        )
        for name, alchemy_seconds, tuffy_seconds, clauses in results
    ]
    emit(
        "table2_grounding",
        render_table(
            "Table 2 — grounding time (seconds, wall clock)",
            ["dataset", "Alchemy (top-down)", "Tuffy (bottom-up)", "speed-up", "#ground clauses"],
            rows,
        ),
    )
    speedups = {row[0]: row[3] for row in rows}
    # Bottom-up grounding must never lose, and must win clearly on the
    # join-heavy datasets (the paper's RC and ER columns).
    assert all(speedup >= 1.0 for speedup in speedups.values())
    assert speedups["ER"] > 2.0 or speedups["RC"] > 2.0
