"""Table 7 — data loading and parallelism.

The paper compares three execution modes on IE and RC: Tuffy-batch (one
component loaded at a time, no parallelism), Tuffy (batch loading via
First-Fit-Decreasing, no parallelism) and Tuffy+parallelism (batch loading
plus 8 worker threads).  Batch loading removes most of the per-component
I/O (448 s -> 117 s on IE) and parallelism roughly divides the remaining
search time by the worker count (-> 28 s).

Here the loading cost is the simulated I/O of scanning the persisted clause
table once per batch (vs once per component) and the search cost is the
simulated per-flip cost, scheduled over 8 simulated workers.  Expected
shape: batch < one-by-one, and parallel < batch.
"""

from benchmarks.harness import default_config, emit, fresh_dataset, render_table
from repro.core import TuffyEngine
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.walksat import WalkSATOptions
from repro.mrf.components import connected_components
from repro.partitioning.loader import BatchLoader
from repro.rdbms.database import Database
from repro.utils.rng import RandomSource

WORKERS = 8
FLIP_BUDGET = 20_000


def measure_dataset(name):
    dataset = fresh_dataset(name)
    engine = TuffyEngine(dataset.program, default_config(max_flips=10))
    grounding = engine.ground()
    components = connected_components(engine.build_mrf()).components

    def loading_seconds(batched):
        database = Database(page_size=32, buffer_pool_pages=1)
        grounding.clauses.store_in_database(database)
        loader = BatchLoader(database, memory_budget=4000.0)
        return loader.load(components, batched=batched).simulated_seconds

    one_by_one_load = loading_seconds(batched=False)
    batched_load = loading_seconds(batched=True)

    search = ComponentAwareWalkSAT(
        WalkSATOptions(max_flips=FLIP_BUDGET), RandomSource(0), workers=1
    ).run(components, total_flips=FLIP_BUDGET)
    sequential_search = search.simulated_seconds
    parallel_search = ComponentAwareWalkSAT(
        WalkSATOptions(max_flips=FLIP_BUDGET), RandomSource(0), workers=WORKERS
    ).run(components, total_flips=FLIP_BUDGET).parallel_simulated_seconds

    return (
        name,
        one_by_one_load + sequential_search,   # Tuffy-batch (misnomer in the paper: per-component loading)
        batched_load + sequential_search,      # Tuffy
        batched_load + parallel_search,        # Tuffy + parallelism
    )


def collect_rows():
    return [measure_dataset(name) for name in ("IE", "RC")]


def test_table7_loading_and_parallelism(benchmark):
    results = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    rows = [
        (name, round(per_component, 4), round(batched, 4), round(parallel, 4))
        for name, per_component, batched, parallel in results
    ]
    emit(
        "table7_loading_parallelism",
        render_table(
            "Table 7 — execution time by loading/parallelism mode (simulated seconds)",
            ["dataset", "Tuffy-batch (per-component load)", "Tuffy (batch load)", f"Tuffy + {WORKERS} workers"],
            rows,
        ),
    )
    for name, per_component, batched, parallel in results:
        assert batched < per_component
        assert parallel < batched
