"""Figure 6 — Tuffy under different memory budgets (further MRF splitting).

When a memory budget is set below the size of the largest component, the
greedy partitioner (Algorithm 3) splits components and the Gauss-Seidel
scheme searches the parts.  The paper's Figure 6 shows three regimes:

* RC: splitting is nearly free (sparse graph, tiny cut) and even improves
  quality;
* LP: a coarse split is fine, finer splits start to hurt;
* ER: the graph is dense, every split cuts a large fraction of the clauses,
  and convergence degrades — partitioning buys memory at the cost of
  quality.

Expected shape here: the peak search memory decreases monotonically with
the budget on every dataset, and on ER the smallest budget cuts a much
larger fraction of clauses than on RC (the structural cause of the paper's
quality loss).
"""

from benchmarks.harness import default_config, emit, fresh_dataset, render_table
from repro.core import TuffyEngine
from repro.mrf.components import connected_components
from repro.partitioning.greedy import GreedyPartitioner

FLIP_BUDGET = 15_000
# Budgets expressed as fractions of the dataset's largest-component size.
BUDGET_FRACTIONS = (1.0, 0.5, 0.25)


def run_dataset(name):
    probe = TuffyEngine(fresh_dataset(name).program, default_config(max_flips=10))
    probe.ground()
    largest = connected_components(probe.build_mrf()).largest()
    largest_size = largest.size() if largest is not None else 1
    bytes_per_unit = 64

    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget_units = max(int(largest_size * fraction), 8)
        budget_bytes = budget_units * bytes_per_unit
        engine = TuffyEngine(
            fresh_dataset(name).program,
            default_config(
                max_flips=FLIP_BUDGET,
                memory_budget_bytes=budget_bytes,
                use_partitioning=True,
            ),
        )
        result = engine.run_map()
        partitioning = GreedyPartitioner(budget_units).partition(largest)
        cut_fraction = partitioning.cut_size / max(largest.clause_count, 1)
        rows.append(
            (
                name,
                f"{fraction:.2f} x largest",
                round(budget_bytes / 1024.0, 1),
                round(result.peak_memory_bytes / 1024.0, 1),
                round(result.cost, 1),
                round(cut_fraction, 3),
            )
        )
    return rows


def collect():
    rows = []
    for name in ("RC", "LP", "ER"):
        rows.extend(run_dataset(name))
    return rows


def test_figure6_memory_budgets(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        "fig6_memory_budgets",
        render_table(
            "Figure 6 — effect of the memory budget (further MRF splitting)",
            ["dataset", "budget", "budget (KB)", "peak search RAM (KB)", "final cost", "cut fraction of largest comp."],
            rows,
        ),
    )
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row[0], []).append(row)
    for name, dataset_rows in by_dataset.items():
        rams = [row[3] for row in dataset_rows]
        # Peak RAM must not increase as the budget shrinks.
        assert all(later <= earlier + 1e-6 for earlier, later in zip(rams, rams[1:]))
    # ER's dense graph pays a much larger cut than RC's sparse one at the
    # smallest budget — the cause of the paper's quality degradation on ER.
    rc_cut = by_dataset["RC"][-1][5]
    er_cut = by_dataset["ER"][-1][5]
    assert er_cut > rc_cut
