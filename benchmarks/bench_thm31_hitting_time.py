"""Theorem 3.1 — empirical hitting times of component-blind WalkSAT.

Theorem 3.1 predicts that on an MRF with N independent components (Example
1), component-blind WalkSAT needs an expected number of steps that grows
exponentially in N to reach the optimum, whereas component-aware WalkSAT
needs only O(N) steps (at most ~4 per component).

This benchmark estimates the expected hitting time empirically for a sweep
of N and reports the growth factors.  Expected shape: the blind hitting
time grows much faster than linearly (each doubling of N multiplies it by
well over 2), while the per-component hitting time stays constant.
"""

from benchmarks.harness import emit, render_table
from repro.datasets.example1 import example1_mrf, example1_optimal_cost
from repro.inference.walksat import expected_hitting_time

COMPONENT_COUNTS = (2, 4, 8, 12)
RUNS = 8
MAX_FLIPS = 60_000


def measure():
    rows = []
    for n_components in COMPONENT_COUNTS:
        blind = expected_hitting_time(
            example1_mrf(n_components),
            example1_optimal_cost(n_components),
            runs=RUNS,
            max_flips=MAX_FLIPS,
            seed=7,
        )
        per_component = expected_hitting_time(
            example1_mrf(1), 1.0, runs=RUNS * 4, max_flips=1_000, seed=11 + n_components
        )
        rows.append((n_components, blind, per_component, per_component * n_components))
    return rows


def test_theorem31_hitting_time_gap(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "thm31_hitting_time",
        render_table(
            "Theorem 3.1 — expected hitting time to the optimum (flips)",
            ["#components N", "blind WalkSAT", "aware (per component)", "aware (total, ~4N bound)"],
            [
                (n, round(blind, 1), round(per_component, 2), round(total, 1))
                for n, blind, per_component, total in rows
            ],
        ),
    )
    blind_times = [blind for _, blind, _, _ in rows]
    # Exponential-looking growth: each step of the sweep multiplies the
    # hitting time by clearly more than the component ratio.
    assert blind_times[2] > 4 * blind_times[0]
    assert blind_times[3] > blind_times[2]
    # Component-aware search stays cheap: the per-component hitting time is
    # bounded by a small constant (the paper argues <= 4).
    assert all(per_component <= 10 for _, _, per_component, _ in rows)
    # And the aware total is far below the blind total at the largest N.
    assert rows[-1][3] < rows[-1][1]
