"""Table 3 — flipping rates (WalkSAT steps per second).

The paper reports that Alchemy and Tuffy-p (both in-memory searches) flip on
the order of 10^5-10^6 atoms per second, while the RDBMS-backed Tuffy-mm
manages between 0.03 and 13 flips per second — a gap of three to five orders
of magnitude that motivates the hybrid architecture.

Here the in-memory rates are measured against the simulated clock's
per-flip cost (so they are deterministic), and Tuffy-mm is charged its
sequential clause scans plus random page accesses per flip by the same
clock.  The expected shape: both in-memory engines in the same ballpark,
Tuffy-mm at least three orders of magnitude slower.
"""

from benchmarks.harness import default_config, emit, fresh_dataset, render_table
from repro.core import TuffyEngine
from repro.inference.rdbms_walksat import RDBMSWalkSAT
from repro.inference.walksat import WalkSATOptions
from repro.rdbms.database import Database
from repro.utils.clock import SimulatedClock
from repro.utils.rng import RandomSource

DATASETS = ("LP", "IE", "RC", "ER")


def measure_dataset(name):
    dataset = fresh_dataset(name)
    engine = TuffyEngine(dataset.program, default_config(max_flips=10))
    engine.ground()
    mrf = engine.build_mrf()

    from repro.inference.walksat import WalkSAT

    def memory_rate(label):
        clock = SimulatedClock()
        result = WalkSAT(WalkSATOptions(max_flips=5_000, trace_label=label), RandomSource(0), clock).run(mrf)
        return result.flips / max(clock.now(), 1e-12)

    alchemy = memory_rate("alchemy")
    tuffy_p = memory_rate("tuffy-p")

    database = Database()
    rdbms = RDBMSWalkSAT(database, WalkSATOptions(max_flips=30), RandomSource(0)).run(mrf)
    tuffy_mm = rdbms.flips / max(database.clock.now(), 1e-12)
    return name, alchemy, tuffy_mm, tuffy_p


def collect_rows():
    return [measure_dataset(name) for name in DATASETS]


def test_table3_flipping_rates(benchmark):
    results = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    rows = [
        (name, f"{alchemy:,.0f}", f"{tuffy_mm:,.1f}", f"{tuffy_p:,.0f}")
        for name, alchemy, tuffy_mm, tuffy_p in results
    ]
    emit(
        "table3_flipping_rates",
        render_table(
            "Table 3 — flipping rates (flips per simulated second)",
            ["dataset", "Alchemy", "Tuffy-mm", "Tuffy-p"],
            rows,
        ),
    )
    for name, alchemy, tuffy_mm, tuffy_p in results:
        assert alchemy / tuffy_mm > 1e3
        assert tuffy_p / tuffy_mm > 1e3
