"""Search-kernel microbenchmark: flips per second, flat-array vs seed kernel.

Runs the *same* WalkSAT search (same seed, same RNG stream) over the
flat-array :class:`SearchState` and over the retained seed kernel
(:class:`ReferenceSearchState`), on synthetic workloads, and reports
wall-clock flips/sec plus the speedup.  Because the two kernels are
semantically identical (see ``tests/test_search_kernel_parity.py``), both
runs perform exactly the same flips and reach exactly the same costs — the
benchmark asserts that parity on every workload, so the speedup is a pure
kernel measurement, not a search-behaviour change.

Workloads:

* ``example1-N`` — the paper's Example 1 (N two-atom components): tiny
  clauses, low degree; stresses per-step overhead.
* ``RC`` / ``LP`` — the synthetic Relational Classification and Link
  Prediction datasets ground to real MRFs (RC fragments into many
  components, LP is one dense component); stresses adjacency traversal.

Usage::

    python benchmarks/bench_search_kernel.py            # full run
    python benchmarks/bench_search_kernel.py --quick    # for scripts/check.sh
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_ROOT, os.path.join(_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.datasets.example1 import example1_mrf
from repro.inference.reference_kernel import ReferenceSearchState, ReferenceWalkSAT
from repro.inference.state import SearchState
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.utils.rng import RandomSource

BENCH_SEED = 0


def dataset_mrf(name: str, factor: float = 1.0):
    """Ground one of the synthetic datasets to an MRF (lazy heavy imports)."""
    from benchmarks.harness import default_config, fresh_dataset
    from repro.core import TuffyEngine

    dataset = fresh_dataset(name, factor)
    engine = TuffyEngine(dataset.program, default_config(max_flips=10))
    engine.ground()
    return engine.build_mrf()


def measure(make_searcher, make_state, mrf, flips: int, repeats: int):
    """Best-of-``repeats`` wall-clock flips/sec for one search stack.

    The seed stack is the seed driver loop over the seed state; the new
    stack is the current driver over the flat-array state — each side runs
    its own complete hot loop, exactly as it shipped.
    """
    options = WalkSATOptions(max_flips=flips, max_tries=1, noise=0.5)
    best_rate = 0.0
    result = None
    for _ in range(repeats):
        searcher = make_searcher(options, RandomSource(BENCH_SEED))
        state = make_state(mrf)
        started = time.perf_counter()
        result = searcher.run_on_state(state)
        elapsed = max(time.perf_counter() - started, 1e-9)
        best_rate = max(best_rate, result.flips / elapsed)
    return result, best_rate


def run_benchmark(quick: bool, flips: int | None, repeats: int):
    workloads = [("example1-100" if quick else "example1-300",
                  example1_mrf(100 if quick else 300))]
    if not quick:
        workloads.append(("RC", dataset_mrf("RC")))
        workloads.append(("LP", dataset_mrf("LP")))
    flip_budget = flips if flips is not None else (20_000 if quick else 100_000)

    rows = []
    worst_speedup = float("inf")
    for label, mrf in workloads:
        seed_result, seed_rate = measure(
            ReferenceWalkSAT, ReferenceSearchState, mrf, flip_budget, repeats
        )
        flat_result, flat_rate = measure(
            WalkSAT, SearchState, mrf, flip_budget, repeats
        )
        # Identical search semantics: same flips, same best cost, same seed.
        assert flat_result.flips == seed_result.flips, (label, flat_result.flips, seed_result.flips)
        assert abs(flat_result.best_cost - seed_result.best_cost) < 1e-9, label
        speedup = flat_rate / max(seed_rate, 1e-9)
        worst_speedup = min(worst_speedup, speedup)
        rows.append(
            (
                label,
                f"{mrf.atom_count}/{mrf.clause_count}",
                seed_result.flips,
                f"{seed_rate:,.0f}",
                f"{flat_rate:,.0f}",
                f"{speedup:.2f}x",
                f"{flat_result.best_cost:.4g}",
            )
        )
    return rows, worst_speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small example1-only workload, single repeat (for scripts/check.sh)",
    )
    parser.add_argument("--flips", type=int, default=None, help="flip budget per run")
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per kernel (best-of)"
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless every workload speedup is at least X",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)

    rows, worst_speedup = run_benchmark(args.quick, args.flips, repeats)

    from benchmarks.harness import emit, render_table

    table = render_table(
        "Search kernel — wall-clock flips/sec (seed kernel vs flat-array kernel)",
        ["workload", "atoms/clauses", "flips", "seed f/s", "flat f/s", "speedup", "cost"],
        rows,
    )
    emit("search_kernel", table)
    print(f"\nworst-case speedup: {worst_speedup:.2f}x (costs identical per seed)")
    if args.assert_speedup is not None and worst_speedup < args.assert_speedup:
        print(f"FAIL: speedup below required {args.assert_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
