"""Search-kernel microbenchmark: flips per second across kernel backends.

Runs the *same* WalkSAT search (same seed, same RNG stream) over the seed
kernel (:class:`ReferenceSearchState`) and each requested kernel backend —
the flat-array :class:`SearchState` and the numpy-vectorized
:class:`VectorSearchState` — on synthetic workloads, and reports wall-clock
flips/sec plus the speedups.  Because every kernel is semantically
identical (see ``tests/test_search_kernel_parity.py``), all runs perform
exactly the same flips and reach exactly the same costs — the benchmark
asserts that parity on every workload, so the speedups are pure kernel
measurements, not search-behaviour changes.

Workloads:

* ``example1-N`` — the paper's Example 1 (N two-atom components): tiny
  clauses, low degree; stresses per-step overhead.  Here the vectorized
  backend's batched greedy stays disabled (every clause is far below the
  batching threshold) and it should match the flat kernel.
* ``RC`` / ``LP`` — the synthetic Relational Classification and Link
  Prediction datasets ground to real MRFs (RC fragments into many
  components, LP is one dense component); stresses adjacency traversal.
* ``dense`` — a synthetic high-degree MRF (5-atom clauses, average atom
  degree ~300) whose greedy batches are far above the threshold; this is
  where the vectorized backend's shared adjacency walk pays.

Backends (``--backend``):

* ``flat`` — the PR-1 flat-array kernel only.
* ``vectorized`` — the numpy backend only (exits with a skip message when
  numpy is unavailable).
* ``both`` (default) — flat and, when numpy is available, vectorized.

Usage::

    python benchmarks/bench_search_kernel.py                    # full run
    python benchmarks/bench_search_kernel.py --quick            # scripts/check.sh
    python benchmarks/bench_search_kernel.py --backend flat
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_ROOT, os.path.join(_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.datasets.example1 import example1_mrf
from repro.grounding.clause_table import GroundClause
from repro.inference.reference_kernel import ReferenceSearchState, ReferenceWalkSAT
from repro.inference.state import SearchState
from repro.inference.vector_kernel import NUMPY_AVAILABLE, VectorSearchState
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource

BENCH_SEED = 0

BACKEND_STATES = {
    "flat": SearchState,
    "vectorized": VectorSearchState,
}


def dataset_mrf(name: str, factor: float = 1.0):
    """Ground one of the synthetic datasets to an MRF (lazy heavy imports)."""
    from benchmarks.harness import default_config, fresh_dataset
    from repro.core import TuffyEngine

    dataset = fresh_dataset(name, factor)
    engine = TuffyEngine(dataset.program, default_config(max_flips=10))
    engine.ground()
    return engine.build_mrf()


def dense_mrf(atoms: int = 120, clauses: int = 7000, size: int = 5, seed: int = 0) -> MRF:
    """A high-degree MRF whose greedy batches exceed the numpy threshold."""
    rng = RandomSource(seed)
    out = []
    for clause_id in range(1, clauses + 1):
        literals = []
        seen = set()
        while len(literals) < size:
            atom = rng.randint(1, atoms)
            if atom in seen:
                continue
            seen.add(atom)
            literals.append(atom if rng.coin() else -atom)
        out.append(GroundClause(clause_id, tuple(literals), round(rng.random() * 2, 3) + 0.1))
    return MRF.from_clauses(out, extra_atoms=range(1, atoms + 1))


def measure(make_searcher, make_state, mrf, flips: int, repeats: int):
    """Best-of-``repeats`` wall-clock flips/sec for one search stack.

    The seed stack is the seed driver loop over the seed state; each
    backend stack is the current driver over that backend's state — each
    side runs its own complete hot loop, exactly as it ships.
    """
    options = WalkSATOptions(max_flips=flips, max_tries=1, noise=0.5)
    best_rate = 0.0
    result = None
    for _ in range(repeats):
        searcher = make_searcher(options, RandomSource(BENCH_SEED))
        state = make_state(mrf)
        started = time.perf_counter()
        result = searcher.run_on_state(state)
        elapsed = max(time.perf_counter() - started, 1e-9)
        best_rate = max(best_rate, result.flips / elapsed)
    return result, best_rate


def run_benchmark(quick: bool, flips: int | None, repeats: int, backends):
    workloads = [("example1-100" if quick else "example1-300",
                  example1_mrf(100 if quick else 300), None)]
    if not quick:
        workloads.append(("RC", dataset_mrf("RC"), None))
        workloads.append(("LP", dataset_mrf("LP"), None))
        workloads.append(("dense", dense_mrf(), 4_000))
    flip_budget = flips if flips is not None else (20_000 if quick else 100_000)

    rows = []
    worst_speedup = float("inf")
    for label, mrf, budget_override in workloads:
        budget = budget_override if budget_override is not None else flip_budget
        seed_result, seed_rate = measure(
            ReferenceWalkSAT, ReferenceSearchState, mrf, budget, repeats
        )
        backend_rates = {}
        for backend in backends:
            result, rate = measure(
                WalkSAT, BACKEND_STATES[backend], mrf, budget, repeats
            )
            # Identical search semantics: same flips, same best cost, same
            # seed, on every backend.
            assert result.flips == seed_result.flips, (
                label, backend, result.flips, seed_result.flips
            )
            assert abs(result.best_cost - seed_result.best_cost) < 1e-9, (label, backend)
            backend_rates[backend] = rate
            worst_speedup = min(worst_speedup, rate / max(seed_rate, 1e-9))
        row = [
            label,
            f"{mrf.atom_count}/{mrf.clause_count}",
            seed_result.flips,
            f"{seed_rate:,.0f}",
        ]
        for backend in backends:
            rate = backend_rates[backend]
            row.append(f"{rate:,.0f}")
            row.append(f"{rate / max(seed_rate, 1e-9):.2f}x")
        if len(backends) == 2:
            row.append(
                f"{backend_rates['vectorized'] / max(backend_rates['flat'], 1e-9):.2f}x"
            )
        rows.append(tuple(row))
    return rows, worst_speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small example1-only workload, reduced repeats (for scripts/check.sh)",
    )
    parser.add_argument(
        "--backend",
        choices=("flat", "vectorized", "both"),
        default="both",
        help="which kernel backend(s) to measure against the seed kernel",
    )
    parser.add_argument("--flips", type=int, default=None, help="flip budget per run")
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per kernel (best-of)"
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless every backend's speedup over the seed "
        "kernel is at least X on every workload",
    )
    from benchmarks.harness import add_json_out_argument

    add_json_out_argument(parser)
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)

    if args.backend == "both":
        backends = ["flat"] + (["vectorized"] if NUMPY_AVAILABLE else [])
        if not NUMPY_AVAILABLE:
            print("numpy unavailable: measuring the flat backend only")
    elif args.backend == "vectorized" and not NUMPY_AVAILABLE:
        print("SKIP: vectorized backend requested but numpy is unavailable")
        return 0
    else:
        backends = [args.backend]

    rows, worst_speedup = run_benchmark(args.quick, args.flips, repeats, backends)

    from benchmarks.harness import emit, render_table

    header = ["workload", "atoms/clauses", "flips", "seed f/s"]
    for backend in backends:
        header.append(f"{backend} f/s")
        header.append("vs seed")
    if len(backends) == 2:
        header.append("vec/flat")
    table = render_table(
        "Search kernel — wall-clock flips/sec (seed kernel vs kernel backends)",
        header,
        rows,
    )
    emit("search_kernel", table)
    if args.json_out:
        from benchmarks.harness import emit_json

        # Unique keys per backend (the display header repeats "vs seed").
        json_header = ["workload", "atoms/clauses", "flips", "seed f/s"]
        for backend in backends:
            json_header.append(f"{backend} f/s")
            json_header.append(f"{backend} vs seed")
        if len(backends) == 2:
            json_header.append("vec/flat")
        emit_json(
            "search_kernel",
            [dict(zip(json_header, row)) for row in rows],
            path=args.json_out,
            metadata={
                "quick": args.quick,
                "backends": backends,
                "worst_speedup_vs_seed": worst_speedup,
            },
        )
    print(f"\nworst-case speedup vs seed: {worst_speedup:.2f}x (costs identical per seed)")
    if args.assert_speedup is not None and worst_speedup < args.assert_speedup:
        print(f"FAIL: speedup below required {args.assert_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
