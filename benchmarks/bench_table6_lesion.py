"""Table 6 — lesion study of the grounding optimizer.

The paper compares grounding time under three planner settings: the full
optimizer, a fixed (declaration-order) join order, and nested-loop joins
only.  The finding is that the choice of *join algorithm* is what matters:
fixed join order costs little, but disabling hash/merge joins blows
grounding time up by orders of magnitude (>36,000 s on RC).

The same three settings are exposed by this library's optimizer.  Expected
shape: "full" and "fixed join order" within a small factor of each other,
"nested loop only" clearly slower on every join-heavy dataset.  ER and RC
are run at a reduced scale so the nested-loop column stays tractable.
"""

from benchmarks.harness import emit, fresh_dataset, render_table
from repro.grounding.bottom_up import BottomUpGrounder
from repro.rdbms.optimizer import OptimizerOptions

SETTINGS = (
    ("full optimizer", OptimizerOptions.full_optimizer()),
    ("fixed join order", OptimizerOptions.fixed_join_order()),
    ("nested loop only", OptimizerOptions.nested_loop_only()),
)

# Nested-loop grounding is quadratic/cubic in the relation sizes, so the two
# largest workloads run at a reduced generator scale (as noted in the output).
SCALES = {"LP": 1.0, "IE": 1.0, "RC": 0.6, "ER": 0.6}


def measure_dataset(name):
    timings = {}
    clause_counts = set()
    for label, options in SETTINGS:
        dataset = fresh_dataset(name, factor=SCALES[name])
        grounder = BottomUpGrounder(optimizer_options=options)
        result = grounder.ground(
            dataset.program.clauses(), dataset.program.build_atom_registry()
        )
        timings[label] = result.seconds
        clause_counts.add(result.ground_clause_count)
    assert len(clause_counts) == 1, "lesion settings must not change the result"
    return name, timings


def collect_rows():
    return [measure_dataset(name) for name in ("LP", "IE", "RC", "ER")]


def test_table6_grounding_lesion_study(benchmark):
    results = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    rows = []
    for name, timings in results:
        rows.append(
            (
                f"{name} (x{SCALES[name]:g})",
                round(timings["full optimizer"], 3),
                round(timings["fixed join order"], 3),
                round(timings["nested loop only"], 3),
                round(timings["nested loop only"] / max(timings["full optimizer"], 1e-9), 1),
            )
        )
    emit(
        "table6_lesion",
        render_table(
            "Table 6 — grounding time by optimizer setting (seconds)",
            ["dataset", "full optimizer", "fixed join order", "nested loop only", "NL / full"],
            rows,
        ),
    )
    for name, timings in results:
        # The join-algorithm lesion must dominate the join-order lesion.
        assert timings["nested loop only"] > timings["full optimizer"]
    slowdowns = [t["nested loop only"] / max(t["full optimizer"], 1e-9) for _, t in results]
    assert max(slowdowns) > 5.0
