"""Ablation — grounding design choices.

DESIGN.md calls out three grounding-side design choices beyond the headline
lesion study: predicate pushdown in the optimizer, duplicate-clause merging
in the clause store, and the lazy active closure (Appendix A.3).  This
ablation measures each on the RC workload:

* pushdown off: same results, more rows flowing through the joins;
* duplicate merging off: more (redundant) ground clauses, same cost
  function;
* lazy closure on: never more clauses than the full grounding.
"""

from benchmarks.harness import emit, fresh_dataset, render_table
from repro.grounding.bottom_up import BottomUpGrounder
from repro.grounding.lazy import active_closure
from repro.rdbms.optimizer import OptimizerOptions


def measure():
    rows = []

    # Predicate pushdown on/off.
    for label, options in (
        ("pushdown on", OptimizerOptions(enable_predicate_pushdown=True)),
        ("pushdown off", OptimizerOptions(enable_predicate_pushdown=False)),
    ):
        dataset = fresh_dataset("RC")
        result = BottomUpGrounder(optimizer_options=options).ground(
            dataset.program.clauses(), dataset.program.build_atom_registry()
        )
        rows.append((label, result.ground_clause_count, round(result.seconds, 3)))

    # Duplicate merging on/off.
    for label, merge in (("merge duplicates", True), ("keep duplicates", False)):
        dataset = fresh_dataset("RC")
        result = BottomUpGrounder(merge_duplicates=merge).ground(
            dataset.program.clauses(), dataset.program.build_atom_registry()
        )
        rows.append((label, result.ground_clause_count, round(result.seconds, 3)))

    # Lazy closure.
    dataset = fresh_dataset("RC")
    full = BottomUpGrounder().ground(
        dataset.program.clauses(), dataset.program.build_atom_registry()
    )
    closure = active_closure(full.clauses)
    rows.append(("full grounding", len(full.clauses), round(full.seconds, 3)))
    rows.append(("active closure", len(closure.clauses), ""))
    return rows


def test_ablation_grounding_choices(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_grounding",
        render_table(
            "Ablation — grounding design choices (RC)",
            ["setting", "#ground clauses", "seconds"],
            rows,
        ),
    )
    by_label = {row[0]: row for row in rows}
    assert by_label["pushdown on"][1] == by_label["pushdown off"][1]
    assert by_label["keep duplicates"][1] >= by_label["merge duplicates"][1]
    assert by_label["active closure"][1] <= by_label["full grounding"][1]
