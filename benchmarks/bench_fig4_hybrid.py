"""Figure 4 — Alchemy vs Tuffy-p vs Tuffy-mm on LP and RC.

This figure isolates the hybrid-architecture claim: with partitioning turned
off, Tuffy-p (in-memory search after RDBMS grounding) reaches its best
solution orders of magnitude faster than Tuffy-mm (search executed against
the storage layer), because the latter pays page I/O for every step.

Expected shape: at the moment Tuffy-mm has executed its (small) flip budget,
its best cost is still far above the cost Tuffy-p reached within the same
simulated time; Tuffy-p and Alchemy are comparable during the search phase
(they run the same algorithm in memory), differing mainly in grounding
start time.
"""

from benchmarks.harness import default_config, emit, fresh_dataset, render_series, render_table
from repro.baselines.alchemy import AlchemyEngine
from repro.core import TuffyEngine
from repro.inference.rdbms_walksat import RDBMSWalkSAT
from repro.inference.walksat import WalkSATOptions
from repro.rdbms.database import Database
from repro.utils.rng import RandomSource

FLIP_BUDGET = 20_000
RDBMS_FLIPS = 60


def run_dataset(name):
    config = default_config(max_flips=FLIP_BUDGET, use_partitioning=False)
    tuffy_p_engine = TuffyEngine(fresh_dataset(name).program, config)
    tuffy_p = tuffy_p_engine.run_map()

    alchemy = AlchemyEngine(fresh_dataset(name).program, config).run_map()

    database = Database()
    tuffy_mm = RDBMSWalkSAT(
        database, WalkSATOptions(max_flips=RDBMS_FLIPS, trace_label="tuffy-mm"), RandomSource(0)
    ).run(tuffy_p_engine.build_mrf())
    tuffy_mm_time = database.clock.now()
    return name, tuffy_p, alchemy, tuffy_mm, tuffy_mm_time


def collect():
    return [run_dataset(name) for name in ("LP", "RC")]


def test_figure4_hybrid_architecture(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    sections = []
    rows = []
    for name, tuffy_p, alchemy, tuffy_mm, tuffy_mm_time in results:
        sections.append(
            render_series(
                f"Figure 4 ({name}) — best cost over time (search phase)",
                {
                    "Tuffy-p": tuffy_p.trace,
                    "Alchemy": alchemy.trace,
                    "Tuffy-mm": tuffy_mm.trace,
                },
            )
        )
        cost_of_tuffy_p_at_mm_time = tuffy_p.trace.cost_at(
            tuffy_p.trace.grounding_seconds + tuffy_mm_time
        )
        rows.append(
            (
                name,
                round(tuffy_p.cost, 1),
                round(alchemy.cost, 1),
                round(tuffy_mm.best_cost, 1),
                round(tuffy_mm_time, 2),
            )
        )
        # Within the simulated time Tuffy-mm spent, the in-memory search has
        # already finished its whole budget and is at least as good.
        assert tuffy_p.cost <= tuffy_mm.best_cost + 1e-9
    sections.append(
        render_table(
            "Figure 4 summary — final costs",
            ["dataset", "Tuffy-p cost", "Alchemy cost", "Tuffy-mm cost", "Tuffy-mm simulated s"],
            rows,
        )
    )
    emit("fig4_hybrid", "\n\n".join(sections))
