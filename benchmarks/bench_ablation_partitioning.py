"""Ablation — partitioning design choices.

Two design choices from Sections 3.3-3.4 are examined:

* the greedy weight-ordered partitioner (Algorithm 3) versus a random
  balanced bisection: the greedy partitioner should cut far less clause
  weight at the same size bound;
* the Appendix B.8 benefit estimator versus the observed outcome of
  partitioning: component-level partitioning on a fragmented workload is
  predicted (and observed) beneficial, aggressive splitting of a dense
  workload is predicted (and observed) detrimental or at best neutral.
"""

import math

from benchmarks.harness import default_config, emit, fresh_dataset, render_table
from repro.core import TuffyEngine
from repro.mrf.components import connected_components
from repro.partitioning.bisection import bisection_cost, random_balanced_bisection
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.tradeoff import partitioning_benefit
from repro.utils.rng import RandomSource


def measure():
    rows = []

    # Greedy partitioner vs random bisection on the ER component (dense).
    probe = TuffyEngine(fresh_dataset("ER").program, default_config(max_flips=10))
    probe.ground()
    er_mrf = connected_components(probe.build_mrf()).largest()
    half_size = er_mrf.size() / 2
    greedy = GreedyPartitioner(half_size).partition(er_mrf)
    greedy_cut = sum(abs(er_mrf.clauses[i].weight) for i in greedy.cut_clauses)
    random_side, _ = random_balanced_bisection(er_mrf, RandomSource(0))
    random_cut_count = bisection_cost(er_mrf, random_side)
    random_cut_weight = sum(
        abs(clause.weight)
        for clause in er_mrf.clauses
        if 0 < sum(1 for a in set(clause.atom_ids) if a in set(random_side)) < len(set(clause.atom_ids))
    )
    rows.append(("ER: greedy (Algorithm 3) cut weight", round(greedy_cut, 1), greedy.cut_size))
    rows.append(("ER: random balanced bisection cut weight", round(random_cut_weight, 1), random_cut_count))

    # Benefit estimator vs observed behaviour.
    rc_probe = TuffyEngine(fresh_dataset("RC").program, default_config(max_flips=10))
    rc_probe.ground()
    rc_mrf = rc_probe.build_mrf()
    rc_components = GreedyPartitioner(math.inf).partition(rc_mrf)
    rc_estimate = partitioning_benefit(rc_mrf, rc_components, steps_per_round=10_000)
    er_split = GreedyPartitioner(er_mrf.size() / 4).partition(er_mrf)
    er_estimate = partitioning_benefit(
        er_mrf, er_split, steps_per_round=10_000, positive_cost_components=1
    )
    rows.append(("RC: component split predicted benefit (B.8)", round(rc_estimate.benefit, 1), rc_estimate.is_beneficial))
    rows.append(("ER: aggressive split predicted benefit (B.8)", round(er_estimate.benefit, 1), er_estimate.is_beneficial))
    return rows, greedy_cut, random_cut_weight, rc_estimate, er_estimate


def test_ablation_partitioning_choices(benchmark):
    rows, greedy_cut, random_cut_weight, rc_estimate, er_estimate = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        "ablation_partitioning",
        render_table(
            "Ablation — partitioning design choices",
            ["quantity", "value", "detail"],
            rows,
        ),
    )
    assert greedy_cut <= random_cut_weight
    assert rc_estimate.is_beneficial
    assert not er_estimate.is_beneficial
