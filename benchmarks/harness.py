"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
helpers here keep them uniform: dataset construction at a fixed benchmark
scale, simple aligned-text rendering of tables and time-cost series, and a
tiny cache so that several benchmarks can reuse the same generated dataset
within one pytest session.

Conventions
-----------
* Scales are chosen so the whole ``pytest benchmarks/ --benchmark-only`` run
  finishes in a few minutes on a laptop.
* "Time" columns report the deterministic simulated clock where the paper's
  claim is about architecture (I/O vs memory), and wall-clock seconds where
  the claim is about actual computation on the same machine (grounding).
* Absolute values are not expected to match the paper (different hardware,
  different data scale); the *shape* — who wins and by roughly what factor —
  is what each benchmark asserts and prints.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import InferenceConfig
from repro.datasets import Dataset, DatasetScale, load_dataset
from repro.inference.tracing import TimeCostTrace

BENCHMARK_SEED = 0
DATASETS = ("LP", "IE", "RC", "ER")

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

_dataset_cache: Dict[Tuple[str, float], Dataset] = {}


def emit(name: str, text: str) -> None:
    """Print a benchmark artifact and persist it under ``benchmarks/results``.

    pytest captures stdout by default, so each benchmark also writes its
    rendered table/series to a text file; EXPERIMENTS.md points at these.
    """
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def add_json_out_argument(parser) -> None:
    """Add the shared ``--json-out`` option to a benchmark's CLI.

    Benchmarks that accept it call :func:`emit_json` with their measured
    rows; ``scripts/check.sh`` points the flag at
    ``benchmarks/results/BENCH_<name>.json`` so the perf trajectory is
    machine-readable across PRs (see ``benchmarks/results/README.md``).
    """
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the measured results as JSON to this path",
    )


def emit_json(
    benchmark: str,
    rows: List[Dict[str, object]],
    path: Optional[str] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """Persist benchmark measurements as machine-readable JSON.

    The recorded document is ``{"benchmark", "metadata", "rows"}`` where
    ``rows`` is a list of flat name→value dicts (one per measured
    configuration).  Defaults to ``benchmarks/results/BENCH_<name>.json``
    when no path is given; returns the path written.
    """
    if path is None:
        path = os.path.join(RESULTS_DIR, f"BENCH_{benchmark}.json")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    document = {
        "benchmark": benchmark,
        "metadata": metadata or {},
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[json] wrote {path}")
    return path


def benchmark_dataset(name: str, factor: float = 1.0) -> Dataset:
    """Return (and cache) a dataset at the benchmark scale."""
    key = (name.upper(), factor)
    if key not in _dataset_cache:
        _dataset_cache[key] = load_dataset(name, DatasetScale(factor=factor, seed=BENCHMARK_SEED))
    return _dataset_cache[key]


def fresh_dataset(name: str, factor: float = 1.0) -> Dataset:
    """A non-cached dataset (for benchmarks that mutate engine state)."""
    return load_dataset(name, DatasetScale(factor=factor, seed=BENCHMARK_SEED))


def default_config(**overrides) -> InferenceConfig:
    """The configuration shared by the search benchmarks."""
    parameters = dict(seed=BENCHMARK_SEED, max_flips=20_000)
    parameters.update(overrides)
    return InferenceConfig(**parameters)


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table (the printed reproduction of a paper table)."""
    materialized = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(title: str, traces: Dict[str, TimeCostTrace], points: int = 8) -> str:
    """Render time-cost traces as a compact table of sampled points."""
    lines = [title]
    for label, trace in traces.items():
        sampled = trace.points
        if len(sampled) > points:
            step = max(len(sampled) // points, 1)
            sampled = sampled[::step] + [trace.points[-1]]
        series = ", ".join(
            f"({point.time + trace.grounding_seconds:.3g}s, {point.cost:.4g})" for point in sampled
        )
        lines.append(f"  {label:12s} {series}")
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
