"""Observability overhead — tracing must be close to free.

The obs subsystem (``repro.obs``) promises two prices:

* **NullTracer ≤ 2%**: with tracing off, the hot path still crosses the
  tracer seam (``with tracer.span(...)`` at every phase/component
  boundary), so the no-op tracer's dispatch cost is charged on every
  request.  The benchmark counts the spans a real request emits, times
  that many NullTracer enter/exits directly, and expresses the product
  as a fraction of the measured per-request seconds — a deterministic
  accounting that does not depend on run-to-run noise.
* **Full tracing ≤ 10%**: warm requests/sec on one session with
  ``tracing="on"`` (RecordingTracer + live metrics + span stitching)
  must stay within 10% of the ``tracing="off"`` rate on the same
  workload.  Span granularity is phases and components, never flips, so
  the recorded volume is a few dozen spans per request.

Bit-parity of the two modes is the parity suite's job
(``tests/test_obs_parity.py``); this benchmark prices them.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core import InferenceConfig, TuffyEngine
from repro.obs import NullTracer

BENCH_SEED = 0


def _config(tracing: str, flips: int, workers: int) -> InferenceConfig:
    return InferenceConfig(
        seed=BENCH_SEED,
        max_flips=flips,
        workers=workers,
        parallel_backend="auto",
        tracing=tracing,
    )


def measure_warm_rate(program, tracing: str, flips: int, workers: int, requests: int):
    """(warm requests/sec, spans recorded per request) for one tracing mode.

    The first request pays the cold pipeline (ground + MRF + components +
    pool launch); only the warm repeats are timed.  The best of three
    timed batches is reported so a single scheduler hiccup cannot flip
    the comparison.
    """
    with TuffyEngine(program, _config(tracing, flips, workers)) as engine:
        reference = engine.run_map()
        best_rate = 0.0
        for _batch in range(3):
            started = time.perf_counter()
            for _request in range(requests):
                result = engine.run_map()
            seconds = max(time.perf_counter() - started, 1e-9)
            best_rate = max(best_rate, requests / seconds)
        assert result.assignment == reference.assignment, (
            "warm request diverged under tracing=" + tracing
        )
        span_count = len(engine.tracer.spans()) if engine.tracer.enabled else 0
        request_count = engine.stats.requests
    spans_per_request = span_count / request_count if request_count else 0.0
    return best_rate, spans_per_request


def measure_null_span_seconds(samples: int = 200_000) -> float:
    """Seconds per NullTracer ``span`` enter/exit pair (best of three)."""
    tracer = NullTracer()
    best = float("inf")
    for _round in range(3):
        started = time.perf_counter()
        for _sample in range(samples):
            with tracer.span("x"):
                pass
        best = min(best, (time.perf_counter() - started) / samples)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload and budgets (for scripts/check.sh)",
    )
    parser.add_argument("--workers", type=int, default=2, help="pool workers")
    parser.add_argument("--flips", type=int, default=None, help="flip budget per request")
    parser.add_argument(
        "--requests", type=int, default=None, help="timed requests per batch"
    )
    parser.add_argument(
        "--assert-null-overhead",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit non-zero if the accounted NullTracer cost exceeds this "
        "fraction of a request (the check target is 0.02)",
    )
    parser.add_argument(
        "--assert-full-overhead",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit non-zero if full tracing slows warm requests/sec by more "
        "than this fraction (the check target is 0.10; skipped when the "
        "machine has fewer CPUs than workers)",
    )
    from benchmarks.harness import (
        add_json_out_argument,
        emit,
        emit_json,
        fresh_dataset,
        render_table,
    )

    add_json_out_argument(parser)
    args = parser.parse_args(argv)

    flips = args.flips if args.flips is not None else (10_000 if args.quick else 50_000)
    requests = args.requests if args.requests is not None else (4 if args.quick else 8)
    factor = 0.3 if args.quick else 1.0
    cpus = os.cpu_count() or 1

    dataset = fresh_dataset("IE", factor)
    off_rps, _ = measure_warm_rate(
        dataset.program, "off", flips, args.workers, requests
    )
    on_rps, spans_per_request = measure_warm_rate(
        dataset.program, "on", flips, args.workers, requests
    )

    # NullTracer accounting: spans/request (from the recorded run) times
    # the measured cost of one no-op span, over the off-mode request time.
    null_span_seconds = measure_null_span_seconds()
    off_request_seconds = 1.0 / off_rps
    null_fraction = (spans_per_request * null_span_seconds) / off_request_seconds
    full_fraction = max(0.0, (off_rps - on_rps) / off_rps)

    table = render_table(
        "Observability overhead — warm requests/sec on one session (IE)",
        ["tracing", "warm req/s", "spans/req", "overhead"],
        [
            ("off (NullTracer)", f"{off_rps:.2f}", 0, f"{null_fraction:.2%} (accounted)"),
            ("on (recording)", f"{on_rps:.2f}", f"{spans_per_request:.1f}", f"{full_fraction:.2%}"),
        ],
    )
    table += (
        f"\n\nNullTracer span enter/exit: {null_span_seconds * 1e9:.0f} ns"
        f"  ->  {spans_per_request:.1f} spans/req costs "
        f"{spans_per_request * null_span_seconds * 1e6:.1f} us of a "
        f"{off_request_seconds * 1e3:.1f} ms request"
    )
    emit("obs_overhead_quick" if args.quick else "obs_overhead", table)
    if args.json_out:
        emit_json(
            "obs",
            [
                {
                    "workload": "IE",
                    "mode": "off",
                    "workers": args.workers,
                    "warm_requests_per_sec": off_rps,
                    "null_span_seconds": null_span_seconds,
                    "null_overhead_fraction": null_fraction,
                },
                {
                    "workload": "IE",
                    "mode": "on",
                    "workers": args.workers,
                    "warm_requests_per_sec": on_rps,
                    "spans_per_request": spans_per_request,
                    "full_overhead_fraction": full_fraction,
                },
            ],
            path=args.json_out,
            metadata={
                "quick": args.quick,
                "cpus": cpus,
                "flips": flips,
                "requests": requests,
                "ie_factor": factor,
            },
        )

    if args.assert_null_overhead is not None:
        if null_fraction > args.assert_null_overhead:
            print(
                f"FAIL: accounted NullTracer overhead {null_fraction:.2%} exceeds "
                f"{args.assert_null_overhead:.0%}",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: NullTracer costs {null_fraction:.2%} of a warm request "
            f"(limit {args.assert_null_overhead:.0%})"
        )

    if args.assert_full_overhead is not None:
        if cpus < args.workers:
            print(
                f"SKIP --assert-full-overhead: {cpus} CPU(s) < {args.workers} workers"
            )
            return 0
        if full_fraction > args.assert_full_overhead:
            print(
                f"FAIL: full tracing slows warm requests/sec by "
                f"{full_fraction:.2%} (limit {args.assert_full_overhead:.0%})",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: full tracing costs {full_fraction:.2%} of warm throughput "
            f"(limit {args.assert_full_overhead:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
