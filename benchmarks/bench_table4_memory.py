"""Table 4 — space efficiency of Alchemy vs Tuffy-p.

The paper's Table 4 shows that Alchemy's peak RAM (411 MB - 3.5 GB) is one
to two orders of magnitude larger than both the ground clause table it
produces (0.6 - 164 MB) and Tuffy's peak RAM (8 - 184 MB): Alchemy must hold
the grounding *intermediate state* in memory, whereas Tuffy leaves it in the
RDBMS and only loads the final clause table for search.

This benchmark reproduces the comparison with the analytic memory model
(identical per-record constants for both systems).  Expected shape: the
Alchemy column dominates the Tuffy-p column on every dataset, and the clause
table is of the same order as (or smaller than) Tuffy's footprint.
"""

from benchmarks.harness import DATASETS, default_config, emit, fresh_dataset, render_table
from repro.baselines.alchemy import AlchemyEngine
from repro.core import TuffyEngine


def measure_dataset(name):
    dataset = fresh_dataset(name)
    config = default_config(max_flips=2_000, use_partitioning=False)
    tuffy = TuffyEngine(dataset.program, config).run_map()
    alchemy = AlchemyEngine(fresh_dataset(name).program, config).run_map()
    clause_table_mb = tuffy.memory["clause_table"] / (1024.0 * 1024.0)
    return (
        name,
        clause_table_mb,
        alchemy.peak_memory_bytes / (1024.0 * 1024.0),
        tuffy.peak_memory_bytes / (1024.0 * 1024.0),
    )


def collect_rows():
    return [measure_dataset(name) for name in DATASETS]


def test_table4_space_efficiency(benchmark):
    results = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    rows = [
        (name, round(clause_mb, 4), round(alchemy_mb, 4), round(tuffy_mb, 4), round(alchemy_mb / max(tuffy_mb, 1e-9), 1))
        for name, clause_mb, alchemy_mb, tuffy_mb in results
    ]
    emit(
        "table4_memory",
        render_table(
            "Table 4 — space efficiency (MB, analytic memory model)",
            ["dataset", "clause table", "Alchemy RAM", "Tuffy-p RAM", "ratio"],
            rows,
        ),
    )
    for name, clause_mb, alchemy_mb, tuffy_mb in results:
        assert alchemy_mb > tuffy_mb
