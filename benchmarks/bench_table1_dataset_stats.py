"""Table 1 — dataset statistics.

Prints, for each of the four workloads, the statistics the paper reports in
Table 1 (#relations, #rules, #entities, #evidence tuples, #query atoms,
#components).  The absolute counts are smaller than the paper's (the
generators run at laptop scale); the *shape* reproduced here is the component
structure: LP and ER are single components, IE fragments into thousands of
tiny components (here: one per citation), RC into hundreds (here: one per
cluster).
"""

from benchmarks.harness import DATASETS, benchmark_dataset, default_config, emit, render_table
from repro.core import TuffyEngine
from repro.mrf.components import connected_components


def collect_rows():
    rows = []
    for name in DATASETS:
        dataset = benchmark_dataset(name)
        statistics = dataset.statistics()
        engine = TuffyEngine(dataset.program, default_config(max_flips=10))
        engine.ground()
        components = connected_components(engine.build_mrf()).component_count
        rows.append(
            (
                name,
                statistics.relations,
                statistics.rules,
                statistics.entities,
                statistics.evidence_tuples,
                statistics.query_atoms,
                components,
            )
        )
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    emit(
        "table1_dataset_stats",
        render_table(
            "Table 1 — dataset statistics (benchmark scale)",
            ["dataset", "#relations", "#rules", "#entities", "#evidence", "#query atoms", "#components"],
            rows,
        ),
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["LP"][6] == 1
    assert by_name["ER"][6] == 1
    assert by_name["IE"][6] > by_name["RC"][6] > 1
