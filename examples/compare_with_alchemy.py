"""Head-to-head: Tuffy vs the Alchemy-style baseline on the RC workload.

Reproduces the paper's headline comparison (Figure 3 / Tables 2 and 4) as a
single runnable script: the same relational-classification program is solved
by the Tuffy engine (bottom-up grounding in the relational engine,
component-aware in-memory search) and by the Alchemy baseline (top-down
nested-loop grounding, monolithic search), and the script prints grounding
time, search quality, memory footprints and the time-cost traces.

Run with::

    python examples/compare_with_alchemy.py
"""

from repro.baselines import AlchemyEngine
from repro.core import InferenceConfig, TuffyEngine
from repro.datasets import DatasetScale, load_dataset


def describe(result) -> str:
    return (
        f"grounding={result.grounding_seconds:.2f}s  "
        f"search={result.search_seconds:.2f}s  "
        f"cost={result.cost:.1f}  "
        f"flips={result.flips}  "
        f"components={result.component_count}  "
        f"peak RAM={result.peak_memory_bytes / 1024:.0f} KB"
    )


def main() -> None:
    dataset = load_dataset("RC", DatasetScale(seed=0))
    print(f"Workload: {dataset.description}")
    print(f"Statistics: {dataset.statistics().as_dict()}")

    config = InferenceConfig(seed=0, max_flips=40_000)
    print("\nRunning Tuffy (bottom-up grounding + component-aware search)...")
    tuffy = TuffyEngine(dataset.program, config).run_map()
    print("  " + describe(tuffy))

    print("Running Alchemy baseline (top-down grounding + monolithic search)...")
    alchemy = AlchemyEngine(load_dataset("RC", DatasetScale(seed=0)).program, config).run_map()
    print("  " + describe(alchemy))

    print("\nTime-cost trace (best cost so far, search phase):")
    for label, result in (("Tuffy", tuffy), ("Alchemy", alchemy)):
        points = ", ".join(
            f"({point.time:.3g}s, {point.cost:.0f})" for point in result.trace.points[:10]
        )
        print(f"  {label:8s} {points}")

    speedup = alchemy.grounding_seconds / max(tuffy.grounding_seconds, 1e-9)
    memory_ratio = alchemy.peak_memory_bytes / max(tuffy.peak_memory_bytes, 1)
    print(f"\nGrounding speed-up (Tuffy vs Alchemy): {speedup:.1f}x")
    print(f"Peak memory ratio  (Alchemy vs Tuffy): {memory_ratio:.1f}x")
    print(f"Final cost: Tuffy {tuffy.cost:.1f} vs Alchemy {alchemy.cost:.1f}")


if __name__ == "__main__":
    main()
