"""Entity resolution: deduplicating citation records with an MLN.

This mirrors the paper's ER workload (deduplicating Cora citations).  The
program is built *programmatically* rather than from text, showing the
second style of API usage: declare predicates, add rules from text snippets,
add evidence from Python data structures.

The example also demonstrates the memory-budget knob: the ER ground MRF is a
single dense component, so with a small budget the engine further splits it
with the greedy partitioner and runs Gauss-Seidel sweeps (Section 3.4 of the
paper), trading some quality for a bounded footprint.

Run with::

    python examples/entity_resolution.py
"""

from itertools import combinations

from repro.core import InferenceConfig, MLNProgram, TuffyEngine
from repro.logic.predicates import Predicate
from repro.utils.rng import RandomSource

# Ground-truth clusters: records that refer to the same underlying paper.
TRUE_ENTITIES = {
    "tuffy-vldb": ["R1", "R2", "R3"],
    "mlns-ml06": ["R4", "R5"],
    "walksat-93": ["R6", "R7", "R8"],
    "alchemy-man": ["R9", "R10"],
}


def build_program(noise_seed: int = 0) -> MLNProgram:
    rng = RandomSource(noise_seed)
    program = MLNProgram("entity-resolution")
    program.declare_predicate(Predicate("simHigh", ("bib", "bib"), closed_world=True))
    program.declare_predicate(Predicate("simMed", ("bib", "bib"), closed_world=True))
    program.declare_predicate(Predicate("sameBib", ("bib", "bib"), closed_world=False))
    program.add_rule_text("4.0 simHigh(b1, b2) => sameBib(b1, b2)")
    program.add_rule_text("2.0 simMed(b1, b2) => sameBib(b1, b2)")
    program.add_rule_text("-0.5 sameBib(b1, b2)")
    program.add_rule_text("6.0 sameBib(b1, b2), sameBib(b2, b3) => sameBib(b1, b3)")

    records = [record for cluster in TRUE_ENTITIES.values() for record in cluster]
    program.add_constants("bib", records)
    entity_of = {
        record: entity for entity, cluster in TRUE_ENTITIES.items() for record in cluster
    }
    for first, second in combinations(records, 2):
        if entity_of[first] == entity_of[second]:
            # Same entity: mostly high similarity, sometimes only medium.
            if rng.random() < 0.75:
                program.add_evidence("simHigh", (first, second))
            else:
                program.add_evidence("simMed", (first, second))
        elif rng.random() < 0.06:
            # Cross-entity noise.
            program.add_evidence("simMed", (first, second))
    return program


def evaluate(result) -> tuple[int, int, int]:
    """Count merge decisions against the ground truth (pairs of records)."""
    entity_of = {
        record: entity for entity, cluster in TRUE_ENTITIES.items() for record in cluster
    }
    records = sorted(entity_of)
    true_positive = false_positive = false_negative = 0
    for first, second in combinations(records, 2):
        same_truth = entity_of[first] == entity_of[second]
        inferred = bool(
            result.truth_of("sameBib", [first, second])
            or result.truth_of("sameBib", [second, first])
        )
        if inferred and same_truth:
            true_positive += 1
        elif inferred and not same_truth:
            false_positive += 1
        elif not inferred and same_truth:
            false_negative += 1
    return true_positive, false_positive, false_negative


def main() -> None:
    program = build_program()
    print("Statistics:", program.statistics().as_dict())

    print("\n=== Unconstrained run (whole component in memory) ===")
    result = TuffyEngine(program, InferenceConfig(seed=0, max_flips=60_000)).run_map()
    tp, fp, fn = evaluate(result)
    print(f"cost={result.cost:.1f}  merges: tp={tp} fp={fp} fn={fn}")
    print(f"components={result.component_count}  peak RAM={result.peak_memory_bytes / 1024:.1f} KB")

    print("\n=== Memory-budgeted run (Algorithm 3 + Gauss-Seidel) ===")
    budgeted = TuffyEngine(
        build_program(),
        InferenceConfig(seed=0, max_flips=60_000, memory_budget_bytes=32 * 1024),
    ).run_map()
    tp, fp, fn = evaluate(budgeted)
    print(f"cost={budgeted.cost:.1f}  merges: tp={tp} fp={fp} fn={fn}")
    print(
        f"components={budgeted.component_count}  "
        f"peak RAM={budgeted.peak_memory_bytes / 1024:.1f} KB (budget 32 KB)"
    )


if __name__ == "__main__":
    main()
