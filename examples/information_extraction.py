"""Information extraction: segmenting citation strings into fields.

This mirrors the paper's IE workload (Citeseer citation segmentation): each
citation string is a sequence of token positions, and the task is to label
every position with the field it belongs to (author / title / venue / year).
The ground MRF fragments into one small component per citation, which is the
regime where Tuffy's component-aware search and batch loading shine.

The example runs both MAP inference (one best segmentation) and marginal
inference with MC-SAT (per-position label probabilities), and reports token
accuracy against the generator's ground truth.

Run with::

    python examples/information_extraction.py
"""

from repro.core import InferenceConfig, MLNProgram, TuffyEngine
from repro.logic.predicates import Predicate
from repro.utils.rng import RandomSource

FIELDS = ["Author", "Title", "Venue", "Year"]
SEED_WORDS = {
    "Author": ["smith", "jones", "lee"],
    "Title": ["learning", "inference", "networks"],
    "Venue": ["proceedings", "journal", "conference"],
    "Year": ["1999", "2005", "2010"],
}


def build_program(n_citations: int = 30, seed: int = 0):
    rng = RandomSource(seed)
    program = MLNProgram("information-extraction")
    program.declare_predicate(Predicate("token", ("position", "word"), closed_world=True))
    program.declare_predicate(Predicate("next", ("position", "position"), closed_world=True))
    program.declare_predicate(Predicate("seedword", ("word", "label"), closed_world=True))
    program.declare_predicate(Predicate("field", ("position", "label"), closed_world=False))
    program.add_rule_text("0.8 token(p, w), seedword(w, l) => field(p, l)")
    program.add_rule_text("1.0 next(p1, p2), field(p1, l) => field(p2, l)")
    program.add_rule_text("4.0 field(p, l1), field(p, l2) => l1 = l2")
    program.add_constants("label", FIELDS)
    for label, words in SEED_WORDS.items():
        for word in words:
            program.add_evidence("seedword", (word, label))

    truth = {}
    for citation in range(1, n_citations + 1):
        length = rng.randint(2, 4)
        positions = [f"C{citation}_{i}" for i in range(1, length + 1)]
        program.add_constants("position", positions)
        citation_field = rng.pick(FIELDS)
        for index, position in enumerate(positions):
            # The first token of each citation carries a seed word for its
            # field; later tokens are often uninformative and must be filled
            # in by the chain rule.
            field = citation_field
            truth[position] = field
            if index == 0 or rng.random() < 0.4:
                word = rng.pick(SEED_WORDS[field])
            else:
                word = f"w{rng.randint(1, 40)}"
            program.add_evidence("token", (position, word))
        for first, second in zip(positions, positions[1:]):
            program.add_evidence("next", (first, second))
    return program, truth


def main() -> None:
    program, truth = build_program()
    print("Statistics:", program.statistics().as_dict())

    engine = TuffyEngine(program, InferenceConfig(seed=0, max_flips=60_000, workers=4))
    result = engine.run_map()
    print(f"\nMAP inference: cost={result.cost:.1f}, components={result.component_count}")

    correct = 0
    for position, field in truth.items():
        if result.truth_of("field", [position, field]):
            correct += 1
    print(f"token accuracy: {correct}/{len(truth)} = {correct / len(truth):.2%}")

    # Marginal inference on a smaller instance (MC-SAT is sampling based).
    small_program, small_truth = build_program(n_citations=6, seed=1)
    marginal_engine = TuffyEngine(
        small_program, InferenceConfig(seed=0, mcsat_samples=60, mcsat_burn_in=10)
    )
    marginals = marginal_engine.run_marginal()
    print("\nMarginal inference (MC-SAT) on 6 citations — most confident positions:")
    atoms = marginal_engine.grounding_result.atoms
    scored = sorted(
        (
            (probability, atoms.record(atom_id).atom)
            for atom_id, probability in marginals.marginals.probabilities.items()
        ),
        reverse=True,
        key=lambda pair: pair[0],
    )
    for probability, atom in scored[:8]:
        print(f"  P({atom}) = {probability:.2f}")


if __name__ == "__main__":
    main()
