"""Quickstart: the paper's Figure 1 program (paper topic classification).

This is the running example of the Tuffy paper: given authorship and
citation evidence plus a few labelled papers, infer the research area of the
remaining papers.  It exercises the full public API:

* build an :class:`~repro.core.MLNProgram` from Alchemy-style text,
* run MAP inference with :class:`~repro.core.TuffyEngine`,
* inspect the inferred labels, the cost and the pipeline breakdown,
* look at the SQL that the bottom-up grounder generates per rule.

Run with::

    python examples/quickstart.py
"""

from repro.core import InferenceConfig, MLNProgram, TuffyEngine
from repro.grounding.bottom_up import BottomUpGrounder

PROGRAM_TEXT = """
// Schema: closed-world (evidence) predicates are marked with '*'.
*wrote(author, paper)
*refers(paper, paper)
cat(paper, category)

// Rules (weights as in Figure 1 of the paper).
5 cat(p, c1), cat(p, c2) => c1 = c2
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2 cat(p1, c), refers(p1, p2) => cat(p2, c)
-1 cat(p, "Networking")
"""

EVIDENCE_TEXT = """
wrote(Joe, P1)
wrote(Joe, P2)
wrote(Jake, P3)
wrote(Jake, P4)
refers(P1, P3)
refers(P3, P4)
cat(P2, "DB")
"""


def main() -> None:
    program = MLNProgram.from_text(PROGRAM_TEXT, EVIDENCE_TEXT, name="figure1")
    # The category domain also contains labels no paper is known to have yet.
    program.add_constants("category", ["DB", "AI", "Networking"])

    print("Dataset statistics (Table 1 style):")
    for key, value in program.statistics().as_dict().items():
        print(f"  {key:>18}: {value}")

    print("\nSQL generated for each rule by the bottom-up grounder (Algorithm 2):")
    for name, sql in BottomUpGrounder().compiled_sql(program.clauses()).items():
        print(f"-- rule {name}")
        print(sql)

    engine = TuffyEngine(program, InferenceConfig(seed=0, max_flips=50_000))
    result = engine.run_map()

    print("\nInferred paper categories (query atoms set to true):")
    for atom in result.true_atoms("cat"):
        print(f"  {atom}")

    print("\nRun summary:")
    for key, value in result.summary().items():
        print(f"  {key:>18}: {value}")
    print(f"  phase breakdown    : {result.phase_seconds}")


if __name__ == "__main__":
    main()
