#!/usr/bin/env bash
# Repo check: byte-compile everything, run the tier-1 test suite (see
# ROADMAP.md), then the kernel-parity suite and a quick search-kernel
# benchmark for each kernel backend (the vectorized backend skips itself
# cleanly when numpy is absent).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 tests (includes the kernel parity suite, all backends) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "== search-kernel benchmark (quick, flat backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_search_kernel.py --quick --backend flat

echo "== search-kernel benchmark (quick, vectorized backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_search_kernel.py --quick --backend vectorized

echo "== mc-sat throughput benchmark (quick, flat backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_mcsat_throughput.py --quick --backend flat

echo "== mc-sat throughput benchmark (quick, vectorized backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_mcsat_throughput.py --quick --backend vectorized --assert-speedup 2

echo "== table-2 grounding benchmark (quick, row execution backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_table2_grounding.py --quick --backend row

echo "== table-2 grounding benchmark (quick, columnar execution backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_table2_grounding.py --quick --backend columnar

echo "== check.sh OK =="
