#!/usr/bin/env bash
# Repo check: byte-compile everything, run the static-analysis gate
# (the determinism & parity linter, plus ruff/mypy when installed), run
# the tier-1 test suite (see ROADMAP.md), then a quick benchmark per
# backend seam — search kernel (flat/vectorized; the vectorized backend
# skips itself cleanly when numpy is absent), execution backend
# (row/columnar), and parallel backend (serial/processes; wall-clock
# speedup asserted only on machines with the cores to show it).
# Benchmarks with --json-out refresh benchmarks/results/BENCH_*.json so
# the perf trajectory is tracked across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== compileall =="
python -m compileall -q src

echo "== static analysis (determinism & parity linter; gating) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.analysis src \
  --json-out benchmarks/results/ANALYSIS_findings.json

if command -v ruff >/dev/null 2>&1; then
  echo "== ruff (pyproject.toml config) =="
  ruff check src tests benchmarks
else
  echo "== ruff not installed; skipping (tree is kept ruff-clean regardless) =="
fi

if command -v mypy >/dev/null 2>&1; then
  echo "== mypy (strict on repro.analysis / repro.utils) =="
  MYPYPATH=src mypy -p repro.analysis -p repro.utils
else
  echo "== mypy not installed; skipping (strict scope: repro.analysis, repro.utils) =="
fi

echo "== tier-1 tests (includes the kernel parity suite, all backends) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "== search-kernel benchmark (quick, flat backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_search_kernel.py --quick --backend flat

echo "== search-kernel benchmark (quick, vectorized backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_search_kernel.py --quick --backend vectorized --json-out benchmarks/results/BENCH_search_kernel.json

echo "== mc-sat throughput benchmark (quick, flat backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_mcsat_throughput.py --quick --backend flat

echo "== mc-sat throughput benchmark (quick, vectorized backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_mcsat_throughput.py --quick --backend vectorized --assert-speedup 2 --json-out benchmarks/results/BENCH_mcsat_throughput.json

echo "== table-2 grounding benchmark (quick, row execution backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_table2_grounding.py --quick --backend row

echo "== table-2 grounding benchmark (quick, columnar execution backend) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_table2_grounding.py --quick --backend columnar --json-out benchmarks/results/BENCH_table2_grounding.json

echo "== parallel parity suite (serial/threads/processes, workers 1/2/4) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -q tests/test_parallel_parity.py tests/test_parallel_scheduling.py

# Wall-clock parallel speedup needs real cores: the bench measures the
# serial backend everywhere, skips the processes measurements cleanly on
# single-CPU machines, and asserts the >=1.8x IE speedup (plus the <=10%
# single-component pool-overhead bound) and the >=1.3x steal-over-wave
# dispatch speedup on the imbalanced workload only when the CPUs are there.
CPUS="$(python -c 'import os; print(os.cpu_count() or 1)')"
echo "== parallel inference benchmark (quick, serial + processes; ${CPUS} CPU(s)) =="
if [ "${CPUS}" -ge 4 ]; then
  PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_parallel_inference.py --quick --assert-speedup 1.8 --assert-dispatch-speedup 1.3 --json-out benchmarks/results/BENCH_parallel.json
else
  PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_parallel_inference.py --quick --json-out benchmarks/results/BENCH_parallel.json
fi

# Warm engine sessions: one session serving repeated requests must beat
# a cold engine per request, and admitting requests concurrently must
# raise aggregate throughput.  The >=3x warm/cold requests/sec assertion
# at 4 workers and the >=1.5x concurrent-4 aggregate assertion need real
# cores; the bench always runs (and refreshes BENCH_session.json) but
# only asserts when the CPUs are there.
echo "== session benchmark (quick, warm vs cold + concurrent admission + delta reground; ${CPUS} CPU(s)) =="
if [ "${CPUS}" -ge 4 ]; then
  PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_session.py --quick --assert-speedup 3 --assert-concurrent-speedup 1.5 --json-out benchmarks/results/BENCH_session.json
else
  PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_session.py --quick --json-out benchmarks/results/BENCH_session.json
fi

# Observability: the obs-purity rule alone (fast re-run over the obs
# layer), an end-to-end traced run on IE whose Chrome trace must pass
# the structural validator, and the overhead benchmark.  The NullTracer
# <=2% bound is an accounting (spans/request x measured no-op span cost)
# so it always asserts; the full-tracing <=10% throughput bound needs
# real cores and skips itself on starved machines.
echo "== obs-purity rule (observability layer static gate) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.analysis src --select obs-purity --no-baseline
OBS_TRACE="$(mktemp -t obs_trace_XXXXXX.json)"
OBS_METRICS="$(mktemp -t obs_metrics_XXXXXX.json)"
trap 'rm -f "${OBS_TRACE}" "${OBS_METRICS}"' EXIT
echo "== traced IE run + Chrome trace validation =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli dataset IE --scale 0.3 \
  --max-flips 2000 --workers 2 --session-requests 4 --session-concurrent 2 \
  --trace-out "${OBS_TRACE}" --metrics-out "${OBS_METRICS}" >/dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - "${OBS_TRACE}" "${OBS_METRICS}" <<'PYEOF'
import json, sys
from repro.obs import validate_chrome_trace
payload = json.load(open(sys.argv[1]))
problems = validate_chrome_trace(payload)
if problems:
    sys.exit("invalid Chrome trace:\n  " + "\n  ".join(problems))
lanes = {e["tid"] for e in payload["traceEvents"]}
if not {1, 2, 3, 4} <= lanes:
    sys.exit(f"expected a lane per request, got tids {sorted(lanes)}")
metrics = json.load(open(sys.argv[2]))
if metrics["counters"].get("session.requests") != 4.0:
    sys.exit(f"metrics dump missing session.requests=4: {metrics['counters']}")
print(f"trace OK: {len(payload['traceEvents'])} events across request lanes {sorted(lanes)}")
PYEOF
echo "== observability overhead benchmark (quick; ${CPUS} CPU(s)) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_obs_overhead.py --quick \
  --assert-null-overhead 0.02 --assert-full-overhead 0.10 --json-out benchmarks/results/BENCH_obs.json

echo "== check.sh OK =="
