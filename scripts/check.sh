#!/usr/bin/env bash
# Repo check: byte-compile everything, run the tier-1 test suite (see
# ROADMAP.md), then a quick search-kernel benchmark sanity run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 tests =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "== search-kernel benchmark (quick) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_search_kernel.py --quick

echo "== check.sh OK =="
