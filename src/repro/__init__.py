"""repro: a reproduction of Tuffy (Niu, Ré, Doan and Shavlik, VLDB 2011).

Tuffy scales MAP and marginal inference in Markov Logic Networks by pushing
the grounding phase into an RDBMS, keeping the WalkSAT search phase in main
memory, and partitioning the ground Markov Random Field to cut memory use
and (often exponentially) speed up the search.

The public entry points are in :mod:`repro.core`:

>>> from repro.core import MLNProgram, TuffyEngine, InferenceConfig
>>> program = MLNProgram.from_text(program_text, evidence_text)   # doctest: +SKIP
>>> result = TuffyEngine(program, InferenceConfig(seed=0)).run_map()  # doctest: +SKIP

Subpackages
-----------
``repro.logic``         first-order logic: terms, clauses, formulas, parser
``repro.rdbms``         the embedded relational engine (PostgreSQL stand-in)
``repro.grounding``     bottom-up and top-down grounding
``repro.mrf``           the ground MRF, cost function, components
``repro.partitioning``  Algorithm 3, bin packing, batch loading
``repro.inference``     WalkSAT, Tuffy-mm, component-aware search, MC-SAT
``repro.core``          the public API (program, engine, config, results)
``repro.baselines``     the Alchemy-style baseline engine
``repro.datasets``      synthetic LP / IE / RC / ER workload generators
"""

from repro.core import InferenceConfig, InferenceResult, MLNProgram, TuffyEngine

__version__ = "1.0.0"

__all__ = [
    "InferenceConfig",
    "InferenceResult",
    "MLNProgram",
    "TuffyEngine",
    "__version__",
]
