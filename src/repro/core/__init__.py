"""The public API of the library.

A typical MAP-inference session looks like::

    from repro.core import MLNProgram, TuffyEngine, InferenceConfig

    program = MLNProgram.from_text(PROGRAM_TEXT, EVIDENCE_TEXT)
    engine = TuffyEngine(program, InferenceConfig(seed=0, max_flips=100_000))
    result = engine.run_map()
    for atom in result.true_atoms("cat"):
        print(atom)

:class:`MLNProgram` holds the first-order program (predicates, rules,
evidence, domains); :class:`TuffyEngine` runs the Tuffy pipeline — bottom-up
grounding in the relational engine, component detection, optional
partitioning, and in-memory (component-aware) WalkSAT — and returns an
:class:`InferenceResult`.
"""

from repro.core.config import InferenceConfig
from repro.core.engine import TuffyEngine
from repro.core.errors import ConfigurationError, ProgramError, ReproError
from repro.core.program import DatasetStatistics, MLNProgram
from repro.core.results import InferenceResult
from repro.core.session import EngineSession, SessionStats

__all__ = [
    "ConfigurationError",
    "DatasetStatistics",
    "EngineSession",
    "InferenceConfig",
    "InferenceResult",
    "MLNProgram",
    "ProgramError",
    "ReproError",
    "SessionStats",
    "TuffyEngine",
]
