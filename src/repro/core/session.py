"""Long-lived engine sessions: the warm request path.

A cold :class:`~repro.core.engine.TuffyEngine` run pays for everything on
every call: grounding, MRF construction, component detection, kernel-state
allocation and — on the ``processes`` backend — forking a worker pool and
packing the shared-memory buffers.  :class:`EngineSession` splits that
into *session-lived* state (database, atom registry, grounding result,
MRF, component decomposition, persistent :class:`~repro.parallel.pool.WorkerPool`)
and *per-request* state (:class:`InferenceRequest`: seed, RNG, timer,
simulated clock), so repeated MAP or marginal requests reuse everything
that has not changed.

Determinism contract
--------------------
A warm request with seed ``S`` is bit-identical — assignments, costs,
flips, marginals — to a cold engine run with seed ``S``, on every
``parallel_backend`` and worker count (``tests/test_session_parity.py``).
This holds because every piece of reused state is either immutable
between requests (the grounding result, the component MRFs) or fully
rewritten before use (WalkSAT rewrites a reused kernel state at attempt 0
via ``randomize``/``reset``; each request draws a fresh
``RandomSource(seed)``).  The *first* request also matches the cold run's
simulated seconds exactly; later requests may report fewer, because the
simulated buffer cache absorbs repeated clause-table scans — less I/O is
the point of the warm path, and the deterministic search clock is
unchanged.

Concurrent admission
--------------------
:meth:`submit_map` / :meth:`submit_marginal` admit up to
``config.max_inflight_requests`` requests at once (futures); the blocking
:meth:`run_map` / :meth:`run_marginal` are ``submit`` + ``result()``.
Interleaved requests share the persistent pool (whose shared-memory
result region holds one *bank* per admitted request), the grounding
caches and the kernel-state lease, but each request is self-contained:
its own RNG stream, timer, simulated-time accounting and telemetry.  The
contract extends verbatim: every request's MAP assignment, marginals,
skipped set and scheduling outcome are bit-identical whether the request
runs alone or interleaved with others, on every backend, dispatch mode
and worker count — concurrency only changes wall-clock time.

Two rules make that hold.  *Setup is serialized, search is concurrent*:
everything that touches session state (grounding, loading, pool
checkout, lease checkout, stats) happens under the session lock, while
the search itself — the long part — runs outside it.  *Live state is
leased, never shared*: reusable kernel states live in a
:class:`SearchStateLease`; a request checks them out exclusively, and a
concurrent request that finds the lease empty builds its own fresh
states (bit-identical, because WalkSAT fully rewrites states at attempt
0).  A re-ground drains in-flight searches before invalidating derived
state, so buffers are never torn down under a running request.

Delta-grounding
---------------
:meth:`add_evidence` / :meth:`remove_evidence` mutate the program *and*
the session's registry in lockstep, bumping only the touched predicate's
version counter.  The next :meth:`ground` then replays every clause
whose predicates are unchanged from the grounder's replay cache and
re-runs only the affected relational queries
(:class:`~repro.grounding.bottom_up.GroundingDeltaReport` records the
split).  Components whose atoms and clauses are unchanged are adopted
from the previous decomposition so their caches survive the delta.
Retraction keeps the atom record (ids are stable) and flips its truth:
``None`` for open-world predicates (the atom becomes a search variable
again) and ``False`` for closed-world ones, whose unlisted atoms are
implicitly false — see :meth:`~repro.grounding.atoms.AtomRegistry.remove_evidence`.

The evidence-delta determinism contract: the registry's state is a pure
function of (the program at first registry build, the ordered
``add_evidence`` / ``remove_evidence`` calls).  A comparator must *replay
the same call sequence* on a fresh session — building a cold engine from
the final program text would register the delta atoms in a different
order and get different atom ids.

Pool lifecycle
--------------
The persistent pool is keyed on the component list it was packed from
(identity per element).  A pool is never repacked in place — a grounding
change tears it down and the next request forks a fresh one (the
``fork-pool-lifecycle`` analysis rule enforces the never-repack rule).
Unclosed sessions shut their pool (and the admission executor) down at
garbage collection via ``weakref.finalize``; call :meth:`close` (or use
the session as a context manager) for deterministic teardown.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.config import InferenceConfig
from repro.core.program import MLNProgram
from repro.core.results import InferenceResult
from repro.grounding.atoms import AtomRegistry
from repro.grounding.bottom_up import BottomUpGrounder, GroundingDeltaReport
from repro.grounding.lazy import active_closure
from repro.grounding.result import GroundingResult
from repro.grounding.top_down import TopDownGrounder
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.samplesat import SampleSATOptions
from repro.inference.state import make_search_state
from repro.inference.tracing import TimeCostTrace, merge_traces
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.components import ComponentDecomposition, connected_components
from repro.mrf.cost import assignment_cost
from repro.mrf.graph import MRF
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, RecordingTracer
from repro.parallel import resolve_parallel_backend
from repro.parallel.merge import gauss_seidel_refine
from repro.parallel.pool import WorkerPool
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.loader import BatchLoader
from repro.rdbms.database import Database
from repro.utils.clock import SimulatedClock
from repro.utils.memory import MemoryModel
from repro.utils.rng import RandomSource
from repro.utils.timer import Timer


def _shutdown_holder(holder: Dict[str, object]) -> None:
    """GC-time teardown (module-level so ``finalize`` holds no session ref).

    The admission executor drains first — in-flight requests may still
    need the pool — then the pool's workers and shared memory go.
    """
    executor = holder.get("executor")
    if executor is not None:
        holder["executor"] = None
        executor.shutdown(wait=True)
    pool = holder.get("pool")
    if pool is not None:
        holder["pool"] = None
        pool.shutdown()


@dataclass
class SessionStats:
    """Counters describing how much work the session reused vs redid."""

    requests: int = 0
    map_requests: int = 0
    marginal_requests: int = 0
    ground_runs: int = 0
    delta_ground_runs: int = 0
    pool_launches: int = 0
    components_adopted: int = 0
    components_rebuilt: int = 0


@dataclass
class InferenceRequest:
    """Per-request state: nothing in here survives to the next request.

    Fully self-contained so concurrently admitted requests cannot
    interfere: the RNG stream and timer are private, and the simulated
    database seconds are accounted per request (``ground_mark`` is the
    grounding share captured at admission; ``db_simulated`` accumulates
    this request's own loading charges) instead of being derived from the
    shared clock's motion, which another in-flight request could advance.
    ``session_phases`` snapshots the session timer at the end of this
    request's setup (so phases its own setup recorded — component
    detection on a fresh grounding — are included) and never again, so a
    concurrent re-ground is not billed to this request's phase report.
    """

    seed: int
    rng: RandomSource
    timer: Timer = field(default_factory=Timer)
    request_id: int = 0
    kind: str = "map"
    deadline_seconds: Optional[float] = None
    db_simulated: float = 0.0
    ground_mark: float = 0.0
    session_phases: Dict[str, float] = field(default_factory=dict)


class SearchStateLease:
    """Checked-out/returned cache of reusable kernel search states.

    The warm path reuses kernel states across requests (WalkSAT rewrites
    them at attempt 0, so reuse is bit-safe) — but a *live* state must
    never be shared by two in-flight requests.  The lease makes reuse
    exclusive: :meth:`checkout` hands the cached entry to exactly one
    request (a concurrent request finds the slot empty and builds fresh
    states via ``builder``), and :meth:`checkin` returns it when the
    request finishes.  If two requests check in under the same key the
    first one wins and the other states are dropped — correctness never
    depends on which states are cached, only on exclusivity.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str], object] = {}

    def checkout(self, key: Tuple[str, str], builder: Callable[[], object]):
        """Take exclusive ownership of the cached entry, or build fresh."""
        with self._lock:
            cached = self._entries.pop(key, None)
        if cached is not None:
            return cached
        return builder()

    def checkin(self, key: Tuple[str, str], value: object) -> None:
        """Return a checked-out (or freshly built) entry to the cache."""
        with self._lock:
            self._entries.setdefault(key, value)

    def invalidate(self) -> None:
        """Drop every cached entry (after a re-ground)."""
        with self._lock:
            self._entries.clear()

    def held(self, key: Tuple[str, str]) -> bool:
        """Whether an entry is currently cached (i.e. *not* checked out)."""
        with self._lock:
            return key in self._entries


@dataclass
class _RequestPlan:
    """Everything a request's search phase needs, assembled under the lock.

    The serve methods build the plan during the serialized setup phase
    and then search outside the lock using only the plan, the request and
    immutable session state — no session attribute is written past this
    point (the ``req-state-isolation`` analysis rule checks that).
    """

    lease_key: Optional[Tuple[str, str]] = None
    leased_value: object = None
    decomposition: Optional[ComponentDecomposition] = None
    size_bound: Optional[float] = None
    small: List[MRF] = field(default_factory=list)
    oversized: List[MRF] = field(default_factory=list)
    load_plan: object = None
    pool: Optional[WorkerPool] = None
    searcher: Optional[ComponentAwareWalkSAT] = None
    options: Optional[WalkSATOptions] = None
    sampler: object = None


class EngineSession:
    """Long-lived inference state shared by a sequence of requests.

    Owns the database, atom registry, grounding result, MRF, component
    decomposition and (on the ``processes`` backend) the persistent worker
    pool; :class:`~repro.core.engine.TuffyEngine` is a thin per-request
    driver over one of these.  Up to ``config.max_inflight_requests``
    submitted requests may be in flight at once (see the module
    docstring's *Concurrent admission* section).
    """

    #: Methods that run per-request code: their bodies must not write any
    #: session-level attribute (reads and calls into the sanctioned
    #: plumbing methods are fine).  The ``req-state-isolation`` analysis
    #: rule enforces this so a request can never corrupt another's state.
    _request_scoped_methods = (
        "_serve_map",
        "_serve_marginal",
        "_prepare_partitioned",
        "_prepare_monolithic",
        "_prepare_marginal",
        "_search_partitioned",
        "_search_monolithic",
        "_search_marginal",
    )

    def __init__(
        self,
        program: MLNProgram,
        config: Optional[InferenceConfig] = None,
        database: Optional[Database] = None,
    ) -> None:
        self.program = program
        self.config = config or InferenceConfig()
        self.database = database or Database(
            clock=SimulatedClock(self.config.cost_model),
            optimizer_options=self.config.optimizer_options,
            execution_backend=self.config.execution_backend,
        )
        self.memory_model = MemoryModel()
        self.timer = Timer()
        self.stats = SessionStats()
        #: Injected observability surfaces (never module-global).  The
        #: tracer *reads* the simulated clock through a zero-arg callable
        #: and never advances it; with tracing off every traced call site
        #: pays one no-op method call on the shared ``NullTracer``
        #: singletons, and results are bit-identical either way (the obs
        #: parity suite proves it).
        self.metrics = MetricsRegistry()
        if self.config.tracing_enabled:
            self.tracer = RecordingTracer(simulated_now=self.database.clock.now)
        else:
            self.tracer = NullTracer()
        #: Bounded summaries of recently finished requests (telemetry
        #: only — nothing in here feeds back into inference).
        self._request_log: Deque[Dict[str, object]] = deque(maxlen=64)
        self.grounding_result: Optional[GroundingResult] = None
        self.mrf: Optional[MRF] = None
        self.components: Optional[ComponentDecomposition] = None
        self._previous_components: Optional[ComponentDecomposition] = None
        self.last_ground_report: Optional[GroundingDeltaReport] = None

        self._registry: Optional[AtomRegistry] = None
        self._grounder: Optional[BottomUpGrounder] = None
        self._ground_version: Optional[int] = None
        #: Simulated seconds the database clock had accumulated when the
        #: current grounding finished — the grounding share of every warm
        #: request's simulated time.
        self._ground_clock_mark: float = 0.0
        self._split: Optional[Tuple[List[MRF], List[MRF]]] = None
        self._state_lease = SearchStateLease()
        # Serializes session-state mutation (grounding, loading, pool and
        # lease checkout).  Reentrant because the pipeline stages call
        # each other (serve -> ground -> build_mrf ...).
        self._lock = threading.RLock()
        # Guards the in-flight search count.  Deliberately separate from
        # ``_lock``: a finishing search only ever takes ``_search_gate``,
        # so ``ground()`` can wait for the drain *while holding*
        # ``_lock`` without deadlocking.
        self._search_gate = threading.Condition(threading.Lock())
        self._active_searches = 0
        self._next_request_id = 0
        # The pool and admission executor live in a plain dict so
        # ``weakref.finalize`` can tear them down after the session is
        # collected without keeping the session alive (tests rarely close
        # engines explicitly).
        self._pool_holder: Dict[str, object] = {"pool": None, "executor": None}
        self._finalizer = weakref.finalize(self, _shutdown_holder, self._pool_holder)
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight requests and tear down executor + pool.

        Idempotent; ``submit_*`` / ``run_*`` raise afterwards (a closed
        session's resources are gone and would otherwise be silently —
        and permanently — recreated).
        """
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evidence deltas
    # ------------------------------------------------------------------

    def registry(self) -> AtomRegistry:
        """The session's atom registry (built lazily from the program)."""
        with self._lock:
            if self._registry is None:
                self._registry = self.program.build_atom_registry()
            return self._registry

    def add_evidence(self, predicate_name: str, arguments, truth: bool = True):
        """Add one evidence fact to the program *and* the live registry.

        Forces the registry into existence first so its state is a pure
        function of (program at first build, ordered ``add_evidence`` /
        ``remove_evidence`` calls) — the replayable contract the delta
        parity suite relies on.  The touched predicate's version counter
        is bumped; the next :meth:`ground` re-runs only the clauses
        reading that predicate.
        """
        with self._lock:
            registry = self.registry()
            atom = self.program.add_evidence(predicate_name, arguments, truth)
            registry.register(atom, truth)
            return atom

    def remove_evidence(self, predicate_name: str, arguments):
        """Retract one evidence fact from the program *and* the registry.

        The mirror of :meth:`add_evidence` and part of the same replayable
        call sequence.  The atom's id is stable — the registry keeps the
        record and flips its truth (``None`` open-world, ``False``
        closed-world); the predicate version bump makes the next
        :meth:`ground` reload that predicate's atom table and re-run only
        the clauses reading it.
        """
        with self._lock:
            registry = self.registry()
            atom = self.program.remove_evidence(predicate_name, arguments)
            registry.remove_evidence(atom)
            return atom

    # ------------------------------------------------------------------
    # Pipeline stages (session-lived, delta-aware)
    # ------------------------------------------------------------------

    def ground(self) -> GroundingResult:
        """Ground the program, replaying unchanged clauses from cache.

        A re-ground first waits for every in-flight search to finish:
        the derived state about to be invalidated (pool shared memory,
        leased kernel states) must never be torn down under a running
        request.  New requests cannot start setup meanwhile because this
        method holds the session lock.
        """
        with self._lock:
            registry = self.registry()
            if (
                self.grounding_result is not None
                and self._ground_version == registry.version
            ):
                return self.grounding_result
            self._drain_searches()
            config = self.config
            is_delta = self.grounding_result is not None
            clauses = self.program.clauses()
            with self.timer.measure("grounding"), self.tracer.span(
                "ground", delta=is_delta, strategy=config.grounding_strategy
            ):
                if config.grounding_strategy == "bottom-up":
                    result = self._bottom_up_grounder().ground(clauses, registry)
                    self.last_ground_report = self._bottom_up_grounder().last_report
                else:
                    grounder = TopDownGrounder(
                        merge_duplicates=config.merge_duplicate_clauses,
                        memory_model=self.memory_model,
                    )
                    result = grounder.ground(clauses, registry)
                    self.last_ground_report = None
            if config.use_lazy_closure:
                closure = active_closure(result.clauses)
                result = GroundingResult(
                    atoms=result.atoms,
                    clauses=closure.as_store(),
                    seconds=result.seconds,
                    per_clause=result.per_clause,
                    intermediate_tuples=result.intermediate_tuples,
                    strategy=result.strategy,
                )
            self.grounding_result = result
            self._ground_version = registry.version
            self._ground_clock_mark = self.database.clock.now()
            self.stats.ground_runs += 1
            self.metrics.increment("session.ground_runs")
            if is_delta:
                self.stats.delta_ground_runs += 1
                self.metrics.increment("session.delta_ground_runs")
            report = self.last_ground_report
            if report is not None:
                # Replay-cache effectiveness: clauses replayed from cache
                # vs relational queries actually re-executed.
                self.metrics.increment(
                    "grounding.replay_hits", report.clauses_replayed
                )
                self.metrics.increment(
                    "grounding.replay_misses", report.queries_executed
                )
            self._invalidate_derived()
            return result

    def build_mrf(self) -> MRF:
        """Build (and cache) the ground MRF for the current grounding."""
        with self._lock:
            grounding = self.ground()
            if self.mrf is None:
                with self.tracer.span("build-mrf"):
                    self.mrf = MRF.from_store(grounding.clauses)
            return self.mrf

    def detect_components(self) -> ComponentDecomposition:
        """Detect components, adopting unchanged ones from the last grounding."""
        with self._lock:
            mrf = self.build_mrf()
            if self.components is None:
                with self.timer.measure("component_detection"), self.tracer.span(
                    "component-detection"
                ):
                    decomposition = connected_components(mrf)
                self._adopt_components(decomposition)
                self.components = decomposition
            return self.components

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def submit_map(
        self, seed: Optional[int] = None, deadline_seconds: Optional[float] = None
    ) -> "Future[InferenceResult]":
        """Admit one MAP request; returns a future with its result.

        Up to ``config.max_inflight_requests`` submitted requests run
        interleaved over the shared session state.  ``deadline_seconds``
        overrides ``config.deadline_seconds`` for this request only.
        """
        return self._admission_executor().submit(
            self._serve_map, seed, deadline_seconds, self.tracer.now()
        )

    def submit_marginal(
        self, seed: Optional[int] = None, sampler_factory=None
    ) -> "Future[InferenceResult]":
        """Admit one MC-SAT marginal request; returns a future."""
        return self._admission_executor().submit(
            self._serve_marginal, seed, sampler_factory, self.tracer.now()
        )

    def run_map(
        self, seed: Optional[int] = None, deadline_seconds: Optional[float] = None
    ) -> InferenceResult:
        """Run one MAP request against the warm session state (blocking)."""
        return self.submit_map(seed, deadline_seconds).result()

    def run_marginal(
        self, seed: Optional[int] = None, sampler_factory=None
    ) -> InferenceResult:
        """Run one MC-SAT marginal request against the warm session state.

        ``sampler_factory`` defaults to :class:`~repro.inference.mcsat.MCSat`;
        the engine passes its module-global so tests can monkeypatch it.
        """
        return self.submit_marginal(seed, sampler_factory).result()

    # ------------------------------------------------------------------
    # Request serving (request-scoped: no session-state writes)
    # ------------------------------------------------------------------

    def _serve_map(
        self,
        seed: Optional[int],
        deadline_seconds: Optional[float],
        submitted_at: float = 0.0,
    ) -> InferenceResult:
        """One MAP request: serialized setup, then search outside the lock.

        ``submitted_at`` is the tracer timestamp :meth:`submit_map`
        captured at admission — the gap to serve start is recorded as the
        request's ``admission`` span (queue wait behind other in-flight
        requests).
        """
        with self.tracer.span("request", kind="map") as root:
            if submitted_at:
                self.tracer.record_span("admission", submitted_at, self.tracer.now())
            with self._lock:
                with self.tracer.span("setup"):
                    grounding = self.ground()
                    mrf = self.build_mrf()
                    request = self._begin_request(seed, "map", deadline_seconds)
                    root.annotate(request_id=request.request_id)
                    if self.config.use_partitioning:
                        plan = self._prepare_partitioned(mrf, request)
                        search = self._search_partitioned
                    else:
                        plan = self._prepare_monolithic(mrf, request)
                        search = self._search_monolithic
                self._snapshot_session_phases(request)
                self._enter_search()
            try:
                with self.tracer.span("search"):
                    return search(plan, mrf, grounding, request)
            finally:
                self._finish_request(plan)

    def _serve_marginal(
        self, seed: Optional[int], sampler_factory, submitted_at: float = 0.0
    ) -> InferenceResult:
        """One marginal request: serialized setup, then search outside the lock."""
        with self.tracer.span("request", kind="marginal") as root:
            if submitted_at:
                self.tracer.record_span("admission", submitted_at, self.tracer.now())
            with self._lock:
                with self.tracer.span("setup"):
                    grounding = self.ground()
                    mrf = self.build_mrf()
                    request = self._begin_request(seed, "marginal", None)
                    root.annotate(request_id=request.request_id)
                    plan = self._prepare_marginal(request, sampler_factory)
                self._snapshot_session_phases(request)
                self._enter_search()
            try:
                with self.tracer.span("search"):
                    return self._search_marginal(plan, mrf, grounding, request)
            finally:
                self._finish_request(plan)

    def _prepare_partitioned(self, mrf: MRF, request: InferenceRequest) -> _RequestPlan:
        """Assemble a partitioned-MAP plan (runs under the session lock)."""
        config = self.config
        decomposition = self.detect_components()
        size_bound = self._size_bound()
        small_components, oversized = self._split_components(decomposition, size_bound)
        plan = _RequestPlan(
            decomposition=decomposition,
            size_bound=size_bound,
            small=small_components,
            oversized=oversized,
        )

        # Batch loading of the in-budget components (I/O accounting only) —
        # charged to the request, like every per-request database access.
        with request.timer.measure("loading"), self.tracer.span(
            "loading", components=len(small_components)
        ):
            if small_components:
                budget = size_bound if size_bound is not None else float(mrf.size() + 1)
                loader = BatchLoader(self.database, budget, self.memory_model)
                mark = self.database.clock.now()
                plan.load_plan = loader.load(small_components, batched=True)
                request.db_simulated += self.database.clock.now() - mark

        if small_components:
            with self.tracer.span("pool-checkout"):
                plan.pool = self._pool_for(small_components)
            plan.options = WalkSATOptions(
                max_flips=config.max_flips,
                max_tries=config.max_tries,
                noise=config.noise,
                deadline_seconds=request.deadline_seconds,
                trace_label="tuffy",
                kernel_backend=config.kernel_backend,
            )
            # A fresh searcher per request: its options and RNG are
            # request-specific, so it must never be shared.
            plan.searcher = ComponentAwareWalkSAT(
                options=plan.options,
                rng=request.rng,
                workers=config.workers,
                cost_model=config.cost_model,
                parallel_backend=config.parallel_backend,
                dispatch=config.parallel_dispatch,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            resolved = resolve_parallel_backend(
                config.parallel_backend,
                workers=config.workers,
                task_count=len(small_components),
            )
            if resolved != "processes":
                # In-process backends reuse kernel states across warm
                # requests via the lease; the processes backend keeps the
                # equivalent cache inside each pool worker.
                key = ("components", config.kernel_backend)
                with self.tracer.span(
                    "lease-checkout", backend=config.kernel_backend
                ) as lease_span:
                    states = self._state_lease.checkout(
                        key,
                        lambda: [
                            make_search_state(component, backend=config.kernel_backend)
                            for component in small_components
                        ],
                    )
                    if len(states) != len(small_components):
                        states = [
                            make_search_state(component, backend=config.kernel_backend)
                            for component in small_components
                        ]
                    lease_span.annotate(states=len(states))
                plan.lease_key = key
                plan.leased_value = states
        return plan

    def _prepare_monolithic(self, mrf: MRF, request: InferenceRequest) -> _RequestPlan:
        """Assemble a monolithic (Tuffy-p) plan (runs under the session lock)."""
        config = self.config
        options = WalkSATOptions(
            max_flips=config.max_flips,
            max_tries=config.max_tries,
            noise=config.noise,
            target_cost=config.target_cost,
            deadline_seconds=request.deadline_seconds,
            trace_label="tuffy-p",
            kernel_backend=config.kernel_backend,
        )
        # Warm path: reuse the full-MRF kernel state across requests via
        # the lease.  Safe for bit-parity because attempt 0 of
        # run_on_state fully rewrites it (randomize with random_restarts,
        # reset otherwise); safe for concurrency because checkout is
        # exclusive — an interleaved request builds its own state.
        key = ("monolithic", config.kernel_backend)
        state = self._state_lease.checkout(
            key, lambda: make_search_state(mrf, None, backend=options.kernel_backend)
        )
        return _RequestPlan(lease_key=key, leased_value=state, options=options)

    def _prepare_marginal(
        self, request: InferenceRequest, sampler_factory
    ) -> _RequestPlan:
        """Assemble an MC-SAT plan (runs under the session lock)."""
        config = self.config
        factory = sampler_factory if sampler_factory is not None else MCSat
        sampler = factory(
            MCSatOptions(
                samples=config.mcsat_samples,
                burn_in=config.mcsat_burn_in,
                kernel_backend=config.kernel_backend,
                samplesat=SampleSATOptions(kernel_backend=config.kernel_backend),
            ),
            request.rng,
        )
        decomposition = (
            self.detect_components() if config.use_partitioning else None
        )
        plan = _RequestPlan(decomposition=decomposition, sampler=sampler)
        if decomposition is not None and decomposition.component_count > 1:
            plan.pool = self._pool_for(decomposition.components)
        return plan

    def _search_partitioned(
        self,
        plan: _RequestPlan,
        mrf: MRF,
        grounding: GroundingResult,
        request: InferenceRequest,
    ) -> InferenceResult:
        """Tuffy: component-aware search, with Algorithm 3 for oversized parts."""
        config = self.config
        assignment: Dict[int, bool] = {}
        total_cost = grounding.clauses.evidence_violation_cost
        total_flips = 0
        traces: List[TimeCostTrace] = []
        simulated_search_seconds = 0.0
        peak_state_units = 0
        steals = 0
        shm_shipped = 0
        pickle_shipped = 0

        with request.timer.measure("search"):
            if plan.small:
                component_outcome = plan.searcher.run(
                    plan.small,
                    total_flips=config.max_flips,
                    pool=plan.pool,
                    local_states=plan.leased_value,
                    request_id=request.request_id,
                )
                assignment.update(component_outcome.best_assignment)
                total_cost += component_outcome.best_cost
                total_flips += component_outcome.flips
                steals = component_outcome.steals
                shm_shipped = component_outcome.shm_shipped
                pickle_shipped = component_outcome.pickle_shipped
                traces.append(component_outcome.trace)
                simulated_search_seconds += (
                    component_outcome.parallel_simulated_seconds
                    if config.workers > 1
                    else component_outcome.simulated_seconds
                )
                if plan.load_plan is not None:
                    peak_state_units = int(
                        max(peak_state_units, plan.load_plan.peak_batch_size())
                    )
                else:
                    peak_state_units = max(
                        peak_state_units,
                        max((c.size() for c in plan.small), default=0),
                    )

            for index, component in enumerate(plan.oversized):
                partitioner = GreedyPartitioner(
                    plan.size_bound if plan.size_bound is not None else math.inf
                )
                partitioning = partitioner.partition(component)
                # Partition-parallel first pass + Gauss-Seidel cut repair.
                # The conditioned partition MRFs are fresh objects per call,
                # so the persistent pool (packed from the session's
                # components) is never lent here.
                outcome = gauss_seidel_refine(
                    component,
                    partitioning.atom_partitions,
                    options=WalkSATOptions(
                        max_flips=config.max_flips,
                        noise=config.noise,
                        trace_label=f"gauss-seidel-{index}",
                        kernel_backend=config.kernel_backend,
                    ),
                    rng=request.rng.spawn(1000 + index),
                    rounds=config.gauss_seidel_rounds,
                    clock=SimulatedClock(config.cost_model),
                    parallel_backend=config.parallel_backend,
                    workers=config.workers,
                    dispatch=config.parallel_dispatch,
                )
                assignment.update(outcome.best_assignment)
                total_cost += outcome.best_cost
                total_flips += outcome.flips
                traces.append(outcome.trace)
                simulated_search_seconds += outcome.trace.final_time
                largest_partition = max(
                    partitioning.sizes(component), default=component.size()
                )
                peak_state_units = max(peak_state_units, largest_partition)

        trace = merge_traces(traces, label="tuffy")
        trace.grounding_seconds = self._database_simulated(request)
        result = InferenceResult(
            label="tuffy",
            assignment=assignment,
            cost=total_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            flips=total_flips,
            component_count=plan.decomposition.component_count,
            phase_seconds=self._phase_seconds(request),
            simulated_seconds=self._database_simulated(request)
            + simulated_search_seconds,
            trace=trace,
            memory=self.memory_model.snapshot(),
            peak_memory_bytes=config.bytes_per_state_unit * max(peak_state_units, 1),
        )
        self._log_request(
            request,
            result,
            steals=steals,
            shm_shipped=shm_shipped,
            pickle_shipped=pickle_shipped,
        )
        return result

    def _search_monolithic(
        self,
        plan: _RequestPlan,
        mrf: MRF,
        grounding: GroundingResult,
        request: InferenceRequest,
    ) -> InferenceResult:
        """Tuffy-p: one WalkSAT over the whole MRF (no partitioning)."""
        config = self.config
        clock = SimulatedClock(config.cost_model)
        with request.timer.measure("search"):
            searcher = WalkSAT(plan.options, request.rng, clock)
            outcome = searcher.run_on_state(plan.leased_value, None)
        trace = outcome.trace
        trace.grounding_seconds = self._database_simulated(request)
        peak_state_bytes = config.bytes_per_state_unit * mrf.size()
        result = InferenceResult(
            label="tuffy-p",
            assignment=outcome.best_assignment,
            cost=outcome.best_cost + grounding.clauses.evidence_violation_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            flips=outcome.flips,
            component_count=1,
            phase_seconds=self._phase_seconds(request),
            simulated_seconds=self._database_simulated(request) + clock.now(),
            trace=trace,
            memory=self.memory_model.snapshot(),
            peak_memory_bytes=peak_state_bytes,
        )
        self._log_request(request, result)
        return result

    def _search_marginal(
        self,
        plan: _RequestPlan,
        mrf: MRF,
        grounding: GroundingResult,
        request: InferenceRequest,
    ) -> InferenceResult:
        """MC-SAT over the components (or the whole MRF)."""
        config = self.config
        decomposition = plan.decomposition
        with request.timer.measure("search"):
            if decomposition is not None and decomposition.component_count > 1:
                marginals = plan.sampler.run_components(
                    decomposition.components,
                    parallel_backend=config.parallel_backend,
                    workers=config.workers,
                    pool=plan.pool,
                    dispatch=config.parallel_dispatch,
                    request_id=request.request_id,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
            else:
                marginals = plan.sampler.run(mrf)
        assignment = marginals.most_likely()
        cost = assignment_cost(mrf, assignment, hard_as_infinite=False)
        # With partitioning disabled the decomposition is *not* computed for
        # this request; reuse one an earlier request already paid for, else
        # report the single monolithic search graph.
        if decomposition is not None:
            component_count = decomposition.component_count
        elif self.components is not None:
            component_count = self.components.component_count
        else:
            component_count = 1
        result = InferenceResult(
            label="tuffy-mcsat",
            assignment=assignment,
            cost=cost + grounding.clauses.evidence_violation_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            component_count=component_count,
            phase_seconds=self._phase_seconds(request),
            simulated_seconds=self._database_simulated(request),
            memory=self.memory_model.snapshot(),
            marginals=marginals,
        )
        self._log_request(request, result)
        return result

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------

    def _admission_executor(self) -> ThreadPoolExecutor:
        """The lazily-created request executor (admission width = config).

        Refuses after :meth:`close`: the finalizer has already torn the
        executor and pool down, so a late submit would silently recreate
        both with nothing left to ever shut them down again.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit a request to a closed EngineSession")
            executor = self._pool_holder.get("executor")
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=self.config.max_inflight_requests,
                    thread_name_prefix="session-request",
                )
                self._pool_holder["executor"] = executor
            return executor

    def _begin_request(
        self, seed: Optional[int], kind: str, deadline_seconds: Optional[float]
    ) -> InferenceRequest:
        """Open a request context (runs under the session lock)."""
        request_seed = self.config.seed if seed is None else seed
        self.stats.requests += 1
        self.metrics.increment("session.requests")
        if kind == "map":
            self.stats.map_requests += 1
            self.metrics.increment("session.map_requests")
        else:
            self.stats.marginal_requests += 1
            self.metrics.increment("session.marginal_requests")
        self._next_request_id += 1
        return InferenceRequest(
            seed=request_seed,
            rng=RandomSource(request_seed),
            request_id=self._next_request_id,
            kind=kind,
            deadline_seconds=(
                self.config.deadline_seconds
                if deadline_seconds is None
                else deadline_seconds
            ),
            ground_mark=self._ground_clock_mark,
            session_phases=dict(self.timer.breakdown()),
        )

    def _enter_search(self) -> None:
        """Count this request as in-flight (still under the session lock)."""
        with self._search_gate:
            self._active_searches += 1

    def _finish_request(self, plan: Optional[_RequestPlan]) -> None:
        """Check leased state back in and release the in-flight slot.

        Check-in happens *before* the slot release: a re-ground waiting in
        :meth:`_drain_searches` proceeds only after the lease is whole
        again, so its ``invalidate`` drops every state.
        """
        if plan is not None and plan.lease_key is not None:
            self._state_lease.checkin(plan.lease_key, plan.leased_value)
        with self._search_gate:
            self._active_searches -= 1
            self._search_gate.notify_all()

    def _drain_searches(self) -> None:
        """Wait until no search is in flight (called holding the session lock).

        The finish path (:meth:`_finish_request`) never takes the session
        lock, so waiting here while holding it cannot deadlock.
        """
        with self._search_gate:
            while self._active_searches:
                self._search_gate.wait()

    def _log_request(
        self,
        request: InferenceRequest,
        result: InferenceResult,
        steals: int = 0,
        shm_shipped: int = 0,
        pickle_shipped: int = 0,
    ) -> None:
        """Fold one finished request into the log and the metrics registry.

        Sanctioned plumbing for the request-scoped search methods: it
        mutates only the bounded request log and the (thread-safe)
        metrics registry — telemetry no other request ever reads back
        into its inference path.
        """
        phases = dict(result.phase_seconds)
        self._request_log.append(
            {
                "request_id": request.request_id,
                "kind": request.kind,
                "seed": request.seed,
                "cost": result.cost,
                "flips": result.flips,
                "components": result.component_count,
                "phase_seconds": phases,
                "simulated_seconds": result.simulated_seconds,
                "steals": steals,
                "shm_shipped": shm_shipped,
                "pickle_shipped": pickle_shipped,
            }
        )
        for phase, seconds in phases.items():
            self.metrics.observe(f"request.phase.{phase}", seconds)
        self.metrics.observe("request.simulated_seconds", result.simulated_seconds)

    def request_log(self) -> List[Dict[str, object]]:
        """Summaries of recently finished requests, oldest first.

        Bounded (the session keeps the last 64); each entry carries the
        request's phase seconds, result-shipping split (shared-memory vs
        pickled) and steal count — the rows behind the CLI's
        ``--session-concurrent`` summary table.
        """
        return list(self._request_log)

    def metrics_snapshot(self) -> MetricsRegistry:
        """Refresh the session/io gauges and return the metrics registry.

        Counters and histograms accumulate live; the gauges mirror
        session stats and the database's I/O statistics at call time.
        """
        stats = self.stats
        self.metrics.set_gauge("session.pool_launches", float(stats.pool_launches))
        self.metrics.set_gauge(
            "session.components_adopted", float(stats.components_adopted)
        )
        self.metrics.set_gauge(
            "session.components_rebuilt", float(stats.components_rebuilt)
        )
        for name, value in self.database.io_statistics().as_dict().items():
            self.metrics.set_gauge(f"io.{name}", float(value))
        return self.metrics

    def _database_simulated(self, request: InferenceRequest) -> float:
        """Simulated database seconds visible to this request.

        The grounding share (captured at admission) plus whatever this
        request itself charged to the database clock during loading — so
        request N sees the same value a cold run with the same seed
        would, even when other requests advance the shared clock
        concurrently.
        """
        return request.ground_mark + request.db_simulated

    def _snapshot_session_phases(self, request: InferenceRequest) -> None:
        """Re-snapshot the session timer at the end of this request's setup.

        Runs under the session lock, after plan preparation: session
        phases this request itself triggered — ``component_detection``
        on a fresh grounding — land in its phase report, while phases a
        *later* request records (a concurrent re-ground) stay out.
        """
        request.session_phases = dict(self.timer.breakdown())

    def _phase_seconds(self, request: InferenceRequest) -> Dict[str, float]:
        """Session phases as of this request's setup + request phases."""
        return {**request.session_phases, **request.timer.breakdown()}

    def _bottom_up_grounder(self) -> BottomUpGrounder:
        if self._grounder is None:
            config = self.config
            self._grounder = BottomUpGrounder(
                database=self.database,
                optimizer_options=config.optimizer_options,
                merge_duplicates=config.merge_duplicate_clauses,
                memory_model=self.memory_model,
                execution_backend=config.execution_backend,
                enable_replay_cache=config.delta_grounding,
            )
        return self._grounder

    def _invalidate_derived(self) -> None:
        """Drop grounding-derived caches after a (re)ground.

        The old decomposition is kept around so :meth:`detect_components`
        can adopt unchanged components; the pool is torn down immediately —
        its shared-memory buffers were packed from the old components and
        are never repacked in place.  Safe against in-flight requests
        because :meth:`ground` drains them first.
        """
        self.mrf = None
        self._previous_components = self.components
        self.components = None
        self._split = None
        self._state_lease.invalidate()
        pool = self._pool_holder["pool"]
        if pool is not None:
            self._pool_holder["pool"] = None
            pool.shutdown()

    def _adopt_components(self, decomposition: ComponentDecomposition) -> None:
        """Swap in old component MRFs whose structure is unchanged.

        Adoption preserves the old objects' adjacency/flat-view caches.
        Bit-parity is unaffected: a component's search depends only on its
        clause literals and weights, which the signature pins exactly.
        """
        previous = self._previous_components
        self._previous_components = None
        if previous is None:
            return
        by_signature = {
            self._component_signature(component): component
            for component in previous.components
        }
        for index, component in enumerate(decomposition.components):
            adopted = by_signature.get(self._component_signature(component))
            if adopted is not None:
                decomposition.components[index] = adopted
                self.stats.components_adopted += 1
            else:
                self.stats.components_rebuilt += 1

    @staticmethod
    def _component_signature(component: MRF):
        return (
            tuple(component.atom_ids),
            tuple(
                (clause.literals, clause.weight) for clause in component.clauses
            ),
        )

    def _split_components(
        self, decomposition: ComponentDecomposition, size_bound: Optional[float]
    ) -> Tuple[List[MRF], List[MRF]]:
        """The small/oversized split, cached with stable list identity.

        When nothing is oversized the "small" list *is*
        ``decomposition.components`` — the same object every request — so
        the pool's ``matches()`` check stays warm and the MAP and
        marginal paths share one pool.
        """
        if self._split is None:
            oversized: List[MRF] = []
            small: List[MRF] = []
            for component in decomposition.components:
                if size_bound is not None and component.size() > size_bound:
                    oversized.append(component)
                else:
                    small.append(component)
            if not oversized:
                small = decomposition.components
            self._split = (small, oversized)
        return self._split

    def _pool_for(self, components: List[MRF]) -> Optional[WorkerPool]:
        """The persistent pool for these components, or ``None``.

        Lends a pool only when the backend actually resolves to
        ``processes`` for this task count and ``persistent_pool`` is on.
        A pool packed from a different component list is torn down and a
        fresh one forked (never repacked in place) — but only after every
        in-flight search has drained: a concurrently admitted request may
        still be reading the old pool's shared-memory result regions, and
        ``shutdown`` destroys them (the same guard :meth:`ground` applies
        before :meth:`_invalidate_derived`).  Setup is serialized under
        the session lock and the caller has not yet entered its own
        search, so the drain cannot wait on itself.  The pool is packed
        with one result bank per admissible request so interleaved
        requests ship results through disjoint shared-memory regions.
        """
        config = self.config
        if not config.persistent_pool:
            return None
        resolved = resolve_parallel_backend(
            config.parallel_backend,
            workers=config.workers,
            task_count=len(components),
        )
        if resolved != "processes":
            return None
        pool = self._pool_holder["pool"]
        if pool is not None and pool.matches(components):
            return pool
        if pool is not None:
            self._drain_searches()
            self._pool_holder["pool"] = None
            pool.shutdown()
        pool = WorkerPool(
            components,
            config.workers,
            result_banks=config.max_inflight_requests,
            metrics=self.metrics,
        )
        self._pool_holder["pool"] = pool
        self.stats.pool_launches += 1
        return pool

    def _size_bound(self) -> Optional[float]:
        """Translate the memory budget into a partition size bound (in units)."""
        if self.config.memory_budget_bytes is None:
            return None
        return max(
            self.config.memory_budget_bytes / self.config.bytes_per_state_unit, 1.0
        )
