"""Long-lived engine sessions: the warm request path.

A cold :class:`~repro.core.engine.TuffyEngine` run pays for everything on
every call: grounding, MRF construction, component detection, kernel-state
allocation and — on the ``processes`` backend — forking a worker pool and
packing the shared-memory buffers.  :class:`EngineSession` splits that
into *session-lived* state (database, atom registry, grounding result,
MRF, component decomposition, persistent :class:`~repro.parallel.pool.WorkerPool`)
and *per-request* state (:class:`InferenceRequest`: seed, RNG, timer,
simulated clock), so repeated MAP or marginal requests reuse everything
that has not changed.

Determinism contract
--------------------
A warm request with seed ``S`` is bit-identical — assignments, costs,
flips, marginals — to a cold engine run with seed ``S``, on every
``parallel_backend`` and worker count (``tests/test_session_parity.py``).
This holds because every piece of reused state is either immutable
between requests (the grounding result, the component MRFs) or fully
rewritten before use (WalkSAT rewrites a reused kernel state at attempt 0
via ``randomize``/``reset``; each request draws a fresh
``RandomSource(seed)``).  The *first* request also matches the cold run's
simulated seconds exactly; later requests may report fewer, because the
simulated buffer cache absorbs repeated clause-table scans — less I/O is
the point of the warm path, and the deterministic search clock is
unchanged.

Delta-grounding
---------------
:meth:`add_evidence` mutates the program *and* the session's registry in
lockstep, bumping only the touched predicate's version counter.  The next
:meth:`ground` then replays every clause whose predicates are unchanged
from the grounder's replay cache and re-runs only the affected relational
queries (:class:`~repro.grounding.bottom_up.GroundingDeltaReport` records
the split).  Components whose atoms and clauses are unchanged are adopted
from the previous decomposition so their caches survive the delta.

The evidence-delta determinism contract: the registry's state is a pure
function of (the program at first registry build, the ordered
:meth:`add_evidence` calls).  A comparator must *replay the same call
sequence* on a fresh session — building a cold engine from the final
program text would register the delta atoms in a different order and get
different atom ids.

Pool lifecycle
--------------
The persistent pool is keyed on the component list it was packed from
(identity per element).  A pool is never repacked in place — a grounding
change tears it down and the next request forks a fresh one (the
``fork-pool-lifecycle`` analysis rule enforces the never-repack rule).
Unclosed sessions shut their pool down at garbage collection via
``weakref.finalize``; call :meth:`close` (or use the session as a context
manager) for deterministic teardown.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import InferenceConfig
from repro.core.program import MLNProgram
from repro.core.results import InferenceResult
from repro.grounding.atoms import AtomRegistry
from repro.grounding.bottom_up import BottomUpGrounder, GroundingDeltaReport
from repro.grounding.lazy import active_closure
from repro.grounding.result import GroundingResult
from repro.grounding.top_down import TopDownGrounder
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.samplesat import SampleSATOptions
from repro.inference.state import SearchState, make_search_state
from repro.inference.tracing import TimeCostTrace, merge_traces
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.components import ComponentDecomposition, connected_components
from repro.mrf.cost import assignment_cost
from repro.mrf.graph import MRF
from repro.parallel import resolve_parallel_backend
from repro.parallel.merge import gauss_seidel_refine
from repro.parallel.pool import WorkerPool
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.loader import BatchLoader
from repro.rdbms.database import Database
from repro.utils.clock import SimulatedClock
from repro.utils.memory import MemoryModel
from repro.utils.rng import RandomSource
from repro.utils.timer import Timer


def _shutdown_holder(holder: Dict[str, Optional[WorkerPool]]) -> None:
    """GC-time pool teardown (module-level so ``finalize`` holds no session ref)."""
    pool = holder.get("pool")
    if pool is not None:
        holder["pool"] = None
        pool.shutdown()


@dataclass
class SessionStats:
    """Counters describing how much work the session reused vs redid."""

    requests: int = 0
    map_requests: int = 0
    marginal_requests: int = 0
    ground_runs: int = 0
    delta_ground_runs: int = 0
    pool_launches: int = 0
    components_adopted: int = 0
    components_rebuilt: int = 0


@dataclass
class InferenceRequest:
    """Per-request state: nothing in here survives to the next request."""

    seed: int
    rng: RandomSource
    timer: Timer = field(default_factory=Timer)
    started_clock: float = 0.0


class EngineSession:
    """Long-lived inference state shared by a sequence of requests.

    Owns the database, atom registry, grounding result, MRF, component
    decomposition and (on the ``processes`` backend) the persistent worker
    pool; :class:`~repro.core.engine.TuffyEngine` is a thin per-request
    driver over one of these.
    """

    def __init__(
        self,
        program: MLNProgram,
        config: Optional[InferenceConfig] = None,
        database: Optional[Database] = None,
    ) -> None:
        self.program = program
        self.config = config or InferenceConfig()
        self.database = database or Database(
            clock=SimulatedClock(self.config.cost_model),
            optimizer_options=self.config.optimizer_options,
            execution_backend=self.config.execution_backend,
        )
        self.memory_model = MemoryModel()
        self.timer = Timer()
        self.stats = SessionStats()
        self.grounding_result: Optional[GroundingResult] = None
        self.mrf: Optional[MRF] = None
        self.components: Optional[ComponentDecomposition] = None
        self._previous_components: Optional[ComponentDecomposition] = None
        self.last_ground_report: Optional[GroundingDeltaReport] = None

        self._registry: Optional[AtomRegistry] = None
        self._grounder: Optional[BottomUpGrounder] = None
        self._ground_version: Optional[int] = None
        #: Simulated seconds the database clock had accumulated when the
        #: current grounding finished — the grounding share of every warm
        #: request's simulated time.
        self._ground_clock_mark: float = 0.0
        self._split: Optional[Tuple[List[MRF], List[MRF]]] = None
        self._searcher: Optional[ComponentAwareWalkSAT] = None
        self._mono_state: Optional[SearchState] = None
        # The pool lives in a plain dict so ``weakref.finalize`` can tear it
        # down after the session is collected without keeping the session
        # alive (tests rarely close engines explicitly).
        self._pool_holder: Dict[str, Optional[WorkerPool]] = {"pool": None}
        self._finalizer = weakref.finalize(self, _shutdown_holder, self._pool_holder)
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear down the persistent pool.  Idempotent."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evidence deltas
    # ------------------------------------------------------------------

    def registry(self) -> AtomRegistry:
        """The session's atom registry (built lazily from the program)."""
        if self._registry is None:
            self._registry = self.program.build_atom_registry()
        return self._registry

    def add_evidence(self, predicate_name: str, arguments, truth: bool = True):
        """Add one evidence fact to the program *and* the live registry.

        Forces the registry into existence first so its state is a pure
        function of (program at first build, ordered ``add_evidence``
        calls) — the replayable contract the delta parity suite relies on.
        The touched predicate's version counter is bumped; the next
        :meth:`ground` re-runs only the clauses reading that predicate.
        """
        registry = self.registry()
        atom = self.program.add_evidence(predicate_name, arguments, truth)
        registry.register(atom, truth)
        return atom

    # ------------------------------------------------------------------
    # Pipeline stages (session-lived, delta-aware)
    # ------------------------------------------------------------------

    def ground(self) -> GroundingResult:
        """Ground the program, replaying unchanged clauses from cache."""
        registry = self.registry()
        if (
            self.grounding_result is not None
            and self._ground_version == registry.version
        ):
            return self.grounding_result
        config = self.config
        is_delta = self.grounding_result is not None
        clauses = self.program.clauses()
        with self.timer.measure("grounding"):
            if config.grounding_strategy == "bottom-up":
                result = self._bottom_up_grounder().ground(clauses, registry)
                self.last_ground_report = self._bottom_up_grounder().last_report
            else:
                grounder = TopDownGrounder(
                    merge_duplicates=config.merge_duplicate_clauses,
                    memory_model=self.memory_model,
                )
                result = grounder.ground(clauses, registry)
                self.last_ground_report = None
        if config.use_lazy_closure:
            closure = active_closure(result.clauses)
            result = GroundingResult(
                atoms=result.atoms,
                clauses=closure.as_store(),
                seconds=result.seconds,
                per_clause=result.per_clause,
                intermediate_tuples=result.intermediate_tuples,
                strategy=result.strategy,
            )
        self.grounding_result = result
        self._ground_version = registry.version
        self._ground_clock_mark = self.database.clock.now()
        self.stats.ground_runs += 1
        if is_delta:
            self.stats.delta_ground_runs += 1
        self._invalidate_derived()
        return result

    def build_mrf(self) -> MRF:
        """Build (and cache) the ground MRF for the current grounding."""
        grounding = self.ground()
        if self.mrf is None:
            self.mrf = MRF.from_store(grounding.clauses)
        return self.mrf

    def detect_components(self) -> ComponentDecomposition:
        """Detect components, adopting unchanged ones from the last grounding."""
        mrf = self.build_mrf()
        if self.components is None:
            with self.timer.measure("component_detection"):
                decomposition = connected_components(mrf)
            self._adopt_components(decomposition)
            self.components = decomposition
        return self.components

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def run_map(self, seed: Optional[int] = None) -> InferenceResult:
        """Run one MAP request against the warm session state."""
        config = self.config
        grounding = self.ground()
        mrf = self.build_mrf()
        request = self._begin_request(seed)
        self.stats.map_requests += 1
        if config.use_partitioning:
            return self._run_partitioned(mrf, grounding, request)
        return self._run_monolithic(mrf, grounding, request)

    def run_marginal(
        self, seed: Optional[int] = None, sampler_factory=None
    ) -> InferenceResult:
        """Run one MC-SAT marginal request against the warm session state.

        ``sampler_factory`` defaults to :class:`~repro.inference.mcsat.MCSat`;
        the engine passes its module-global so tests can monkeypatch it.
        """
        config = self.config
        factory = sampler_factory if sampler_factory is not None else MCSat
        grounding = self.ground()
        mrf = self.build_mrf()
        request = self._begin_request(seed)
        self.stats.marginal_requests += 1
        sampler = factory(
            MCSatOptions(
                samples=config.mcsat_samples,
                burn_in=config.mcsat_burn_in,
                kernel_backend=config.kernel_backend,
                samplesat=SampleSATOptions(kernel_backend=config.kernel_backend),
            ),
            request.rng,
        )
        decomposition = self.detect_components() if config.use_partitioning else None
        with request.timer.measure("search"):
            if decomposition is not None and decomposition.component_count > 1:
                pool = self._pool_for(decomposition.components)
                marginals = sampler.run_components(
                    decomposition.components,
                    parallel_backend=config.parallel_backend,
                    workers=config.workers,
                    pool=pool,
                    dispatch=config.parallel_dispatch,
                )
            else:
                marginals = sampler.run(mrf)
        assignment = marginals.most_likely()
        cost = assignment_cost(mrf, assignment, hard_as_infinite=False)
        # With partitioning disabled the decomposition is *not* computed for
        # this request; reuse one an earlier request already paid for, else
        # report the single monolithic search graph.
        if decomposition is not None:
            component_count = decomposition.component_count
        elif self.components is not None:
            component_count = self.components.component_count
        else:
            component_count = 1
        return InferenceResult(
            label="tuffy-mcsat",
            assignment=assignment,
            cost=cost + grounding.clauses.evidence_violation_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            component_count=component_count,
            phase_seconds=self._phase_seconds(request),
            simulated_seconds=self._database_simulated(request),
            memory=self.memory_model.snapshot(),
            marginals=marginals,
        )

    # ------------------------------------------------------------------
    # MAP internals
    # ------------------------------------------------------------------

    def _run_monolithic(
        self, mrf: MRF, grounding: GroundingResult, request: InferenceRequest
    ) -> InferenceResult:
        """Tuffy-p: one WalkSAT over the whole MRF (no partitioning)."""
        config = self.config
        clock = SimulatedClock(config.cost_model)
        options = WalkSATOptions(
            max_flips=config.max_flips,
            max_tries=config.max_tries,
            noise=config.noise,
            target_cost=config.target_cost,
            deadline_seconds=config.deadline_seconds,
            trace_label="tuffy-p",
            kernel_backend=config.kernel_backend,
        )
        with request.timer.measure("search"):
            # Warm path: reuse the full-MRF kernel state across requests.
            # Safe for bit-parity because attempt 0 of run_on_state fully
            # rewrites it (randomize with random_restarts, reset otherwise).
            if self._mono_state is None:
                self._mono_state = make_search_state(
                    mrf, None, backend=options.kernel_backend
                )
            searcher = WalkSAT(options, request.rng, clock)
            outcome = searcher.run_on_state(self._mono_state, None)
        trace = outcome.trace
        trace.grounding_seconds = self._database_simulated(request)
        peak_state_bytes = config.bytes_per_state_unit * mrf.size()
        return InferenceResult(
            label="tuffy-p",
            assignment=outcome.best_assignment,
            cost=outcome.best_cost + grounding.clauses.evidence_violation_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            flips=outcome.flips,
            component_count=1,
            phase_seconds=self._phase_seconds(request),
            simulated_seconds=self._database_simulated(request) + clock.now(),
            trace=trace,
            memory=self.memory_model.snapshot(),
            peak_memory_bytes=peak_state_bytes,
        )

    def _run_partitioned(
        self, mrf: MRF, grounding: GroundingResult, request: InferenceRequest
    ) -> InferenceResult:
        """Tuffy: component-aware search, with Algorithm 3 for oversized parts."""
        config = self.config
        decomposition = self.detect_components()
        size_bound = self._size_bound()
        small_components, oversized = self._split_components(decomposition, size_bound)

        # Batch loading of the in-budget components (I/O accounting only) —
        # charged to the request, like every per-request database access.
        with request.timer.measure("loading"):
            load_plan = None
            if small_components:
                budget = size_bound if size_bound is not None else float(mrf.size() + 1)
                loader = BatchLoader(self.database, budget, self.memory_model)
                load_plan = loader.load(small_components, batched=True)

        assignment: Dict[int, bool] = {}
        total_cost = grounding.clauses.evidence_violation_cost
        total_flips = 0
        traces: List[TimeCostTrace] = []
        simulated_search_seconds = 0.0
        peak_state_units = 0

        with request.timer.measure("search"):
            if small_components:
                searcher = self._component_searcher()
                searcher.options = WalkSATOptions(
                    max_flips=config.max_flips,
                    max_tries=config.max_tries,
                    noise=config.noise,
                    deadline_seconds=config.deadline_seconds,
                    trace_label="tuffy",
                    kernel_backend=config.kernel_backend,
                )
                searcher.rng = request.rng
                pool = self._pool_for(small_components)
                component_outcome = searcher.run(
                    small_components, total_flips=config.max_flips, pool=pool
                )
                assignment.update(component_outcome.best_assignment)
                total_cost += component_outcome.best_cost
                total_flips += component_outcome.flips
                traces.append(component_outcome.trace)
                simulated_search_seconds += (
                    component_outcome.parallel_simulated_seconds
                    if config.workers > 1
                    else component_outcome.simulated_seconds
                )
                if load_plan is not None:
                    peak_state_units = int(
                        max(peak_state_units, load_plan.peak_batch_size())
                    )
                else:
                    peak_state_units = max(
                        peak_state_units,
                        max((c.size() for c in small_components), default=0),
                    )

            for index, component in enumerate(oversized):
                partitioner = GreedyPartitioner(
                    size_bound if size_bound is not None else math.inf
                )
                partitioning = partitioner.partition(component)
                # Partition-parallel first pass + Gauss-Seidel cut repair.
                # The conditioned partition MRFs are fresh objects per call,
                # so the persistent pool (packed from the session's
                # components) is never lent here.
                outcome = gauss_seidel_refine(
                    component,
                    partitioning.atom_partitions,
                    options=WalkSATOptions(
                        max_flips=config.max_flips,
                        noise=config.noise,
                        trace_label=f"gauss-seidel-{index}",
                        kernel_backend=config.kernel_backend,
                    ),
                    rng=request.rng.spawn(1000 + index),
                    rounds=config.gauss_seidel_rounds,
                    clock=SimulatedClock(config.cost_model),
                    parallel_backend=config.parallel_backend,
                    workers=config.workers,
                    dispatch=config.parallel_dispatch,
                )
                assignment.update(outcome.best_assignment)
                total_cost += outcome.best_cost
                total_flips += outcome.flips
                traces.append(outcome.trace)
                simulated_search_seconds += outcome.trace.final_time
                largest_partition = max(
                    partitioning.sizes(component), default=component.size()
                )
                peak_state_units = max(peak_state_units, largest_partition)

        trace = merge_traces(traces, label="tuffy")
        trace.grounding_seconds = self._database_simulated(request)
        return InferenceResult(
            label="tuffy",
            assignment=assignment,
            cost=total_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            flips=total_flips,
            component_count=decomposition.component_count,
            phase_seconds=self._phase_seconds(request),
            simulated_seconds=self._database_simulated(request)
            + simulated_search_seconds,
            trace=trace,
            memory=self.memory_model.snapshot(),
            peak_memory_bytes=config.bytes_per_state_unit * max(peak_state_units, 1),
        )

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------

    def _begin_request(self, seed: Optional[int]) -> InferenceRequest:
        request_seed = self.config.seed if seed is None else seed
        self.stats.requests += 1
        return InferenceRequest(
            seed=request_seed,
            rng=RandomSource(request_seed),
            started_clock=self.database.clock.now(),
        )

    def _database_simulated(self, request: InferenceRequest) -> float:
        """Simulated database seconds visible to this request.

        The grounding share (paid once per grounding) plus whatever this
        request itself charged to the database clock — so request N sees
        the same value a cold run with the same seed would.
        """
        delta = self.database.clock.now() - request.started_clock
        return self._ground_clock_mark + delta

    def _phase_seconds(self, request: InferenceRequest) -> Dict[str, float]:
        """Session phases (grounding, component detection) + request phases."""
        return {**self.timer.breakdown(), **request.timer.breakdown()}

    def _bottom_up_grounder(self) -> BottomUpGrounder:
        if self._grounder is None:
            config = self.config
            self._grounder = BottomUpGrounder(
                database=self.database,
                optimizer_options=config.optimizer_options,
                merge_duplicates=config.merge_duplicate_clauses,
                memory_model=self.memory_model,
                execution_backend=config.execution_backend,
                enable_replay_cache=config.delta_grounding,
            )
        return self._grounder

    def _invalidate_derived(self) -> None:
        """Drop grounding-derived caches after a (re)ground.

        The old decomposition is kept around so :meth:`detect_components`
        can adopt unchanged components; the pool is torn down immediately —
        its shared-memory buffers were packed from the old components and
        are never repacked in place.
        """
        self.mrf = None
        self._previous_components = self.components
        self.components = None
        self._split = None
        self._mono_state = None
        pool = self._pool_holder["pool"]
        if pool is not None:
            self._pool_holder["pool"] = None
            pool.shutdown()

    def _adopt_components(self, decomposition: ComponentDecomposition) -> None:
        """Swap in old component MRFs whose structure is unchanged.

        Adoption preserves the old objects' adjacency/flat-view caches.
        Bit-parity is unaffected: a component's search depends only on its
        clause literals and weights, which the signature pins exactly.
        """
        previous = self._previous_components
        self._previous_components = None
        if previous is None:
            return
        by_signature = {
            self._component_signature(component): component
            for component in previous.components
        }
        for index, component in enumerate(decomposition.components):
            adopted = by_signature.get(self._component_signature(component))
            if adopted is not None:
                decomposition.components[index] = adopted
                self.stats.components_adopted += 1
            else:
                self.stats.components_rebuilt += 1

    @staticmethod
    def _component_signature(component: MRF):
        return (
            tuple(component.atom_ids),
            tuple(
                (clause.literals, clause.weight) for clause in component.clauses
            ),
        )

    def _split_components(
        self, decomposition: ComponentDecomposition, size_bound: Optional[float]
    ) -> Tuple[List[MRF], List[MRF]]:
        """The small/oversized split, cached with stable list identity.

        When nothing is oversized the "small" list *is*
        ``decomposition.components`` — the same object every request — so
        the component searcher's identity-keyed state cache and the pool's
        ``matches()`` check stay warm, and the MAP and marginal paths share
        one pool.
        """
        if self._split is None:
            oversized: List[MRF] = []
            small: List[MRF] = []
            for component in decomposition.components:
                if size_bound is not None and component.size() > size_bound:
                    oversized.append(component)
                else:
                    small.append(component)
            if not oversized:
                small = decomposition.components
            self._split = (small, oversized)
        return self._split

    def _component_searcher(self) -> ComponentAwareWalkSAT:
        if self._searcher is None:
            config = self.config
            self._searcher = ComponentAwareWalkSAT(
                options=WalkSATOptions(kernel_backend=config.kernel_backend),
                rng=RandomSource(config.seed),
                workers=config.workers,
                cost_model=config.cost_model,
                parallel_backend=config.parallel_backend,
                dispatch=config.parallel_dispatch,
            )
        return self._searcher

    def _pool_for(self, components: List[MRF]) -> Optional[WorkerPool]:
        """The persistent pool for these components, or ``None``.

        Lends a pool only when the backend actually resolves to
        ``processes`` for this task count and ``persistent_pool`` is on.
        A pool packed from a different component list is torn down and a
        fresh one forked (never repacked in place).
        """
        config = self.config
        if not config.persistent_pool:
            return None
        resolved = resolve_parallel_backend(
            config.parallel_backend,
            workers=config.workers,
            task_count=len(components),
        )
        if resolved != "processes":
            return None
        pool = self._pool_holder["pool"]
        if pool is not None and pool.matches(components):
            return pool
        if pool is not None:
            self._pool_holder["pool"] = None
            pool.shutdown()
        pool = WorkerPool(components, config.workers)
        self._pool_holder["pool"] = pool
        self.stats.pool_launches += 1
        return pool

    def _size_bound(self) -> Optional[float]:
        """Translate the memory budget into a partition size bound (in units)."""
        if self.config.memory_budget_bytes is None:
            return None
        return max(
            self.config.memory_budget_bytes / self.config.bytes_per_state_unit, 1.0
        )
