"""The MLN program: predicates, rules, evidence, domains and query atoms.

An :class:`MLNProgram` can be built programmatically (the dataset generators
do this) or parsed from Alchemy-style text (see
:mod:`repro.logic.parser`).  It owns everything the grounding phase needs:

* predicate declarations (closed-world evidence predicates vs open-world
  query predicates),
* weighted first-order rules, converted on demand to clausal form,
* typed constant domains, accumulated from evidence and query atoms,
* the evidence database, and
* the set of query atoms — either listed explicitly or generated as the
  Cartesian product of the argument domains of each open-world predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.errors import ProgramError
from repro.grounding.atoms import AtomRegistry
from repro.logic.clauses import ClauseSet, HARD_WEIGHT, WeightedClause
from repro.logic.domains import DomainRegistry
from repro.logic.formulas import Formula, to_clausal_form
from repro.logic.parser import MLNParser, ParsedRule
from repro.logic.predicates import GroundAtom, Predicate, PredicateRegistry, make_atom
from repro.logic.terms import Constant


@dataclass
class DatasetStatistics:
    """The quantities reported in Table 1 of the paper."""

    relations: int
    rules: int
    entities: int
    evidence_tuples: int
    query_atoms: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "#relations": self.relations,
            "#rules": self.rules,
            "#entities": self.entities,
            "#evidence tuples": self.evidence_tuples,
            "#query atoms": self.query_atoms,
        }


@dataclass
class EvidenceAtom:
    """One evidence fact."""

    atom: GroundAtom
    truth: bool


class MLNProgram:
    """A Markov Logic Network program."""

    def __init__(self, name: str = "mln") -> None:
        self.name = name
        self.predicates = PredicateRegistry()
        self.domains = DomainRegistry()
        self.rules: List[ParsedRule] = []
        self._direct_clauses: List[WeightedClause] = []
        self.evidence: List[EvidenceAtom] = []
        self.query_atoms: List[GroundAtom] = []
        self._clause_cache: Optional[ClauseSet] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_text(
        cls,
        program_text: str,
        evidence_text: str = "",
        name: str = "mln",
    ) -> "MLNProgram":
        """Parse a program (and optionally evidence) from Alchemy-style text."""
        parser = MLNParser()
        parsed = parser.parse_program(program_text)
        program = cls(name)
        for predicate in parsed.predicates:
            program.declare_predicate(predicate)
        for index, rule in enumerate(parsed.rules, start=1):
            rule.name = rule.name or f"R{index}"
            program.rules.append(rule)
            program._clause_cache = None
        if evidence_text:
            for fact in parser.parse_evidence(evidence_text):
                program.add_evidence(fact.predicate_name, fact.arguments, fact.truth)
        return program

    def declare_predicate(self, predicate: Predicate) -> Predicate:
        """Register a predicate declaration."""
        return self.predicates.declare(predicate)

    def declare(self, name: str, arg_types: Sequence[str], closed_world: bool = False) -> Predicate:
        """Shorthand for declaring a predicate from its parts."""
        return self.declare_predicate(Predicate(name, tuple(arg_types), closed_world))

    def add_rule(self, formula: Formula, weight: float, name: Optional[str] = None) -> None:
        """Add a first-order rule as a formula with a weight."""
        rule_name = name or f"R{len(self.rules) + len(self._direct_clauses) + 1}"
        self.rules.append(ParsedRule(formula, weight, rule_name))
        self._clause_cache = None

    def add_hard_rule(self, formula: Formula, name: Optional[str] = None) -> None:
        self.add_rule(formula, HARD_WEIGHT, name)

    def add_rule_text(self, text: str) -> None:
        """Add a rule written in the Alchemy-style syntax."""
        parser = MLNParser()
        for predicate in self.predicates:
            parser._predicates[predicate.name] = predicate
        rule = parser.parse_rule_text(text)
        rule.name = f"R{len(self.rules) + len(self._direct_clauses) + 1}"
        self.rules.append(rule)
        self._clause_cache = None

    def add_clause(self, clause: WeightedClause) -> None:
        """Add a rule already in clausal form (used by dataset generators)."""
        self._direct_clauses.append(clause)
        self._clause_cache = None

    def add_evidence(
        self, predicate_name: str, arguments: Sequence[str], truth: bool = True
    ) -> GroundAtom:
        """Add one evidence fact, updating the typed domains."""
        predicate = self._predicate(predicate_name)
        self._register_constants(predicate, arguments)
        atom = make_atom(predicate, arguments)
        self.evidence.append(EvidenceAtom(atom, truth))
        return atom

    def remove_evidence(
        self, predicate_name: str, arguments: Sequence[str]
    ) -> GroundAtom:
        """Retract one evidence fact (the mirror of :meth:`add_evidence`).

        The fact must exist.  The typed domains keep any constants the
        fact introduced — domains only ever grow, matching the closed
        finite-domain semantics (the constants may appear in other facts
        or query atoms).
        """
        predicate = self._predicate(predicate_name)
        atom = make_atom(predicate, arguments)
        for index, fact in enumerate(self.evidence):
            if fact.atom == atom:
                del self.evidence[index]
                return fact.atom
        raise ProgramError(
            f"no evidence fact {atom} to remove"
        )

    def add_query_atom(self, predicate_name: str, arguments: Sequence[str]) -> GroundAtom:
        """Explicitly add one query atom (an unknown the search must decide)."""
        predicate = self._predicate(predicate_name)
        if predicate.closed_world:
            raise ProgramError(
                f"predicate {predicate_name!r} is closed-world; it cannot have query atoms"
            )
        self._register_constants(predicate, arguments)
        atom = make_atom(predicate, arguments)
        self.query_atoms.append(atom)
        return atom

    def add_constants(self, type_name: str, values: Iterable[str]) -> None:
        """Add constants to a typed domain without adding evidence."""
        self.domains.add_constants(type_name, values)

    # ------------------------------------------------------------------
    # Derived artifacts
    # ------------------------------------------------------------------

    def clauses(self) -> ClauseSet:
        """The program in clausal form (cached)."""
        if self._clause_cache is None:
            clause_set = ClauseSet()
            for rule in self.rules:
                converted = to_clausal_form(
                    rule.formula, rule.weight, rule.name, self.domains
                )
                clause_set.extend(converted)
            clause_set.extend(self._direct_clauses)
            self._clause_cache = clause_set
        return self._clause_cache

    def build_atom_registry(self, generate_query_atoms: str = "cartesian") -> AtomRegistry:
        """Build the atom registry the grounders consume.

        ``generate_query_atoms`` is ``"cartesian"`` (every open-world
        predicate gets one atom per combination of its argument domains —
        matching the closed finite-domain semantics of MLNs) or
        ``"explicit"`` (only atoms added via :meth:`add_query_atom`).
        """
        if generate_query_atoms not in ("cartesian", "explicit"):
            raise ProgramError(
                f"unknown query atom generation mode {generate_query_atoms!r}"
            )
        registry = AtomRegistry()
        for fact in self.evidence:
            registry.register(fact.atom, fact.truth)
        for atom in self.query_atoms:
            registry.register(atom, None)
        if generate_query_atoms == "cartesian":
            for predicate in self.predicates.query_predicates():
                self._register_cartesian_atoms(predicate, registry)
        return registry

    def _register_cartesian_atoms(self, predicate: Predicate, registry: AtomRegistry) -> None:
        domains = []
        for type_name in predicate.arg_types:
            if type_name not in self.domains or len(self.domains[type_name]) == 0:
                # No constants of this type are known: the predicate has no
                # possible groundings beyond those already registered.
                return
            domains.append([constant.value for constant in self.domains[type_name]])
        for values in product(*domains):
            registry.register(make_atom(predicate, values), None)

    def statistics(self) -> DatasetStatistics:
        """Dataset statistics in the shape of the paper's Table 1."""
        registry = self.build_atom_registry()
        return DatasetStatistics(
            relations=len(self.predicates),
            rules=len(self.rules) + len(self._direct_clauses),
            entities=self.domains.total_constants(),
            evidence_tuples=len(self.evidence),
            query_atoms=len(registry.query_atom_ids()),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _predicate(self, name: str) -> Predicate:
        try:
            return self.predicates.get(name)
        except KeyError as error:
            raise ProgramError(str(error)) from error

    def _register_constants(self, predicate: Predicate, arguments: Sequence[str]) -> None:
        if len(arguments) != predicate.arity:
            raise ProgramError(
                f"predicate {predicate.name} expects {predicate.arity} arguments, "
                f"got {len(arguments)}"
            )
        for type_name, value in zip(predicate.arg_types, arguments):
            self.domains.add_constant(type_name, Constant(value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MLNProgram({self.name!r}, predicates={len(self.predicates)}, "
            f"rules={len(self.rules) + len(self._direct_clauses)}, "
            f"evidence={len(self.evidence)})"
        )
