"""The Tuffy engine: grounding + partitioning + search, end to end.

The engine reproduces the pipeline of the paper's Section 3:

1. **Grounding** (Section 3.1): the program's clauses are grounded bottom-up
   by compiling each clause to a relational query executed by the embedded
   engine (or top-down, for the Alchemy-style baseline).
2. **Hybrid architecture** (Section 3.2): the ground clauses are loaded from
   the clause table into memory and searched with WalkSAT.
3. **Partitioning** (Sections 3.3-3.4): the MRF is split into connected
   components (union-find); components are packed into memory-budget-sized
   batches for loading, searched independently with a weighted round-robin
   flip budget (optionally in parallel), and components that still exceed
   the memory budget are further split with the greedy partitioner and
   searched with Gauss-Seidel sweeps.

Since the session refactor the engine is a thin per-request driver over an
:class:`~repro.core.session.EngineSession`, which owns every piece of
long-lived state (database, atom registry, grounding result, MRF,
component decomposition, persistent worker pool).  Repeated
:meth:`TuffyEngine.run_map` / :meth:`TuffyEngine.run_marginal` calls are
warm requests: they reuse the session state and are bit-identical to a
cold run with the same seed (``tests/test_session_parity.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import InferenceConfig
from repro.core.program import MLNProgram
from repro.core.results import InferenceResult
from repro.core.session import EngineSession, SessionStats
from repro.grounding.result import GroundingResult
from repro.inference.mcsat import MCSat
from repro.mrf.components import ComponentDecomposition
from repro.mrf.graph import MRF
from repro.rdbms.database import Database
from repro.utils.memory import MemoryModel
from repro.utils.timer import Timer


class TuffyEngine:
    """End-to-end MAP and marginal inference with the Tuffy architecture."""

    def __init__(
        self,
        program: MLNProgram,
        config: Optional[InferenceConfig] = None,
        database: Optional[Database] = None,
    ) -> None:
        self.program = program
        self.session = EngineSession(program, config, database)
        self.config = self.session.config

    # ------------------------------------------------------------------
    # Session-owned state (exposed for compatibility and inspection)
    # ------------------------------------------------------------------

    @property
    def database(self) -> Database:
        return self.session.database

    @property
    def memory_model(self) -> MemoryModel:
        return self.session.memory_model

    @property
    def timer(self) -> Timer:
        return self.session.timer

    @property
    def grounding_result(self) -> Optional[GroundingResult]:
        return self.session.grounding_result

    @property
    def mrf(self) -> Optional[MRF]:
        return self.session.mrf

    @property
    def components(self) -> Optional[ComponentDecomposition]:
        return self.session.components

    @property
    def stats(self) -> SessionStats:
        return self.session.stats

    @property
    def tracer(self):
        """The session's injected tracer (``NullTracer`` unless enabled)."""
        return self.session.tracer

    @property
    def metrics(self):
        """The session's metrics registry (always live)."""
        return self.session.metrics

    def request_log(self):
        """Bounded summaries of recently finished requests."""
        return self.session.request_log()

    def metrics_snapshot(self):
        """Refresh session/io gauges and return the metrics registry."""
        return self.session.metrics_snapshot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear down the session's persistent worker pool.  Idempotent."""
        self.session.close()

    def __enter__(self) -> "TuffyEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def ground(self) -> GroundingResult:
        """Run (and cache) the grounding phase."""
        return self.session.ground()

    def build_mrf(self) -> MRF:
        """Build (and cache) the ground MRF."""
        return self.session.build_mrf()

    def detect_components(self) -> ComponentDecomposition:
        """Detect (and cache) the MRF's connected components."""
        return self.session.detect_components()

    # ------------------------------------------------------------------
    # Evidence deltas
    # ------------------------------------------------------------------

    def add_evidence(self, predicate_name: str, arguments, truth: bool = True):
        """Add one evidence fact; the next request delta-regrounds."""
        return self.session.add_evidence(predicate_name, arguments, truth)

    def remove_evidence(self, predicate_name: str, arguments):
        """Retract one evidence fact; the next request delta-regrounds."""
        return self.session.remove_evidence(predicate_name, arguments)

    # ------------------------------------------------------------------
    # Inference requests
    # ------------------------------------------------------------------

    def run_map(
        self, seed: Optional[int] = None, deadline_seconds: Optional[float] = None
    ) -> InferenceResult:
        """Run the full MAP pipeline and return the best world found.

        ``seed`` overrides ``config.seed`` and ``deadline_seconds``
        overrides ``config.deadline_seconds`` for this request only;
        repeated calls are warm requests on the underlying session.
        """
        return self.session.run_map(seed=seed, deadline_seconds=deadline_seconds)

    def submit_map(
        self, seed: Optional[int] = None, deadline_seconds: Optional[float] = None
    ):
        """Admit one MAP request without blocking; returns a future.

        Up to ``config.max_inflight_requests`` submitted requests run
        interleaved over the session; each result is bit-identical to
        running the same request alone.
        """
        return self.session.submit_map(seed=seed, deadline_seconds=deadline_seconds)

    def submit_marginal(self, seed: Optional[int] = None):
        """Admit one MC-SAT marginal request without blocking; returns a future."""
        return self.session.submit_marginal(seed=seed, sampler_factory=MCSat)

    def run_marginal(self, seed: Optional[int] = None) -> InferenceResult:
        """Estimate marginal probabilities with MC-SAT (Appendix A.5).

        Like the MAP pipeline, marginal inference decomposes over the
        MRF's connected components (each is an independent MC-SAT chain
        with a seed-derived RNG stream): with partitioning enabled the
        components are sampled through the ``parallel_backend`` seam, so
        multi-component workloads use every worker.  Results are
        bit-identical across parallel backends and worker counts.
        """
        # The module-global is looked up at call time so tests can
        # monkeypatch ``repro.core.engine.MCSat``.
        return self.session.run_marginal(seed=seed, sampler_factory=MCSat)
