"""The Tuffy engine: grounding + partitioning + search, end to end.

The engine reproduces the pipeline of the paper's Section 3:

1. **Grounding** (Section 3.1): the program's clauses are grounded bottom-up
   by compiling each clause to a relational query executed by the embedded
   engine (or top-down, for the Alchemy-style baseline).
2. **Hybrid architecture** (Section 3.2): the ground clauses are loaded from
   the clause table into memory and searched with WalkSAT.
3. **Partitioning** (Sections 3.3-3.4): the MRF is split into connected
   components (union-find); components are packed into memory-budget-sized
   batches for loading, searched independently with a weighted round-robin
   flip budget (optionally in parallel), and components that still exceed
   the memory budget are further split with the greedy partitioner and
   searched with Gauss-Seidel sweeps.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.config import InferenceConfig
from repro.core.program import MLNProgram
from repro.core.results import InferenceResult
from repro.grounding.bottom_up import BottomUpGrounder
from repro.grounding.lazy import active_closure
from repro.grounding.result import GroundingResult
from repro.grounding.top_down import TopDownGrounder
from repro.inference.component_walksat import ComponentAwareWalkSAT
from repro.inference.mcsat import MCSat, MCSatOptions
from repro.parallel.merge import gauss_seidel_refine
from repro.inference.samplesat import SampleSATOptions
from repro.inference.tracing import TimeCostTrace, merge_traces
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.components import ComponentDecomposition, connected_components
from repro.mrf.graph import MRF
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.loader import BatchLoader
from repro.rdbms.database import Database
from repro.utils.clock import SimulatedClock
from repro.utils.memory import MemoryModel
from repro.utils.rng import RandomSource
from repro.utils.timer import Timer


class TuffyEngine:
    """End-to-end MAP and marginal inference with the Tuffy architecture."""

    def __init__(
        self,
        program: MLNProgram,
        config: Optional[InferenceConfig] = None,
        database: Optional[Database] = None,
    ) -> None:
        self.program = program
        self.config = config or InferenceConfig()
        self.database = database or Database(
            clock=SimulatedClock(self.config.cost_model),
            optimizer_options=self.config.optimizer_options,
            execution_backend=self.config.execution_backend,
        )
        self.memory_model = MemoryModel()
        self.timer = Timer()
        self.grounding_result: Optional[GroundingResult] = None
        self.mrf: Optional[MRF] = None
        self.components: Optional[ComponentDecomposition] = None

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def ground(self) -> GroundingResult:
        """Run (and cache) the grounding phase."""
        if self.grounding_result is not None:
            return self.grounding_result
        config = self.config
        clauses = self.program.clauses()
        atoms = self.program.build_atom_registry()
        with self.timer.measure("grounding"):
            if config.grounding_strategy == "bottom-up":
                grounder = BottomUpGrounder(
                    database=self.database,
                    optimizer_options=config.optimizer_options,
                    merge_duplicates=config.merge_duplicate_clauses,
                    memory_model=self.memory_model,
                    execution_backend=config.execution_backend,
                )
                result = grounder.ground(clauses, atoms)
            else:
                grounder = TopDownGrounder(
                    merge_duplicates=config.merge_duplicate_clauses,
                    memory_model=self.memory_model,
                )
                result = grounder.ground(clauses, atoms)
        if config.use_lazy_closure:
            closure = active_closure(result.clauses)
            result = GroundingResult(
                atoms=result.atoms,
                clauses=closure.as_store(),
                seconds=result.seconds,
                per_clause=result.per_clause,
                intermediate_tuples=result.intermediate_tuples,
                strategy=result.strategy,
            )
        self.grounding_result = result
        return result

    def build_mrf(self) -> MRF:
        """Build (and cache) the ground MRF."""
        if self.mrf is None:
            grounding = self.ground()
            self.mrf = MRF.from_store(grounding.clauses)
        return self.mrf

    def detect_components(self) -> ComponentDecomposition:
        """Detect (and cache) the MRF's connected components."""
        if self.components is None:
            mrf = self.build_mrf()
            with self.timer.measure("component_detection"):
                self.components = connected_components(mrf)
        return self.components

    # ------------------------------------------------------------------
    # MAP inference
    # ------------------------------------------------------------------

    def run_map(self) -> InferenceResult:
        """Run the full MAP pipeline and return the best world found."""
        config = self.config
        grounding = self.ground()
        mrf = self.build_mrf()
        rng = RandomSource(config.seed)

        if config.use_partitioning:
            result = self._run_partitioned(mrf, grounding, rng)
        else:
            result = self._run_monolithic(mrf, grounding, rng)
        return result

    def _run_monolithic(
        self, mrf: MRF, grounding: GroundingResult, rng: RandomSource
    ) -> InferenceResult:
        """Tuffy-p: one WalkSAT over the whole MRF (no partitioning)."""
        config = self.config
        clock = SimulatedClock(config.cost_model)
        options = WalkSATOptions(
            max_flips=config.max_flips,
            max_tries=config.max_tries,
            noise=config.noise,
            target_cost=config.target_cost,
            deadline_seconds=config.deadline_seconds,
            trace_label="tuffy-p",
            kernel_backend=config.kernel_backend,
        )
        with self.timer.measure("search"):
            outcome = WalkSAT(options, rng, clock).run(mrf)
        trace = outcome.trace
        trace.grounding_seconds = self.database.clock.now()
        peak_state_bytes = config.bytes_per_state_unit * mrf.size()
        return InferenceResult(
            label="tuffy-p",
            assignment=outcome.best_assignment,
            cost=outcome.best_cost + grounding.clauses.evidence_violation_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            flips=outcome.flips,
            component_count=1,
            phase_seconds=self.timer.breakdown(),
            simulated_seconds=self.database.clock.now() + clock.now(),
            trace=trace,
            memory=self.memory_model.snapshot(),
            peak_memory_bytes=peak_state_bytes,
        )

    def _run_partitioned(
        self, mrf: MRF, grounding: GroundingResult, rng: RandomSource
    ) -> InferenceResult:
        """Tuffy: component-aware search, with Algorithm 3 for oversized parts."""
        config = self.config
        decomposition = self.detect_components()
        size_bound = self._size_bound()

        small_components: List[MRF] = []
        oversized: List[MRF] = []
        for component in decomposition.components:
            if size_bound is not None and component.size() > size_bound:
                oversized.append(component)
            else:
                small_components.append(component)

        # Batch loading of the in-budget components (I/O accounting only).
        with self.timer.measure("loading"):
            load_plan = None
            if small_components:
                budget = size_bound if size_bound is not None else float(mrf.size() + 1)
                loader = BatchLoader(self.database, budget, self.memory_model)
                load_plan = loader.load(small_components, batched=True)

        assignment: Dict[int, bool] = {}
        total_cost = grounding.clauses.evidence_violation_cost
        total_flips = 0
        traces: List[TimeCostTrace] = []
        simulated_search_seconds = 0.0
        peak_state_units = 0

        with self.timer.measure("search"):
            if small_components:
                searcher = ComponentAwareWalkSAT(
                    options=WalkSATOptions(
                        max_flips=config.max_flips,
                        max_tries=config.max_tries,
                        noise=config.noise,
                        deadline_seconds=config.deadline_seconds,
                        trace_label="tuffy",
                        kernel_backend=config.kernel_backend,
                    ),
                    rng=rng,
                    workers=config.workers,
                    cost_model=config.cost_model,
                    parallel_backend=config.parallel_backend,
                )
                component_outcome = searcher.run(small_components, total_flips=config.max_flips)
                assignment.update(component_outcome.best_assignment)
                total_cost += component_outcome.best_cost
                total_flips += component_outcome.flips
                traces.append(component_outcome.trace)
                simulated_search_seconds += (
                    component_outcome.parallel_simulated_seconds
                    if config.workers > 1
                    else component_outcome.simulated_seconds
                )
                if load_plan is not None:
                    peak_state_units = int(max(peak_state_units, load_plan.peak_batch_size()))
                else:
                    peak_state_units = max(
                        peak_state_units,
                        max((c.size() for c in small_components), default=0),
                    )

            for index, component in enumerate(oversized):
                partitioner = GreedyPartitioner(size_bound if size_bound is not None else math.inf)
                partitioning = partitioner.partition(component)
                # Partition-parallel first pass + Gauss-Seidel cut repair
                # (deterministic on every parallel backend; see
                # repro.parallel.merge.gauss_seidel_refine).
                outcome = gauss_seidel_refine(
                    component,
                    partitioning.atom_partitions,
                    options=WalkSATOptions(
                        max_flips=config.max_flips,
                        noise=config.noise,
                        trace_label=f"gauss-seidel-{index}",
                        kernel_backend=config.kernel_backend,
                    ),
                    rng=rng.spawn(1000 + index),
                    rounds=config.gauss_seidel_rounds,
                    clock=SimulatedClock(config.cost_model),
                    parallel_backend=config.parallel_backend,
                    workers=config.workers,
                )
                assignment.update(outcome.best_assignment)
                total_cost += outcome.best_cost
                total_flips += outcome.flips
                traces.append(outcome.trace)
                simulated_search_seconds += outcome.trace.final_time
                largest_partition = max(
                    partitioning.sizes(component), default=component.size()
                )
                peak_state_units = max(peak_state_units, largest_partition)

        trace = merge_traces(traces, label="tuffy")
        trace.grounding_seconds = self.database.clock.now()
        return InferenceResult(
            label="tuffy",
            assignment=assignment,
            cost=total_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            flips=total_flips,
            component_count=decomposition.component_count,
            phase_seconds=self.timer.breakdown(),
            simulated_seconds=self.database.clock.now() + simulated_search_seconds,
            trace=trace,
            memory=self.memory_model.snapshot(),
            peak_memory_bytes=config.bytes_per_state_unit * max(peak_state_units, 1),
        )

    # ------------------------------------------------------------------
    # Marginal inference
    # ------------------------------------------------------------------

    def run_marginal(self) -> InferenceResult:
        """Estimate marginal probabilities with MC-SAT (Appendix A.5).

        Like the MAP pipeline, marginal inference decomposes over the
        MRF's connected components (each is an independent MC-SAT chain
        with a seed-derived RNG stream): with partitioning enabled the
        components are sampled through the ``parallel_backend`` seam, so
        multi-component workloads use every worker.  Results are
        bit-identical across parallel backends and worker counts.
        """
        config = self.config
        grounding = self.ground()
        mrf = self.build_mrf()
        sampler = MCSat(
            MCSatOptions(
                samples=config.mcsat_samples,
                burn_in=config.mcsat_burn_in,
                kernel_backend=config.kernel_backend,
                samplesat=SampleSATOptions(kernel_backend=config.kernel_backend),
            ),
            RandomSource(config.seed),
        )
        decomposition = (
            self.detect_components() if config.use_partitioning else None
        )
        with self.timer.measure("search"):
            if decomposition is not None and decomposition.component_count > 1:
                marginals = sampler.run_components(
                    decomposition.components,
                    parallel_backend=config.parallel_backend,
                    workers=config.workers,
                )
            else:
                marginals = sampler.run(mrf)
        assignment = marginals.most_likely()
        from repro.mrf.cost import assignment_cost

        cost = assignment_cost(mrf, assignment, hard_as_infinite=False)
        return InferenceResult(
            label="tuffy-mcsat",
            assignment=assignment,
            cost=cost + grounding.clauses.evidence_violation_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            component_count=self.detect_components().component_count,
            phase_seconds=self.timer.breakdown(),
            simulated_seconds=self.database.clock.now(),
            memory=self.memory_model.snapshot(),
            marginals=marginals,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _size_bound(self) -> Optional[float]:
        """Translate the memory budget into a partition size bound (in units)."""
        if self.config.memory_budget_bytes is None:
            return None
        return max(
            self.config.memory_budget_bytes / self.config.bytes_per_state_unit, 1.0
        )
