"""Inference results returned by the engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.grounding.atoms import AtomRegistry
from repro.grounding.result import GroundingResult
from repro.inference.mcsat import MarginalResult
from repro.inference.tracing import TimeCostTrace
from repro.logic.predicates import GroundAtom
from repro.utils.memory import MemoryReport


@dataclass
class InferenceResult:
    """The outcome of a MAP (or marginal) inference run.

    ``assignment`` maps atom ids to truth values for every query atom; the
    helpers below translate back to ground atoms via the atom registry.
    ``cost`` is the MLN cost of the returned world (evidence-violation
    constant included).  ``phase_seconds`` breaks the wall-clock time down by
    pipeline phase, and ``trace`` is the best-cost-over-time curve used by
    the figure benchmarks.
    """

    label: str
    assignment: Dict[int, bool]
    cost: float
    atoms: AtomRegistry
    grounding: GroundingResult
    flips: int = 0
    component_count: int = 1
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    simulated_seconds: float = 0.0
    trace: TimeCostTrace = field(default_factory=TimeCostTrace)
    memory: Optional[MemoryReport] = None
    peak_memory_bytes: int = 0
    marginals: Optional[MarginalResult] = None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def truth_of(self, predicate_name: str, arguments: List[str]) -> Optional[bool]:
        """Truth of a specific atom in the returned world.

        Evidence atoms return their evidence value; query atoms return the
        inferred value; unknown atoms return ``None``.
        """
        atom_id = self.atoms.lookup(predicate_name, arguments)
        if atom_id is None:
            return None
        record = self.atoms.record(atom_id)
        if record.truth is not None:
            return record.truth
        return self.assignment.get(atom_id, False)

    def true_atoms(self, predicate_name: Optional[str] = None) -> List[GroundAtom]:
        """Query atoms inferred true (optionally restricted to one predicate)."""
        result = []
        for atom_id, value in sorted(self.assignment.items()):
            if not value:
                continue
            record = self.atoms.record(atom_id)
            if record.truth is not None:
                continue
            if predicate_name is None or record.atom.predicate.name == predicate_name:
                result.append(record.atom)
        return result

    def query_assignment(self) -> Dict[GroundAtom, bool]:
        """The full inferred world over query atoms, keyed by ground atom."""
        result = {}
        for atom_id, value in self.assignment.items():
            record = self.atoms.record(atom_id)
            if record.truth is None:
                result[record.atom] = value
        return result

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def grounding_seconds(self) -> float:
        return self.phase_seconds.get("grounding", 0.0)

    @property
    def search_seconds(self) -> float:
        return self.phase_seconds.get("search", 0.0)

    @property
    def flips_per_second(self) -> float:
        search = self.search_seconds
        return self.flips / search if search > 0 else 0.0

    def summary(self) -> Dict[str, object]:
        """A flat summary used by reports and benchmark tables."""
        return {
            "label": self.label,
            "cost": self.cost,
            "flips": self.flips,
            "components": self.component_count,
            "atoms": len(self.atoms),
            "query_atoms": len(self.atoms.query_atom_ids()),
            "ground_clauses": self.grounding.ground_clause_count,
            "grounding_seconds": round(self.grounding_seconds, 4),
            "search_seconds": round(self.search_seconds, 4),
            "simulated_seconds": round(self.simulated_seconds, 4),
            "peak_memory_mb": round(self.peak_memory_bytes / (1024.0 * 1024.0), 3),
        }
