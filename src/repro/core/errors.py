"""Exception hierarchy of the public API."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library-specific exceptions."""


class ProgramError(ReproError):
    """Raised for malformed MLN programs (unknown predicates, bad arities...)."""


class ConfigurationError(ReproError):
    """Raised for invalid inference configurations."""


class GroundingError(ReproError):
    """Raised when the grounding phase cannot proceed."""


class SearchError(ReproError):
    """Raised when the search phase cannot proceed."""
