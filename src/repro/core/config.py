"""Inference configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.inference.state import KERNEL_BACKENDS
from repro.parallel import DISPATCH_MODES, PARALLEL_BACKENDS
from repro.rdbms.executor import EXECUTION_BACKENDS
from repro.rdbms.optimizer import OptimizerOptions
from repro.utils.clock import CostModel


@dataclass
class InferenceConfig:
    """All knobs of the Tuffy pipeline.

    Grounding
    ---------
    ``grounding_strategy`` is ``"bottom-up"`` (the Tuffy approach, default)
    or ``"top-down"`` (the Alchemy-style nested-loop baseline);
    ``optimizer_options`` exposes the relational planner's lesion knobs;
    ``execution_backend`` selects the relational engine's execution model
    (``"auto"`` engages the columnar batch engine above the measured
    table-size crossover; ``"row"`` / ``"columnar"`` force one — results
    are identical either way); ``use_lazy_closure`` applies the Appendix
    A.3 active closure to the ground clauses before search.

    Search
    ------
    ``max_flips`` is the total WalkSAT budget (shared across components with
    weighted round-robin), ``noise`` the random-flip probability,
    ``max_tries`` the number of restarts, ``use_partitioning`` toggles
    component-aware search (Tuffy vs Tuffy-p in the paper), and
    ``memory_budget_bytes`` — when set — bounds partition sizes, triggering
    Algorithm 3 plus Gauss-Seidel sweeps for components that exceed it.
    ``workers`` sets the number of parallel component searches and
    ``parallel_backend`` the vehicle that runs them (``"auto"`` engages
    the shared-memory multiprocess pool whenever there is parallelism to
    exploit — more than one worker and more than one component — and
    falls back to ``"serial"`` otherwise; ``"serial"`` / ``"threads"`` /
    ``"processes"`` force one).  ``parallel_dispatch`` selects the
    dispatch loop (``"steal"``, the default work-stealing cursor —
    workers pull the next largest-first component the moment they finish
    — or ``"wave"``, the legacy barrier scheduler kept as a benchmark
    baseline).  Results are bit-identical across parallel backends,
    dispatch modes and worker counts; only wall-clock time changes.
    When ``deadline_seconds`` is set, the components that count are
    decided by post-hoc bookkeeping over the per-component simulated
    costs (dispatch position ``p`` counts iff the summed costs of the
    positions before it stay under the deadline), so even the deadline
    outcome is identical across backends, dispatch modes and worker
    counts.
    ``kernel_backend`` selects the search-kernel implementation behind
    every search driver the engine constructs (WalkSAT, component search,
    Gauss-Seidel, MC-SAT and its SampleSAT states): ``"auto"`` engages the
    numpy-vectorized kernel above the measured MRF-size crossover,
    ``"flat"`` / ``"vectorized"`` force one — seeded results are
    bit-identical either way (mirroring ``execution_backend``).

    Marginal inference
    ------------------
    ``mcsat_samples`` / ``mcsat_burn_in`` control MC-SAT when
    :meth:`repro.core.engine.TuffyEngine.run_marginal` is used.

    Sessions
    --------
    Long-lived state reuse across requests on one
    :class:`~repro.core.session.EngineSession` (and therefore on one
    :class:`~repro.core.engine.TuffyEngine`, which owns a session):
    ``persistent_pool`` keeps the multiprocess worker pool alive between
    requests so repeated runs skip the fork + shared-memory repack and
    workers keep their per-component caches warm; ``delta_grounding``
    enables the per-predicate replay cache so an evidence delta re-grounds
    only the clauses touching changed predicates.  Both preserve the
    determinism contract: a warm request with seed S is bit-identical to a
    cold run with seed S.
    ``max_inflight_requests`` is the session's admission width: how many
    submitted requests (``submit_map`` / ``submit_marginal``) may be in
    flight at once, sharing the persistent pool, shared-memory result
    banks and kernel-state leases.  Every request's result is
    bit-identical whether it runs alone or interleaved — concurrency
    only changes wall-clock time.  The default of 1 serializes requests
    (the pre-admission behavior).

    Observability
    -------------
    ``tracing`` selects the session's tracer: ``"auto"`` (record iff
    ``trace_out`` is set), ``"on"`` (always record), ``"off"`` (the no-op
    ``NullTracer``).  Tracing is non-perturbing by contract — results are
    bit-identical traced or not (the obs parity suite proves it).
    ``trace_out`` writes the recorded span tree as Chrome trace-event
    JSON (loadable in Perfetto) when the run finishes; ``metrics_out``
    dumps the session's metrics registry (JSON when the path ends in
    ``.json``, text otherwise).
    """

    seed: int = 0
    # Grounding.
    grounding_strategy: str = "bottom-up"
    optimizer_options: OptimizerOptions = field(default_factory=OptimizerOptions)
    execution_backend: str = "auto"
    use_lazy_closure: bool = False
    merge_duplicate_clauses: bool = True
    # Search.
    max_flips: int = 100_000
    max_tries: int = 1
    noise: float = 0.5
    use_partitioning: bool = True
    memory_budget_bytes: Optional[int] = None
    bytes_per_state_unit: int = 64
    gauss_seidel_rounds: int = 3
    workers: int = 1
    parallel_backend: str = "auto"
    parallel_dispatch: str = "steal"
    target_cost: Optional[float] = None
    deadline_seconds: Optional[float] = None
    kernel_backend: str = "auto"
    # Marginal inference.
    mcsat_samples: int = 100
    mcsat_burn_in: int = 10
    # Sessions (warm request path).
    persistent_pool: bool = True
    delta_grounding: bool = True
    max_inflight_requests: int = 1
    # Observability.
    tracing: str = "auto"
    trace_out: Optional[str] = None
    metrics_out: Optional[str] = None
    # Cost model of the simulated clock.
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.grounding_strategy not in ("bottom-up", "top-down"):
            raise ConfigurationError(
                f"unknown grounding strategy {self.grounding_strategy!r}"
            )
        if self.execution_backend not in EXECUTION_BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {self.execution_backend!r}; "
                f"expected one of {EXECUTION_BACKENDS}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ConfigurationError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"expected one of {KERNEL_BACKENDS}"
            )
        if self.max_flips <= 0:
            raise ConfigurationError("max_flips must be positive")
        if not 0.0 <= self.noise <= 1.0:
            raise ConfigurationError("noise must be within [0, 1]")
        if self.workers <= 0:
            raise ConfigurationError("workers must be positive")
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise ConfigurationError(
                f"unknown parallel backend {self.parallel_backend!r}; "
                f"expected one of {PARALLEL_BACKENDS}"
            )
        if self.parallel_dispatch not in DISPATCH_MODES:
            raise ConfigurationError(
                f"unknown parallel dispatch {self.parallel_dispatch!r}; "
                f"expected one of {DISPATCH_MODES}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ConfigurationError("memory_budget_bytes must be positive when set")
        if self.gauss_seidel_rounds <= 0:
            raise ConfigurationError("gauss_seidel_rounds must be positive")
        if self.mcsat_samples <= 0:
            raise ConfigurationError("mcsat_samples must be positive")
        if self.max_inflight_requests <= 0:
            raise ConfigurationError("max_inflight_requests must be positive")
        if self.tracing not in ("auto", "on", "off"):
            raise ConfigurationError(
                f"unknown tracing mode {self.tracing!r}; "
                "expected one of ('auto', 'on', 'off')"
            )

    @property
    def tracing_enabled(self) -> bool:
        """Whether the session should record spans (vs the no-op tracer)."""
        if self.tracing == "on":
            return True
        if self.tracing == "off":
            return False
        return self.trace_out is not None
