"""Terms: constants and variables.

MLN formulas are function-free first-order formulas, so the only terms are
constants (domain elements such as ``'P1'`` or ``'Joe'``) and variables
(``p``, ``c1``).  Both are immutable and hashable so they can be used as
dictionary keys during grounding and substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Constant:
    """A domain constant, e.g. ``'P1'`` or ``'DB'``.

    ``value`` is kept as a string; typed domains map these strings to dense
    integer ids when building relational tables.
    """

    value: str

    def __str__(self) -> str:
        return str(self.value)

    @property
    def is_variable(self) -> bool:
        return False


@dataclass(frozen=True)
class Variable:
    """A universally (or existentially) quantified logical variable."""

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def is_variable(self) -> bool:
        return True


Term = Union[Constant, Variable]


def term_from_token(token: str) -> Term:
    """Interpret a textual token as a term, following Alchemy conventions.

    Tokens that are quoted, start with an upper-case letter or are numeric
    are treated as constants; everything else is a variable.  (Alchemy uses
    the same convention: lower-case identifiers are variables.)
    """
    stripped = token.strip()
    if not stripped:
        raise ValueError("empty term token")
    if stripped[0] in "\"'" and stripped[-1] in "\"'" and len(stripped) >= 2:
        return Constant(stripped[1:-1])
    if stripped[0].isupper() or stripped[0].isdigit():
        return Constant(stripped)
    return Variable(stripped)


def substitute(term: Term, binding: dict[Variable, Constant]) -> Term:
    """Apply a variable binding to a term.

    Unbound variables are returned unchanged, which lets callers apply
    partial substitutions during existential-quantifier handling.
    """
    if isinstance(term, Variable):
        return binding.get(term, term)
    return term


def is_ground(term: Term) -> bool:
    """True when the term contains no variables (i.e. it is a constant)."""
    return isinstance(term, Constant)
