"""Formula AST and conversion to clausal form.

Users (and the parser) express MLN rules the way the paper's Figure 1 does:
implications over predicate applications, possibly with equality constraints
(``c1 = c2``) and existential quantifiers in the consequent.  The grounding
and search layers, however, consume only weighted *clauses* (disjunctions of
literals).  This module provides:

* a small formula AST (:class:`PredicateFormula`, :class:`Negation`,
  :class:`Conjunction`, :class:`Disjunction`, :class:`Implication`,
  :class:`Equality`, :class:`Exists`), and
* :func:`to_clausal_form`, which eliminates implications, pushes negations
  inward, distributes disjunction over conjunction and expands existential
  quantifiers over the (finite) domains — producing one or more
  :class:`~repro.logic.clauses.WeightedClause` objects per input formula.

Weights of formulas that convert to several clauses are divided equally
between the clauses, which is the convention Alchemy uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.clauses import WeightedClause
from repro.logic.domains import DomainRegistry
from repro.logic.literals import Literal
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Term, Variable


class Formula:
    """Base class for formula AST nodes."""

    def variables(self) -> Tuple[Variable, ...]:
        raise NotImplementedError

    def __or__(self, other: "Formula") -> "Disjunction":
        return Disjunction((self, other))

    def __and__(self, other: "Formula") -> "Conjunction":
        return Conjunction((self, other))

    def __rshift__(self, other: "Formula") -> "Implication":
        """``premise >> conclusion`` builds an implication."""
        return Implication(self, other)

    def __invert__(self) -> "Negation":
        return Negation(self)


def _merge_variables(parts: Sequence[Formula]) -> Tuple[Variable, ...]:
    seen: List[Variable] = []
    for part in parts:
        for variable in part.variables():
            if variable not in seen:
                seen.append(variable)
    return tuple(seen)


@dataclass(frozen=True)
class PredicateFormula(Formula):
    """An atomic formula: a predicate applied to terms."""

    predicate: Predicate
    arguments: Tuple[Term, ...]

    def variables(self) -> Tuple[Variable, ...]:
        seen: List[Variable] = []
        for argument in self.arguments:
            if isinstance(argument, Variable) and argument not in seen:
                seen.append(argument)
        return tuple(seen)

    def __str__(self) -> str:
        args = ", ".join(str(argument) for argument in self.arguments)
        return f"{self.predicate.name}({args})"


@dataclass(frozen=True)
class Equality(Formula):
    """An equality constraint between two terms (``c1 = c2``)."""

    left: Term
    right: Term

    def variables(self) -> Tuple[Variable, ...]:
        seen: List[Variable] = []
        for term in (self.left, self.right):
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Negation(Formula):
    operand: Formula

    def variables(self) -> Tuple[Variable, ...]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class Conjunction(Formula):
    operands: Tuple[Formula, ...]

    def variables(self) -> Tuple[Variable, ...]:
        return _merge_variables(self.operands)

    def __str__(self) -> str:
        return " ^ ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Disjunction(Formula):
    operands: Tuple[Formula, ...]

    def variables(self) -> Tuple[Variable, ...]:
        return _merge_variables(self.operands)

    def __str__(self) -> str:
        return " v ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Implication(Formula):
    premise: Formula
    conclusion: Formula

    def variables(self) -> Tuple[Variable, ...]:
        return _merge_variables((self.premise, self.conclusion))

    def __str__(self) -> str:
        return f"({self.premise}) => ({self.conclusion})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one variable, e.g. ``EXIST x wrote(x, p)``."""

    variable: Variable
    body: Formula

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(v for v in self.body.variables() if v != self.variable)

    def __str__(self) -> str:
        return f"EXIST {self.variable} ({self.body})"


class FormulaConversionError(ValueError):
    """Raised when a formula cannot be converted to clausal form."""


# --------------------------------------------------------------------------
# Conversion to clausal form
# --------------------------------------------------------------------------


def _eliminate_implications(formula: Formula) -> Formula:
    if isinstance(formula, Implication):
        return Disjunction(
            (
                Negation(_eliminate_implications(formula.premise)),
                _eliminate_implications(formula.conclusion),
            )
        )
    if isinstance(formula, Negation):
        return Negation(_eliminate_implications(formula.operand))
    if isinstance(formula, Conjunction):
        return Conjunction(tuple(_eliminate_implications(op) for op in formula.operands))
    if isinstance(formula, Disjunction):
        return Disjunction(tuple(_eliminate_implications(op) for op in formula.operands))
    if isinstance(formula, Exists):
        return Exists(formula.variable, _eliminate_implications(formula.body))
    return formula


def _push_negations(formula: Formula, negated: bool = False) -> Formula:
    if isinstance(formula, Negation):
        return _push_negations(formula.operand, not negated)
    if isinstance(formula, Conjunction):
        operands = tuple(_push_negations(op, negated) for op in formula.operands)
        return Disjunction(operands) if negated else Conjunction(operands)
    if isinstance(formula, Disjunction):
        operands = tuple(_push_negations(op, negated) for op in formula.operands)
        return Conjunction(operands) if negated else Disjunction(operands)
    if isinstance(formula, Exists):
        if negated:
            # ¬∃x φ ≡ ∀x ¬φ; universal variables are implicit in MLN clauses.
            return _push_negations(formula.body, True)
        return Exists(formula.variable, _push_negations(formula.body, False))
    if isinstance(formula, (PredicateFormula, Equality)):
        return Negation(formula) if negated else formula
    raise FormulaConversionError(f"unsupported formula node: {formula!r}")


def _expand_existentials(
    formula: Formula, domains: Optional[DomainRegistry]
) -> Formula:
    """Replace ``EXIST x φ`` with a finite disjunction over x's domain.

    The variable's type is inferred from the first predicate argument
    position it occupies inside the body.  This mirrors how Tuffy grounds
    existential rules (the paper uses PostgreSQL array aggregation; with a
    fixed finite domain the expansion is equivalent).
    """
    if isinstance(formula, Exists):
        if domains is None:
            raise FormulaConversionError(
                "existential quantifier requires a DomainRegistry for expansion"
            )
        body = _expand_existentials(formula.body, domains)
        type_name = _infer_variable_type(body, formula.variable)
        if type_name is None or type_name not in domains:
            raise FormulaConversionError(
                f"cannot determine a finite domain for existential variable "
                f"{formula.variable}"
            )
        constants = domains[type_name].constants()
        if not constants:
            raise FormulaConversionError(
                f"domain {type_name!r} is empty; cannot expand existential"
            )
        expansions = tuple(
            _substitute_formula(body, {formula.variable: constant})
            for constant in constants
        )
        if len(expansions) == 1:
            return expansions[0]
        return Disjunction(expansions)
    if isinstance(formula, Negation):
        return Negation(_expand_existentials(formula.operand, domains))
    if isinstance(formula, Conjunction):
        return Conjunction(tuple(_expand_existentials(op, domains) for op in formula.operands))
    if isinstance(formula, Disjunction):
        return Disjunction(tuple(_expand_existentials(op, domains) for op in formula.operands))
    return formula


def _infer_variable_type(formula: Formula, variable: Variable) -> Optional[str]:
    if isinstance(formula, PredicateFormula):
        for position, argument in enumerate(formula.arguments):
            if argument == variable:
                return formula.predicate.arg_types[position]
        return None
    if isinstance(formula, (Negation,)):
        return _infer_variable_type(formula.operand, variable)
    if isinstance(formula, (Conjunction, Disjunction)):
        for operand in formula.operands:
            found = _infer_variable_type(operand, variable)
            if found is not None:
                return found
        return None
    if isinstance(formula, Exists):
        return _infer_variable_type(formula.body, variable)
    return None


def _substitute_formula(formula: Formula, binding: Dict[Variable, Constant]) -> Formula:
    if isinstance(formula, PredicateFormula):
        return PredicateFormula(
            formula.predicate,
            tuple(binding.get(a, a) if isinstance(a, Variable) else a for a in formula.arguments),
        )
    if isinstance(formula, Equality):
        left = binding.get(formula.left, formula.left) if isinstance(formula.left, Variable) else formula.left
        right = binding.get(formula.right, formula.right) if isinstance(formula.right, Variable) else formula.right
        return Equality(left, right)
    if isinstance(formula, Negation):
        return Negation(_substitute_formula(formula.operand, binding))
    if isinstance(formula, Conjunction):
        return Conjunction(tuple(_substitute_formula(op, binding) for op in formula.operands))
    if isinstance(formula, Disjunction):
        return Disjunction(tuple(_substitute_formula(op, binding) for op in formula.operands))
    if isinstance(formula, Exists):
        inner = {k: v for k, v in binding.items() if k != formula.variable}
        return Exists(formula.variable, _substitute_formula(formula.body, inner))
    raise FormulaConversionError(f"unsupported formula node: {formula!r}")


def _distribute(formula: Formula) -> List[List[Formula]]:
    """Return CNF as a list of clauses, each a list of atomic formulas.

    Atomic formulas at this stage are ``PredicateFormula``, ``Equality`` or
    a ``Negation`` directly wrapping one of those (negation-normal form is
    assumed to have been established already).
    """
    if isinstance(formula, Conjunction):
        clauses: List[List[Formula]] = []
        for operand in formula.operands:
            clauses.extend(_distribute(operand))
        return clauses
    if isinstance(formula, Disjunction):
        product: List[List[Formula]] = [[]]
        for operand in formula.operands:
            operand_clauses = _distribute(operand)
            product = [
                existing + addition
                for existing in product
                for addition in operand_clauses
            ]
        return product
    return [[formula]]


def _atomic_to_literal_or_equality(
    atomic: Formula,
) -> Tuple[Optional[Literal], Optional[Tuple[object, object, bool]]]:
    """Classify an atomic CNF entry as a literal or an (in)equality triple."""
    negated = False
    node = atomic
    if isinstance(node, Negation):
        negated = True
        node = node.operand
    if isinstance(node, PredicateFormula):
        return Literal(node.predicate, node.arguments, not negated), None
    if isinstance(node, Equality):
        return None, (node.left, node.right, not negated)
    raise FormulaConversionError(f"unexpected atomic formula {atomic!r}")


def to_clausal_form(
    formula: Formula,
    weight: float,
    name: Optional[str] = None,
    domains: Optional[DomainRegistry] = None,
) -> List[WeightedClause]:
    """Convert a weighted formula to a list of weighted clauses.

    The weight is split equally among the resulting clauses (Alchemy's
    convention).  Hard weights stay infinite for every resulting clause.
    Equality atoms are carried on the clause as ``(left, right, positive)``
    triples; grounding resolves them against each concrete binding (a
    satisfied equality prunes the ground clause, an unsatisfied one simply
    drops out of the disjunction).
    """
    stripped = _eliminate_implications(formula)
    stripped = _expand_existentials(stripped, domains)
    normalized = _push_negations(stripped)
    cnf = _distribute(normalized)
    if not cnf:
        raise FormulaConversionError("formula produced an empty CNF")
    per_clause_weight = weight
    if not math.isinf(weight) and len(cnf) > 1:
        per_clause_weight = weight / len(cnf)
    clauses: List[WeightedClause] = []
    for index, disjuncts in enumerate(cnf):
        literals: List[Literal] = []
        equalities: List[Tuple[object, object, bool]] = []
        for atomic in disjuncts:
            literal, equality = _atomic_to_literal_or_equality(atomic)
            if literal is not None:
                literals.append(literal)
            elif equality is not None:
                equalities.append(equality)
        clause_name = name if len(cnf) == 1 or name is None else f"{name}.{index}"
        clauses.append(
            WeightedClause(tuple(literals), per_clause_weight, clause_name, tuple(equalities))
        )
    return clauses
