"""First-order logic layer for Markov Logic Networks.

This package provides the symbolic vocabulary of an MLN program:

* :mod:`repro.logic.terms` — constants and variables,
* :mod:`repro.logic.predicates` — predicate declarations (the schema),
* :mod:`repro.logic.literals` — positive/negative applied predicates,
* :mod:`repro.logic.clauses` — weighted clauses in clausal form,
* :mod:`repro.logic.formulas` — a small formula AST with conversion to
  clausal form (implication elimination, negation pushing, distribution),
* :mod:`repro.logic.domains` — typed constant domains,
* :mod:`repro.logic.parser` — an Alchemy-style text syntax for MLN programs
  and evidence databases.

The grounding and inference layers only consume :class:`WeightedClause`
objects; the formula AST and parser exist so users can express programs the
way the paper's Figure 1 does.
"""

from repro.logic.clauses import HARD_WEIGHT, ClauseSet, WeightedClause
from repro.logic.domains import Domain, DomainRegistry
from repro.logic.formulas import (
    Conjunction,
    Disjunction,
    Exists,
    Formula,
    Implication,
    Negation,
    PredicateFormula,
    to_clausal_form,
)
from repro.logic.literals import Literal
from repro.logic.parser import MLNParser, MLNSyntaxError, parse_evidence, parse_program
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Term, Variable

__all__ = [
    "HARD_WEIGHT",
    "ClauseSet",
    "Conjunction",
    "Constant",
    "Disjunction",
    "Domain",
    "DomainRegistry",
    "Exists",
    "Formula",
    "Implication",
    "Literal",
    "MLNParser",
    "MLNSyntaxError",
    "Negation",
    "Predicate",
    "PredicateFormula",
    "Term",
    "Variable",
    "WeightedClause",
    "parse_evidence",
    "parse_program",
    "to_clausal_form",
]
