"""An Alchemy-style text syntax for MLN programs and evidence databases.

The syntax mirrors the fragment of Alchemy's input language used by the
paper's Figure 1:

Program files (``.mln``)::

    // predicate declarations: closed-world (evidence-only) predicates are
    // marked with a leading '*'
    *wrote(author, paper)
    *refers(paper, paper)
    cat(paper, category)

    // weighted rules: a leading number is the weight; a trailing '.' marks
    // a hard rule (infinite weight)
    5   cat(p, c1), cat(p, c2) => c1 = c2
    1   wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
    2   cat(p1, c), refers(p1, p2) => cat(p2, c)
    paper(p, u) => EXIST x wrote(x, p).
    -1  cat(p, "Networking")

Evidence files (``.db``)::

    wrote(Joe, P1)
    refers(P1, P3)
    !cat(P3, "AI")

Conventions follow Alchemy: tokens starting with an upper-case letter, a
digit or a quote are constants, everything else is a variable.  ``,`` and
``^`` denote conjunction, ``v`` denotes disjunction, ``!`` negation, ``=>``
implication, ``EXIST x`` existential quantification and ``=`` / ``!=``
(in)equality between terms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.clauses import HARD_WEIGHT
from repro.logic.formulas import (
    Conjunction,
    Disjunction,
    Equality,
    Exists,
    Formula,
    Implication,
    Negation,
    PredicateFormula,
)
from repro.logic.predicates import Predicate
from repro.logic.terms import Term, Variable, term_from_token


class MLNSyntaxError(ValueError):
    """Raised when a program or evidence file cannot be parsed."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(prefix + message)
        self.line_number = line_number


@dataclass
class ParsedRule:
    """A rule as read from the program text, before clausal conversion."""

    formula: Formula
    weight: float
    name: Optional[str] = None
    source_line: Optional[int] = None

    @property
    def is_hard(self) -> bool:
        return self.weight == HARD_WEIGHT


@dataclass
class ParsedEvidence:
    """A single evidence atom with its truth value."""

    predicate_name: str
    arguments: Tuple[str, ...]
    truth: bool = True


@dataclass
class ParsedProgram:
    """The result of parsing a program file."""

    predicates: List[Predicate] = field(default_factory=list)
    rules: List[ParsedRule] = field(default_factory=list)

    def predicate_map(self) -> Dict[str, Predicate]:
        return {predicate.name: predicate for predicate in self.predicates}


_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        =>            |   # implication
        !=            |   # inequality
        [(),=!.^]     |   # punctuation
        "[^"]*"       |   # double-quoted constant
        '[^']*'       |   # single-quoted constant
        [-+]?\d+\.\d+ |   # float
        [-+]?\d+      |   # integer
        [A-Za-z_][A-Za-z0-9_\-]*   # identifier
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str, line_number: Optional[int] = None) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise MLNSyntaxError(
                f"unexpected character {text[position]!r} in {text.strip()!r}",
                line_number,
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _TokenStream:
    """A tiny cursor over a token list with peek/expect helpers."""

    def __init__(self, tokens: Sequence[str], line_number: Optional[int] = None) -> None:
        self._tokens = list(tokens)
        self._position = 0
        self._line_number = line_number

    def peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise MLNSyntaxError("unexpected end of rule", self._line_number)
        self._position += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise MLNSyntaxError(
                f"expected {expected!r} but found {token!r}", self._line_number
            )
        return token

    def exhausted(self) -> bool:
        return self._position >= len(self._tokens)

    def error(self, message: str) -> MLNSyntaxError:
        return MLNSyntaxError(message, self._line_number)


class MLNParser:
    """Parser for MLN program and evidence files.

    The parser needs to know predicate declarations before it can parse rule
    bodies (to check arities and infer argument types), so declarations must
    precede the rules that use them — which is also Alchemy's requirement.
    """

    def __init__(self) -> None:
        self._predicates: Dict[str, Predicate] = {}

    # ------------------------------------------------------------------
    # Program files
    # ------------------------------------------------------------------

    def parse_program(self, text: str) -> ParsedProgram:
        """Parse a full program (declarations + rules) from text."""
        program = ParsedProgram()
        rule_counter = 0
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            if not line:
                continue
            if self._looks_like_declaration(line):
                predicate = self._parse_declaration(line, line_number)
                self._predicates[predicate.name] = predicate
                program.predicates.append(predicate)
                continue
            rule_counter += 1
            rule = self._parse_rule(line, line_number, default_name=f"R{rule_counter}")
            program.rules.append(rule)
        return program

    def parse_rule_text(self, text: str, weight: Optional[float] = None) -> ParsedRule:
        """Parse a single rule body (used by tests and programmatic callers).

        When ``weight`` is given it overrides (or supplies) the rule weight,
        so the text does not need a leading weight or a trailing period.
        """
        line = _strip_comment(text).strip()
        rule = self._parse_rule(
            line, None, default_name=None, allow_missing_weight=weight is not None
        )
        if weight is not None:
            rule.weight = weight
        return rule

    def _looks_like_declaration(self, line: str) -> bool:
        candidate = line.lstrip("*").strip()
        if not candidate or candidate.endswith("."):
            return False
        match = re.fullmatch(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)", candidate)
        if match is None:
            return False
        name = match.group(1)
        arguments = [argument.strip() for argument in match.group(2).split(",")]
        # A declaration's arguments are bare lower-case type names; anything
        # with quotes, capitals or digits is a ground atom (a rule), and a
        # re-mention of a known predicate is a rule as well.
        if name in self._predicates:
            return False
        return all(re.fullmatch(r"[a-z_][A-Za-z0-9_]*", argument) for argument in arguments)

    def _parse_declaration(self, line: str, line_number: int) -> Predicate:
        closed_world = line.startswith("*")
        body = line.lstrip("*").strip()
        match = re.fullmatch(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)", body)
        if match is None:
            raise MLNSyntaxError(f"malformed predicate declaration {line!r}", line_number)
        name = match.group(1)
        arg_types = tuple(argument.strip() for argument in match.group(2).split(","))
        if any(not argument for argument in arg_types):
            raise MLNSyntaxError(f"empty argument type in declaration {line!r}", line_number)
        return Predicate(name, arg_types, closed_world)

    def _parse_rule(
        self,
        line: str,
        line_number: Optional[int],
        default_name: Optional[str],
        allow_missing_weight: bool = False,
    ) -> ParsedRule:
        weight, body, is_hard = _split_weight(line, line_number)
        tokens = _tokenize(body, line_number)
        stream = _TokenStream(tokens, line_number)
        formula = self._parse_implication(stream)
        if not stream.exhausted():
            raise MLNSyntaxError(
                f"trailing tokens after rule: {tokens[stream._position:]}", line_number
            )
        final_weight = HARD_WEIGHT if is_hard else weight
        if final_weight is None:
            if not allow_missing_weight:
                raise MLNSyntaxError(
                    "rule must either start with a weight or end with '.'", line_number
                )
            final_weight = 0.0
        return ParsedRule(formula, final_weight, default_name, line_number)

    # Grammar: implication := disjunction ('=>' disjunction)?
    def _parse_implication(self, stream: _TokenStream) -> Formula:
        left = self._parse_disjunction(stream)
        if stream.peek() == "=>":
            stream.next()
            right = self._parse_disjunction(stream)
            return Implication(left, right)
        return left

    # disjunction := conjunction ('v' conjunction)*
    def _parse_disjunction(self, stream: _TokenStream) -> Formula:
        operands = [self._parse_conjunction(stream)]
        while stream.peek() == "v":
            stream.next()
            operands.append(self._parse_conjunction(stream))
        if len(operands) == 1:
            return operands[0]
        return Disjunction(tuple(operands))

    # conjunction := unary ((',' | '^') unary)*
    def _parse_conjunction(self, stream: _TokenStream) -> Formula:
        operands = [self._parse_unary(stream)]
        while stream.peek() in (",", "^"):
            stream.next()
            operands.append(self._parse_unary(stream))
        if len(operands) == 1:
            return operands[0]
        return Conjunction(tuple(operands))

    def _parse_unary(self, stream: _TokenStream) -> Formula:
        token = stream.peek()
        if token is None:
            raise stream.error("unexpected end of rule")
        if token == "!":
            stream.next()
            return Negation(self._parse_unary(stream))
        if token == "(":
            stream.next()
            inner = self._parse_implication(stream)
            stream.expect(")")
            return inner
        if token.upper() == "EXIST":
            stream.next()
            variable_token = stream.next()
            variable = term_from_token(variable_token)
            if not isinstance(variable, Variable):
                raise stream.error(
                    f"existential quantifier expects a variable, got {variable_token!r}"
                )
            body = self._parse_unary(stream)
            return Exists(variable, body)
        return self._parse_atom_or_equality(stream)

    def _parse_atom_or_equality(self, stream: _TokenStream) -> Formula:
        first = stream.next()
        if stream.peek() == "(" and first in self._predicates:
            return self._parse_atom(first, stream)
        if stream.peek() == "(" and first not in self._predicates:
            raise stream.error(f"unknown predicate {first!r}")
        operator = stream.peek()
        if operator in ("=", "!="):
            stream.next()
            second = stream.next()
            left = term_from_token(first)
            right = term_from_token(second)
            equality = Equality(left, right)
            return equality if operator == "=" else Negation(equality)
        raise stream.error(f"expected an atom or an equality, found {first!r}")

    def _parse_atom(self, predicate_name: str, stream: _TokenStream) -> PredicateFormula:
        predicate = self._predicates[predicate_name]
        stream.expect("(")
        arguments: List[Term] = []
        while True:
            token = stream.next()
            arguments.append(term_from_token(token))
            separator = stream.next()
            if separator == ")":
                break
            if separator != ",":
                raise stream.error(
                    f"expected ',' or ')' in arguments of {predicate_name}, found {separator!r}"
                )
        if len(arguments) != predicate.arity:
            raise stream.error(
                f"predicate {predicate_name} expects {predicate.arity} arguments, "
                f"got {len(arguments)}"
            )
        return PredicateFormula(predicate, tuple(arguments))

    # ------------------------------------------------------------------
    # Evidence files
    # ------------------------------------------------------------------

    def parse_evidence(self, text: str) -> List[ParsedEvidence]:
        """Parse an evidence database (one ground atom per line)."""
        evidence: List[ParsedEvidence] = []
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            if not line:
                continue
            truth = True
            if line.startswith("!"):
                truth = False
                line = line[1:].strip()
            match = re.fullmatch(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)", line)
            if match is None:
                raise MLNSyntaxError(f"malformed evidence atom {line!r}", line_number)
            name = match.group(1)
            raw_arguments = [argument.strip() for argument in match.group(2).split(",")]
            arguments = tuple(_unquote(argument) for argument in raw_arguments)
            if name in self._predicates:
                expected = self._predicates[name].arity
                if len(arguments) != expected:
                    raise MLNSyntaxError(
                        f"evidence atom {line!r} has {len(arguments)} arguments, "
                        f"predicate {name} expects {expected}",
                        line_number,
                    )
            evidence.append(ParsedEvidence(name, arguments, truth))
        return evidence


def _strip_comment(line: str) -> str:
    for marker in ("//", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def _unquote(token: str) -> str:
    if len(token) >= 2 and token[0] in "\"'" and token[-1] == token[0]:
        return token[1:-1]
    return token


def _split_weight(
    line: str, line_number: Optional[int]
) -> Tuple[Optional[float], str, bool]:
    """Split a rule line into (weight, body, is_hard)."""
    is_hard = False
    stripped = line.strip()
    if stripped.endswith("."):
        is_hard = True
        stripped = stripped[:-1].strip()
    match = re.match(r"^([-+]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?)\s+(.*)$", stripped)
    weight: Optional[float] = None
    body = stripped
    if match is not None and not is_hard:
        weight = float(match.group(1))
        body = match.group(2)
    elif match is not None and is_hard:
        # A hard rule may still carry a redundant leading weight; ignore it.
        body = match.group(2)
    if not body:
        raise MLNSyntaxError("rule has no body", line_number)
    return weight, body, is_hard


def parse_program(text: str) -> ParsedProgram:
    """Module-level convenience wrapper around :class:`MLNParser`."""
    return MLNParser().parse_program(text)


def parse_evidence(text: str, program: Optional[ParsedProgram] = None) -> List[ParsedEvidence]:
    """Parse evidence text, optionally validating arities against a program."""
    parser = MLNParser()
    if program is not None:
        for predicate in program.predicates:
            parser._predicates[predicate.name] = predicate
    return parser.parse_evidence(text)
