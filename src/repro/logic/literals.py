"""Literals: possibly negated applications of a predicate to terms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.logic.predicates import GroundAtom, Predicate
from repro.logic.terms import Constant, Term, Variable, substitute


@dataclass(frozen=True)
class Literal:
    """An applied predicate with a sign, e.g. ``!cat(p, c1)``.

    ``positive`` is ``True`` for an un-negated literal.  Arguments can mix
    variables and constants; a literal with no variables is *ground*.
    """

    predicate: Predicate
    arguments: Tuple[Term, ...]
    positive: bool = True

    def __post_init__(self) -> None:
        if len(self.arguments) != self.predicate.arity:
            raise ValueError(
                f"literal of {self.predicate.name} expects {self.predicate.arity} "
                f"arguments, got {len(self.arguments)}"
            )

    def __str__(self) -> str:
        sign = "" if self.positive else "!"
        args = ", ".join(str(argument) for argument in self.arguments)
        return f"{sign}{self.predicate.name}({args})"

    @property
    def is_ground(self) -> bool:
        return all(isinstance(argument, Constant) for argument in self.arguments)

    def variables(self) -> Tuple[Variable, ...]:
        """Variables appearing in this literal, in argument order, unique."""
        seen: list[Variable] = []
        for argument in self.arguments:
            if isinstance(argument, Variable) and argument not in seen:
                seen.append(argument)
        return tuple(seen)

    def negate(self) -> "Literal":
        return Literal(self.predicate, self.arguments, not self.positive)

    def substitute(self, binding: Dict[Variable, Constant]) -> "Literal":
        """Apply a variable binding, returning a new literal."""
        return Literal(
            self.predicate,
            tuple(substitute(argument, binding) for argument in self.arguments),
            self.positive,
        )

    def to_atom(self) -> GroundAtom:
        """Convert a ground literal to its underlying atom (dropping the sign)."""
        if not self.is_ground:
            raise ValueError(f"literal {self} is not ground")
        constants = tuple(argument for argument in self.arguments if isinstance(argument, Constant))
        return GroundAtom(self.predicate, constants)
