"""Predicate declarations.

A predicate declaration is the MLN analogue of a table schema: a name plus a
tuple of argument type names.  Predicates are also flagged as *closed world*
(pure evidence: anything not listed in the evidence is false, like ``refers``
or ``wrote`` in the paper's Figure 1) or *open world* (query predicates whose
unknown atoms the inference must fill in, like ``cat``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.logic.terms import Constant


@dataclass(frozen=True)
class Predicate:
    """A predicate declaration, e.g. ``cat(paper, category)``."""

    name: str
    arg_types: Tuple[str, ...]
    closed_world: bool = False

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    def __str__(self) -> str:
        args = ", ".join(self.arg_types)
        return f"{self.name}({args})"

    def table_name(self) -> str:
        """Name of the RDBMS relation backing this predicate."""
        return f"pred_{self.name.lower()}"

    def with_closed_world(self, closed: bool) -> "Predicate":
        """Return a copy with the closed-world flag set."""
        return Predicate(self.name, self.arg_types, closed)


@dataclass
class PredicateRegistry:
    """The set of predicate declarations of a program, keyed by name."""

    _predicates: Dict[str, Predicate] = field(default_factory=dict)

    def declare(self, predicate: Predicate) -> Predicate:
        existing = self._predicates.get(predicate.name)
        if existing is not None:
            if existing.arg_types != predicate.arg_types:
                raise ValueError(
                    f"predicate {predicate.name!r} redeclared with different "
                    f"argument types {predicate.arg_types} vs {existing.arg_types}"
                )
            return existing
        self._predicates[predicate.name] = predicate
        return predicate

    def get(self, name: str) -> Predicate:
        try:
            return self._predicates[name]
        except KeyError as error:
            raise KeyError(f"unknown predicate {name!r}") from error

    def __contains__(self, name: str) -> bool:
        return name in self._predicates

    def __iter__(self):
        return iter(self._predicates.values())

    def __len__(self) -> int:
        return len(self._predicates)

    def names(self) -> List[str]:
        return list(self._predicates)

    def query_predicates(self) -> List[Predicate]:
        """Predicates whose atoms inference must fill in (open world)."""
        return [p for p in self._predicates.values() if not p.closed_world]

    def evidence_predicates(self) -> List[Predicate]:
        """Closed-world predicates fully determined by the evidence."""
        return [p for p in self._predicates.values() if p.closed_world]


@dataclass(frozen=True)
class GroundAtom:
    """A fully instantiated predicate, e.g. ``cat('P2', 'DB')``.

    Ground atoms are the random variables of the Markov Random Field.  They
    are frozen/hashable so they can serve as keys in the atom registry.
    """

    predicate: Predicate
    arguments: Tuple[Constant, ...]

    def __post_init__(self) -> None:
        if len(self.arguments) != self.predicate.arity:
            raise ValueError(
                f"atom of {self.predicate.name} expects {self.predicate.arity} "
                f"arguments, got {len(self.arguments)}"
            )

    def __str__(self) -> str:
        args = ", ".join(str(argument) for argument in self.arguments)
        return f"{self.predicate.name}({args})"

    def argument_values(self) -> Tuple[str, ...]:
        return tuple(argument.value for argument in self.arguments)


def make_atom(predicate: Predicate, values: Iterable[str]) -> GroundAtom:
    """Build a ground atom from raw string argument values."""
    return GroundAtom(predicate, tuple(Constant(value) for value in values))
