"""Typed constant domains.

Each predicate argument has a *type* (e.g. ``paper``, ``author``,
``category``), and each type has a domain of constants.  The grounding layer
needs the domains to enumerate possible argument values for a clause (for the
top-down grounder) and to estimate cardinalities (for the relational
optimizer), so the registry also provides dense integer encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List

from repro.logic.terms import Constant


@dataclass
class Domain:
    """A named, ordered set of constants with a dense integer encoding."""

    name: str
    _constants: List[Constant] = field(default_factory=list)
    _index: Dict[Constant, int] = field(default_factory=dict)

    def add(self, constant: Constant) -> int:
        """Add a constant (idempotently) and return its dense id."""
        existing = self._index.get(constant)
        if existing is not None:
            return existing
        identifier = len(self._constants)
        self._constants.append(constant)
        self._index[constant] = identifier
        return identifier

    def add_value(self, value: str) -> int:
        """Convenience: add a constant by its string value."""
        return self.add(Constant(value))

    def id_of(self, constant: Constant) -> int:
        """Dense id of a constant; raises ``KeyError`` if unknown."""
        return self._index[constant]

    def constant_of(self, identifier: int) -> Constant:
        """Inverse of :meth:`id_of`."""
        return self._constants[identifier]

    def __contains__(self, constant: Constant) -> bool:
        return constant in self._index

    def __len__(self) -> int:
        return len(self._constants)

    def __iter__(self) -> Iterator[Constant]:
        return iter(self._constants)

    def constants(self) -> List[Constant]:
        """A copy of the constant list, in id order."""
        return list(self._constants)


class DomainRegistry:
    """All typed domains of an MLN program, keyed by type name."""

    def __init__(self) -> None:
        self._domains: Dict[str, Domain] = {}

    def domain(self, type_name: str) -> Domain:
        """Return (creating if necessary) the domain for a type."""
        if type_name not in self._domains:
            self._domains[type_name] = Domain(type_name)
        return self._domains[type_name]

    def add_constant(self, type_name: str, constant: Constant) -> int:
        return self.domain(type_name).add(constant)

    def add_constants(self, type_name: str, values: Iterable[str]) -> None:
        domain = self.domain(type_name)
        for value in values:
            domain.add_value(value)

    def type_names(self) -> List[str]:
        return list(self._domains)

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._domains

    def __getitem__(self, type_name: str) -> Domain:
        return self._domains[type_name]

    def __len__(self) -> int:
        return len(self._domains)

    def total_constants(self) -> int:
        """Total number of distinct constants across all domains."""
        return sum(len(domain) for domain in self._domains.values())

    def summary(self) -> Dict[str, int]:
        """``{type name: domain size}`` — used by dataset statistics."""
        return {name: len(domain) for name, domain in self._domains.items()}
