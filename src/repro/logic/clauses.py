"""Weighted clauses in clausal form.

An MLN program, after conversion from the user-facing formula syntax, is a
set of weighted clauses.  Each clause is a disjunction of literals plus a
weight; hard rules carry an infinite weight (``HARD_WEIGHT``).  A negative
weight means the *negation* of the clause is likely to hold (paper, Appendix
A.1), which the cost function in :mod:`repro.mrf.cost` accounts for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.logic.literals import Literal
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Variable

HARD_WEIGHT = math.inf


@dataclass(frozen=True)
class WeightedClause:
    """A weighted disjunction of literals.

    ``name`` is an optional identifier (``F1`` ... ``F5`` in the paper's
    Figure 1) used in reports; ``weight`` may be ``math.inf`` for hard rules.
    Equality constraints between terms produced by formula conversion (e.g.
    ``c1 = c2`` in F1) are carried in ``equalities`` as triples
    ``(left, right, positive)``: a positive triple satisfies the clause when
    the two terms are equal, a negative one when they differ.  Grounding
    resolves these constraints against concrete bindings.
    """

    literals: Tuple[Literal, ...]
    weight: float
    name: Optional[str] = None
    equalities: Tuple[Tuple[object, object, bool], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.literals and not self.equalities:
            raise ValueError("a clause must contain at least one literal")

    @property
    def is_hard(self) -> bool:
        return math.isinf(self.weight)

    @property
    def is_ground(self) -> bool:
        return all(literal.is_ground for literal in self.literals)

    def variables(self) -> Tuple[Variable, ...]:
        """All distinct variables, in first-appearance order."""
        seen: List[Variable] = []
        for literal in self.literals:
            for variable in literal.variables():
                if variable not in seen:
                    seen.append(variable)
        for left, right, _positive in self.equalities:
            for term in (left, right):
                if isinstance(term, Variable) and term not in seen:
                    seen.append(term)
        return tuple(seen)

    def predicates(self) -> Tuple[Predicate, ...]:
        """Distinct predicates referenced by this clause."""
        seen: List[Predicate] = []
        for literal in self.literals:
            if literal.predicate not in seen:
                seen.append(literal.predicate)
        return tuple(seen)

    def substitute(self, binding: Dict[Variable, Constant]) -> "WeightedClause":
        """Apply a variable binding to every literal."""
        new_equalities = []
        for left, right, positive in self.equalities:
            new_left = binding.get(left, left) if isinstance(left, Variable) else left
            new_right = binding.get(right, right) if isinstance(right, Variable) else right
            new_equalities.append((new_left, new_right, positive))
        return WeightedClause(
            tuple(literal.substitute(binding) for literal in self.literals),
            self.weight,
            self.name,
            tuple(new_equalities),
        )

    def __str__(self) -> str:
        parts = [str(literal) for literal in self.literals]
        parts.extend(
            f"{left} {'=' if positive else '!='} {right}"
            for left, right, positive in self.equalities
        )
        weight = "inf" if self.is_hard else f"{self.weight:g}"
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{weight}: " + " v ".join(parts)

    def signature(self) -> Tuple:
        """A hashable canonical form used for duplicate detection in tests."""
        literal_keys = tuple(
            sorted(
                (
                    literal.predicate.name,
                    tuple(str(argument) for argument in literal.arguments),
                    literal.positive,
                )
                for literal in self.literals
            )
        )
        return (literal_keys, self.weight)


class ClauseSet:
    """An ordered collection of weighted clauses with convenience queries."""

    def __init__(self, clauses: Iterable[WeightedClause] = ()) -> None:
        self._clauses: List[WeightedClause] = list(clauses)

    def add(self, clause: WeightedClause) -> None:
        self._clauses.append(clause)

    def extend(self, clauses: Iterable[WeightedClause]) -> None:
        self._clauses.extend(clauses)

    def __iter__(self) -> Iterator[WeightedClause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __getitem__(self, index: int) -> WeightedClause:
        return self._clauses[index]

    def hard_clauses(self) -> List[WeightedClause]:
        return [clause for clause in self._clauses if clause.is_hard]

    def soft_clauses(self) -> List[WeightedClause]:
        return [clause for clause in self._clauses if not clause.is_hard]

    def total_weight(self) -> float:
        """Sum of absolute soft weights (hard clauses excluded)."""
        return sum(abs(clause.weight) for clause in self.soft_clauses())

    def referencing(self, predicate_name: str) -> List[WeightedClause]:
        """Clauses that mention the named predicate."""
        return [
            clause
            for clause in self._clauses
            if any(literal.predicate.name == predicate_name for literal in clause.literals)
        ]


def make_clause(
    literals: Sequence[Literal],
    weight: float,
    name: Optional[str] = None,
) -> WeightedClause:
    """Convenience constructor used heavily in tests and dataset generators."""
    return WeightedClause(tuple(literals), weight, name)
