"""Query execution: drain a physical plan into rows or a new table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.rdbms.operators import PhysicalOperator
from repro.rdbms.optimizer import PlannedQuery
from repro.rdbms.schema import TableSchema
from repro.rdbms.table import Table
from repro.utils.timer import Stopwatch


@dataclass
class QueryResult:
    """The materialised output of a query execution."""

    schema: TableSchema
    rows: List[Tuple[Any, ...]]
    elapsed_seconds: float

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        position = self.schema.position(name)
        return [row[position] for row in self.rows]

    def as_dicts(self) -> List[dict]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.rows]


class Executor:
    """Pulls every row out of a plan, timing the execution."""

    def execute(self, plan: PhysicalOperator | PlannedQuery) -> QueryResult:
        root = plan.root if isinstance(plan, PlannedQuery) else plan
        stopwatch = Stopwatch()
        with stopwatch.measure():
            rows = root.rows()
        return QueryResult(root.output_schema, rows, stopwatch.total)

    def execute_into(
        self,
        plan: PhysicalOperator | PlannedQuery,
        target: Table,
        truncate: bool = False,
    ) -> QueryResult:
        """Execute a plan and bulk-load the result into an existing table.

        The target table's schema must have the same number of columns as the
        plan output; values are coerced to the target column types, which is
        how the grounding pipeline writes ground clauses into the clause
        table.
        """
        result = self.execute(plan)
        if truncate:
            target.truncate()
        target.bulk_load(result.rows)
        return result
