"""Query execution: drain a physical plan into rows, columns, or a table.

The executor runs either of two engines off the same
:class:`~repro.rdbms.optimizer.PlannedQuery`:

* the **row engine** — the original tuple-at-a-time iterator model, kept as
  the executable specification of the engine's semantics;
* the **columnar engine** — batch-at-a-time evaluation over
  :class:`~repro.rdbms.column_batch.ColumnBatch` arrays, order-identical to
  the row engine (the parity suite proves identical rows, in identical
  order, for every optimizer plan shape).

Backend selection mirrors the search kernel's ``resolve_backend`` seam:
``execution_backend`` is ``auto`` | ``row`` | ``columnar``, where ``auto``
resolves to ``columnar`` iff numpy is importable *and* the plan scans at
least one base table with >= :data:`COLUMNAR_AUTO_MIN_ROWS` rows (below
that the numpy dispatch and dictionary-encoding overheads cannot amortize;
the crossover was measured with ``benchmarks/bench_table2_grounding.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.rdbms.column_batch import (
    NUMPY_AVAILABLE,
    ColumnBatch,
    ColumnarContext,
    ValueEncoder,
)
from repro.rdbms.operators import PhysicalOperator, TableScan, iter_plan
from repro.rdbms.optimizer import PlannedQuery
from repro.rdbms.schema import TableSchema
from repro.rdbms.table import Table
from repro.utils import autotune
from repro.utils.timer import Stopwatch

#: Valid values for the ``execution_backend`` option of the executor, the
#: Database facade, the bottom-up grounder and the engine config.
EXECUTION_BACKENDS = ("auto", "row", "columnar")

#: Under ``auto``, the columnar engine engages only when some base table of
#: the plan has at least this many rows.  Measured on this container with a
#: cold two-way self-join (one-time dictionary encoding included): break-even
#: at ~64 rows, ~1.7x ahead at 128, 2-5x beyond; with the per-table column
#: cache warm (one query per MLN clause over shared atom tables) it wins at
#: every size.  Kept a little above the cold break-even so tiny tables stay
#: on the (allocation-free) row engine, mirroring VECTOR_AUTO_MIN_CLAUSES
#: in the search kernel.  Like that threshold, the crossover is calibrated
#: per machine by an import-time micro-probe (:mod:`repro.utils.autotune`):
#: ``REPRO_COLUMNAR_AUTO_MIN_ROWS`` pins it, ``REPRO_AUTOTUNE=off`` keeps
#: the default — selection only, results are identical on both engines.
COLUMNAR_AUTO_MIN_ROWS = autotune.threshold("COLUMNAR_AUTO_MIN_ROWS", 128)


def available_execution_backends() -> tuple:
    """The execution backends usable in this environment, in preference order."""
    return ("row", "columnar") if NUMPY_AVAILABLE else ("row",)


def resolve_execution_backend(
    plan: PhysicalOperator | PlannedQuery, backend: str = "auto"
) -> str:
    """Resolve a requested backend name to a concrete one for this plan.

    ``auto`` picks ``columnar`` when numpy is importable and the plan scans
    a base table of at least ``COLUMNAR_AUTO_MIN_ROWS`` rows, else ``row``.
    Both backends produce identical results (the parity suite enforces it),
    so the choice is purely a performance decision.
    """
    if backend not in EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; expected one of {EXECUTION_BACKENDS}"
        )
    if backend == "columnar":
        if not NUMPY_AVAILABLE:
            raise RuntimeError(
                "columnar execution backend requested but numpy is not available"
            )
        return backend
    if backend == "row":
        return backend
    if not NUMPY_AVAILABLE:
        return "row"
    root = plan.root if isinstance(plan, PlannedQuery) else plan
    largest = max(
        (len(op.table) for op in iter_plan(root) if isinstance(op, TableScan)),
        default=0,
    )
    return "columnar" if largest >= COLUMNAR_AUTO_MIN_ROWS else "row"


@dataclass
class QueryResult:
    """The materialised output of a query execution."""

    schema: TableSchema
    rows: List[Tuple[Any, ...]]
    elapsed_seconds: float

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        position = self.schema.position(name)
        return [row[position] for row in self.rows]

    def as_dicts(self) -> List[dict]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.rows]


@dataclass
class ColumnarQueryResult:
    """The output of a columnar execution: encoded columns, not tuples.

    Consumers that can work on columns directly (the batched grounding
    consumer) read ``column_codes``; ``to_rows``/``column`` decode back to
    the row representation.
    """

    schema: TableSchema
    batch: ColumnBatch
    encoder: ValueEncoder
    elapsed_seconds: float

    def __len__(self) -> int:
        return self.batch.length

    def column_codes(self, name: str):
        return self.batch.column_codes(self.schema.position(name))

    def column(self, name: str) -> List[Any]:
        return self.encoder.decode_list(self.column_codes(name))

    def to_rows(self) -> List[Tuple[Any, ...]]:
        return self.batch.to_rows(self.encoder)


class Executor:
    """Runs plans on the resolved execution backend, timing the execution."""

    def __init__(self, execution_backend: str = "auto") -> None:
        if execution_backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown execution backend {execution_backend!r}; "
                f"expected one of {EXECUTION_BACKENDS}"
            )
        self.execution_backend = execution_backend
        self._context: Optional[ColumnarContext] = None

    def columnar_context(self) -> ColumnarContext:
        """The executor's shared columnar state (encoder + column caches)."""
        if self._context is None:
            self._context = ColumnarContext()
        return self._context

    def resolve_backend(
        self, plan: PhysicalOperator | PlannedQuery, backend: Optional[str] = None
    ) -> str:
        return resolve_execution_backend(plan, backend or self.execution_backend)

    def execute(
        self,
        plan: PhysicalOperator | PlannedQuery,
        backend: Optional[str] = None,
    ) -> QueryResult:
        root = plan.root if isinstance(plan, PlannedQuery) else plan
        resolved = self.resolve_backend(root, backend)
        stopwatch = Stopwatch()
        if resolved == "columnar":
            context = self.columnar_context()
            with stopwatch.measure():
                rows = root.batch(context).to_rows(context.encoder)
        else:
            with stopwatch.measure():
                rows = root.rows()
        return QueryResult(root.output_schema, rows, stopwatch.total)

    def execute_batch(
        self, plan: PhysicalOperator | PlannedQuery
    ) -> ColumnarQueryResult:
        """Execute on the columnar engine, returning undecoded columns."""
        if not NUMPY_AVAILABLE:
            raise RuntimeError(
                "columnar execution backend requested but numpy is not available"
            )
        root = plan.root if isinstance(plan, PlannedQuery) else plan
        context = self.columnar_context()
        stopwatch = Stopwatch()
        with stopwatch.measure():
            batch = root.batch(context)
        return ColumnarQueryResult(
            root.output_schema, batch, context.encoder, stopwatch.total
        )

    def execute_into(
        self,
        plan: PhysicalOperator | PlannedQuery,
        target: Table,
        truncate: bool = False,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """Execute a plan and bulk-load the result into an existing table.

        The target table's schema must have the same number of columns as the
        plan output; values are coerced to the target column types, which is
        how the grounding pipeline writes ground clauses into the clause
        table.
        """
        result = self.execute(plan, backend=backend)
        if truncate:
            target.truncate()
        target.bulk_load(result.rows)
        return result
