"""A small in-Python relational engine.

The paper's Tuffy system delegates the grounding phase of MLN inference to
PostgreSQL so it can benefit from the relational optimizer (join algorithm
selection, join ordering, predicate pushdown).  This package is the offline
substitute for PostgreSQL: it provides

* a catalog of typed tables (:mod:`schema`, :mod:`table`, :mod:`catalog`),
* a page-based storage manager with a buffer pool and I/O accounting
  (:mod:`storage`) used both for realistic scan costs and for the
  RDBMS-backed search variant (Tuffy-mm),
* expression trees for filters and join conditions (:mod:`expressions`),
* physical iterator operators — sequential scan, filter, project,
  nested-loop / hash / sort-merge join, distinct, sort, aggregate
  (:mod:`operators`),
* table statistics and cardinality estimation (:mod:`stats`),
* a query optimizer with the lesion-study knobs from Table 6 of the paper
  (:mod:`optimizer`), and
* a :class:`~repro.rdbms.database.Database` facade tying it all together.

The engine is deliberately scoped to what MLN grounding needs: conjunctive
select-project-join queries with equality predicates, constant filters and
duplicate elimination.  It does not aim to be a general SQL system.
"""

from repro.rdbms.catalog import Catalog
from repro.rdbms.database import Database
from repro.rdbms.expressions import (
    And,
    ColumnRef,
    Comparison,
    Const,
    Expression,
    Not,
    Or,
)
from repro.rdbms.optimizer import ConjunctiveQuery, Optimizer, OptimizerOptions
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.storage import BufferPool, StorageManager
from repro.rdbms.table import Table
from repro.rdbms.types import ColumnType

__all__ = [
    "And",
    "BufferPool",
    "Catalog",
    "Column",
    "ColumnRef",
    "ColumnType",
    "Comparison",
    "ConjunctiveQuery",
    "Const",
    "Database",
    "Expression",
    "Not",
    "Optimizer",
    "OptimizerOptions",
    "Or",
    "StorageManager",
    "Table",
    "TableSchema",
]
