"""A small in-Python relational engine.

The paper's Tuffy system delegates the grounding phase of MLN inference to
PostgreSQL so it can benefit from the relational optimizer (join algorithm
selection, join ordering, predicate pushdown).  This package is the offline
substitute for PostgreSQL: it provides

* a catalog of typed tables (:mod:`schema`, :mod:`table`, :mod:`catalog`),
* a page-based storage manager with a buffer pool and I/O accounting
  (:mod:`storage`) used both for realistic scan costs and for the
  RDBMS-backed search variant (Tuffy-mm),
* expression trees for filters and join conditions (:mod:`expressions`),
  each compilable to a per-row evaluator (``bind``) or a vectorized numpy
  mask (``bind_batch``),
* physical operators — sequential scan, filter, project, nested-loop /
  hash / sort-merge join, distinct, sort, aggregate (:mod:`operators`) —
  executable under two models off the same plan: the tuple-at-a-time
  iterator model (the executable specification) and the batch-at-a-time
  columnar model over :class:`~repro.rdbms.column_batch.ColumnBatch`
  arrays (dictionary-encoded columns + selection vectors, joins emitting
  gather indices),
* table statistics and cardinality estimation (:mod:`stats`),
* a query optimizer with the lesion-study knobs from Table 6 of the paper
  (:mod:`optimizer`), and
* an executor resolving the ``auto | row | columnar`` execution-backend
  seam per plan (:mod:`executor`, mirroring the search kernel's
  ``resolve_backend``) behind a :class:`~repro.rdbms.database.Database`
  facade tying it all together.

Both execution backends are *order-identical* — same rows, same order,
same operator counters and I/O charges — so every consumer, including the
grounding pipeline's bit-identical-results guarantee, is backend-agnostic;
the columnar engine is purely a performance choice (see
``tests/test_rdbms_columnar.py`` and ROADMAP.md "Execution backend").

The engine is deliberately scoped to what MLN grounding needs: conjunctive
select-project-join queries with equality predicates, constant filters and
duplicate elimination.  It does not aim to be a general SQL system.
"""

from repro.rdbms.catalog import Catalog
from repro.rdbms.column_batch import ColumnBatch, ColumnarContext, ValueEncoder
from repro.rdbms.database import Database
from repro.rdbms.executor import (
    EXECUTION_BACKENDS,
    Executor,
    available_execution_backends,
    resolve_execution_backend,
)
from repro.rdbms.expressions import (
    And,
    ColumnRef,
    Comparison,
    Const,
    Expression,
    Not,
    Or,
)
from repro.rdbms.optimizer import ConjunctiveQuery, Optimizer, OptimizerOptions
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.storage import BufferPool, StorageManager
from repro.rdbms.table import Table
from repro.rdbms.types import ColumnType

__all__ = [
    "And",
    "BufferPool",
    "Catalog",
    "Column",
    "ColumnBatch",
    "ColumnRef",
    "ColumnType",
    "ColumnarContext",
    "Comparison",
    "ConjunctiveQuery",
    "Const",
    "Database",
    "EXECUTION_BACKENDS",
    "Executor",
    "Expression",
    "Not",
    "Optimizer",
    "OptimizerOptions",
    "Or",
    "StorageManager",
    "Table",
    "TableSchema",
    "ValueEncoder",
    "available_execution_backends",
    "resolve_execution_backend",
]
