"""Secondary indexes: hash and sorted (B-tree-like) indexes over columns.

Indexes map key values to row positions in the owning table.  The optimizer
can use a hash index to turn the inner side of a join into index lookups; the
sorted index supports range scans.  Indexes are maintained eagerly: they are
built once over a loaded table (the grounding workload is bulk-load then
read-only, matching the paper's usage of PostgreSQL).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.rdbms.table import Table


@dataclass
class HashIndex:
    """An equality index: key tuple -> list of row positions."""

    table: Table
    columns: Tuple[str, ...]
    _buckets: Dict[Tuple[Any, ...], List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        positions = [self.table.schema.position(column) for column in self.columns]
        for row_index, row in enumerate(self.table.rows):
            key = tuple(row[position] for position in positions)
            self._buckets.setdefault(key, []).append(row_index)

    def lookup(self, key: Sequence[Any]) -> List[int]:
        """Row positions whose indexed columns equal the key (possibly empty)."""
        return list(self._buckets.get(tuple(key), ()))

    def lookup_rows(self, key: Sequence[Any]) -> List[Tuple[Any, ...]]:
        return [self.table.rows[index] for index in self.lookup(key)]

    def __contains__(self, key: Sequence[Any]) -> bool:
        return tuple(key) in self._buckets

    def key_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


@dataclass
class SortedIndex:
    """A sorted index supporting point and range lookups on one column."""

    table: Table
    column: str
    _keys: List[Any] = field(default_factory=list)
    _positions: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        position = self.table.schema.position(self.column)
        entries = sorted(
            (row[position], index)
            for index, row in enumerate(self.table.rows)
            if row[position] is not None
        )
        self._keys = [key for key, _ in entries]
        self._positions = [index for _, index in entries]

    def lookup(self, key: Any) -> List[int]:
        """Row positions with exactly this key."""
        left = bisect.bisect_left(self._keys, key)
        right = bisect.bisect_right(self._keys, key)
        return self._positions[left:right]

    def range(self, low: Optional[Any] = None, high: Optional[Any] = None) -> Iterator[int]:
        """Row positions with keys in ``[low, high]`` (either bound optional)."""
        left = 0 if low is None else bisect.bisect_left(self._keys, low)
        right = len(self._keys) if high is None else bisect.bisect_right(self._keys, high)
        yield from self._positions[left:right]

    def min_key(self) -> Optional[Any]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[Any]:
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)


@dataclass
class IndexCatalog:
    """All indexes built on the tables of one database."""

    _hash_indexes: Dict[Tuple[str, Tuple[str, ...]], HashIndex] = field(default_factory=dict)
    _sorted_indexes: Dict[Tuple[str, str], SortedIndex] = field(default_factory=dict)

    def build_hash_index(self, table: Table, columns: Sequence[str]) -> HashIndex:
        key = (table.name, tuple(columns))
        if key not in self._hash_indexes:
            self._hash_indexes[key] = HashIndex(table, tuple(columns))
        return self._hash_indexes[key]

    def build_sorted_index(self, table: Table, column: str) -> SortedIndex:
        key = (table.name, column)
        if key not in self._sorted_indexes:
            self._sorted_indexes[key] = SortedIndex(table, column)
        return self._sorted_indexes[key]

    def hash_index(self, table_name: str, columns: Sequence[str]) -> Optional[HashIndex]:
        return self._hash_indexes.get((table_name, tuple(columns)))

    def sorted_index(self, table_name: str, column: str) -> Optional[SortedIndex]:
        return self._sorted_indexes.get((table_name, column))

    def drop_table_indexes(self, table_name: str) -> None:
        self._hash_indexes = {
            key: value for key, value in self._hash_indexes.items() if key[0] != table_name
        }
        self._sorted_indexes = {
            key: value for key, value in self._sorted_indexes.items() if key[0] != table_name
        }
