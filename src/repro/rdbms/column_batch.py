"""Columnar batches: the data representation of the batch execution backend.

The row engine executes a plan as a tree of Python tuple iterators; this
module provides the columnar alternative the executor can run off the very
same :class:`~repro.rdbms.optimizer.PlannedQuery`:

* :class:`ValueEncoder` — a shared dictionary encoding.  Every value the
  engine touches is interned to a small ``int64`` code (``None`` maps to
  :data:`NULL_CODE`).  Because the dictionary is shared across all tables
  and queries of one executor, *code equality is exactly Python value
  equality* (``dict`` lookup uses ``hash``/``==``, the same relation the
  row engine's evaluators use), so equality filters, hash joins and
  duplicate elimination run entirely on integer arrays.  Ordering
  comparisons and sorts decode back to the original values, because code
  order is first-occurrence order, not value order.
* :class:`ColumnBatch` — one column array per schema column plus a
  *selection vector*: filters compose selections instead of copying column
  data, and joins emit gather indices instead of concatenated tuples.
* :class:`ColumnarContext` — per-executor state: the shared encoder and a
  per-table cache of encoded base columns (invalidated by the table's
  ``version`` counter), so a grounding run that issues one query per MLN
  clause pays the Python-loop encoding cost once per table, not per query.
* The vectorized join/group kernels (:func:`hash_join_indices`,
  :func:`composite_codes`, :func:`first_occurrence_indices`).  They are
  carefully *order-preserving* — probe-major output with build rows in
  insertion order, stable grouping, first-occurrence dedup — so the
  columnar engine reproduces the row engine's output **order**, not just
  its multiset (the grounding pipeline derives clause ids from row order).

Everything import-sensitive is gated: when numpy is missing,
``NUMPY_AVAILABLE`` is False, the executor never resolves ``auto`` to the
columnar backend, and requesting ``columnar`` explicitly raises.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rdbms.schema import TableSchema

try:  # gated dependency: the container may not ship numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

NUMPY_AVAILABLE = np is not None

#: Code of SQL NULL / unknown truth.  Never present in the encoder's
#: dictionary; every encoded column may contain it.
NULL_CODE = -1

#: Returned by :meth:`ValueEncoder.lookup` for a value that was never
#: encoded.  Never present in a column array, so comparing a column against
#: it yields all-False — exactly the semantics of comparing against a
#: constant that matches no row.
MISSING_CODE = -2


class ValueEncoder:
    """Shared dictionary encoding of arbitrary (hashable) values.

    Codes are assigned by first occurrence and never change, so arrays
    encoded at different times remain comparable.  ``bool``/``int``/``float``
    values that compare equal share a code (``dict`` semantics), which is
    precisely the equality relation the row engine's ``==`` uses.
    """

    __slots__ = ("_codes", "_values", "_mirror")

    def __init__(self) -> None:
        self._codes: Dict[Any, int] = {}
        # Slot 0 decodes NULL_CODE (indexing is ``code + 1``).
        self._values: List[Any] = [None]
        self._mirror: Optional["np.ndarray"] = None

    def __len__(self) -> int:
        return len(self._codes)

    def encode_scalar(self, value: Any) -> int:
        """The code of one value, interning it if unseen."""
        if value is None:
            return NULL_CODE
        code = self._codes.get(value)
        if code is None:
            code = len(self._codes)
            self._codes[value] = code
            self._values.append(value)
            self._mirror = None
        return code

    def lookup(self, value: Any) -> int:
        """The code of a value without interning (``MISSING_CODE`` if unseen)."""
        if value is None:
            return NULL_CODE
        return self._codes.get(value, MISSING_CODE)

    def encode_values(self, values: Sequence[Any]) -> "np.ndarray":
        """Encode a whole column to an ``int64`` code array."""
        codes = np.empty(len(values), dtype=np.int64)
        lookup = self._codes.get
        table = self._codes
        mirror_values = self._values
        changed = False
        for index, value in enumerate(values):
            if value is None:
                codes[index] = NULL_CODE
                continue
            code = lookup(value)
            if code is None:
                code = len(table)
                table[value] = code
                mirror_values.append(value)
                changed = True
            codes[index] = code
        if changed:
            self._mirror = None
        return codes

    def decode_scalar(self, code: int) -> Any:
        if code == NULL_CODE:
            return None
        return self._values[code + 1]

    def decode(self, codes: "np.ndarray") -> "np.ndarray":
        """Decode a code array to an object array of the original values."""
        mirror = self._mirror
        if mirror is None or len(mirror) != len(self._values):
            mirror = np.empty(len(self._values), dtype=object)
            mirror[:] = self._values
            self._mirror = mirror
        return mirror[np.asarray(codes, dtype=np.int64) + 1]

    def decode_list(self, codes: "np.ndarray") -> List[Any]:
        return self.decode(codes).tolist()


class ColumnBatch:
    """A batch of rows in columnar form.

    ``columns`` holds one ``int64`` code array per schema column, all of
    the same base length; ``selection`` (when set) is an index array into
    those base arrays giving the batch's logical rows, in order.  Filters
    and gathers compose the selection; ``materialize`` applies it.
    """

    __slots__ = ("schema", "columns", "selection", "_gathered")

    def __init__(
        self,
        schema: TableSchema,
        columns: Sequence["np.ndarray"],
        selection: Optional["np.ndarray"] = None,
    ) -> None:
        self.schema = schema
        self.columns = list(columns)
        self.selection = selection
        self._gathered: Dict[int, "np.ndarray"] = {}

    @property
    def length(self) -> int:
        if self.selection is not None:
            return len(self.selection)
        return len(self.columns[0]) if self.columns else 0

    def column_codes(self, position: int) -> "np.ndarray":
        """The code array of one column with the selection applied."""
        column = self.columns[position]
        if self.selection is None:
            return column
        gathered = self._gathered.get(position)
        if gathered is None:
            gathered = column[self.selection]
            self._gathered[position] = gathered
        return gathered

    def filter(self, mask: "np.ndarray") -> "ColumnBatch":
        """Keep the rows where ``mask`` is True (stable)."""
        if self.selection is None:
            selection = np.nonzero(mask)[0]
        else:
            selection = self.selection[mask]
        return ColumnBatch(self.schema, self.columns, selection)

    def take(self, indices: "np.ndarray") -> "ColumnBatch":
        """Gather rows by position within the batch (duplicates allowed)."""
        indices = np.asarray(indices, dtype=np.intp)
        if self.selection is None:
            selection = indices
        else:
            selection = self.selection[indices]
        return ColumnBatch(self.schema, self.columns, selection)

    def materialize(self) -> "ColumnBatch":
        """Apply the selection, yielding a batch with identity selection."""
        if self.selection is None:
            return self
        return ColumnBatch(
            self.schema, [self.column_codes(i) for i in range(len(self.columns))]
        )

    def select_columns(
        self, positions: Sequence[int], schema: TableSchema
    ) -> "ColumnBatch":
        """Project to a subset (or reordering) of columns under a new schema."""
        return ColumnBatch(schema, [self.columns[p] for p in positions], self.selection)

    def to_rows(self, encoder: ValueEncoder) -> List[Tuple[Any, ...]]:
        """Decode the batch back to the row engine's list-of-tuples form."""
        if self.length == 0:
            return []
        decoded = [
            encoder.decode_list(self.column_codes(i)) for i in range(len(self.columns))
        ]
        return list(zip(*decoded))


def concat_batches(
    left: ColumnBatch, right: ColumnBatch, schema: TableSchema
) -> ColumnBatch:
    """Combine two equal-length batches side by side (join output)."""
    left = left.materialize()
    right = right.materialize()
    return ColumnBatch(schema, left.columns + right.columns)


def empty_batch(schema: TableSchema) -> ColumnBatch:
    return ColumnBatch(schema, [np.empty(0, dtype=np.int64) for _ in range(len(schema))])


class ColumnarContext:
    """Per-executor columnar state: the encoder and the base-column cache."""

    def __init__(self, encoder: Optional[ValueEncoder] = None) -> None:
        if not NUMPY_AVAILABLE:  # pragma: no cover - exercised only without numpy
            raise RuntimeError("columnar execution requires numpy")
        self.encoder = encoder or ValueEncoder()
        self._table_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def table_columns(self, table) -> List["np.ndarray"]:
        """Encoded base columns of a table, cached per table version."""
        version = getattr(table, "version", None)
        cached = self._table_cache.get(table)
        if (
            cached is not None
            and cached[0] == version
            and cached[1] == len(table.rows)
        ):
            return cached[2]
        rows = table.rows
        columns = [
            self.encoder.encode_values([row[position] for row in rows])
            for position in range(len(table.schema))
        ]
        self._table_cache[table] = (version, len(rows), columns)
        return columns

    def batch_from_rows(
        self, schema: TableSchema, rows: Iterable[Tuple[Any, ...]]
    ) -> ColumnBatch:
        """Encode precomputed rows (fallback operators, ``Materialize``)."""
        rows = list(rows)
        columns = [
            self.encoder.encode_values([row[position] for row in rows])
            for position in range(len(schema))
        ]
        return ColumnBatch(schema, columns)


# ----------------------------------------------------------------------
# Vectorized kernels (all order-preserving; see module docstring)
# ----------------------------------------------------------------------


def composite_codes(key_columns: Sequence["np.ndarray"]) -> "np.ndarray":
    """Collapse several code columns into one comparable group-id column.

    Two rows receive the same group id iff they agree on every key column
    (including NULLs, which behave as an ordinary distinct value — the
    semantics duplicate elimination needs).  Group ids are dense ranks in
    an arbitrary but internally consistent order; they are suitable for
    grouping and equality, not for ordering by value.
    """
    gid = np.asarray(key_columns[0], dtype=np.int64)
    for nxt in key_columns[1:]:
        n = len(gid)
        if n == 0:
            return gid
        order = np.lexsort((nxt, gid))
        sorted_a = gid[order]
        sorted_b = nxt[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (sorted_a[1:] != sorted_a[:-1]) | (sorted_b[1:] != sorted_b[:-1])
        ranks = np.cumsum(boundary) - 1
        gid = np.empty(n, dtype=np.int64)
        gid[order] = ranks
    return gid


def first_occurrence_indices(gids: "np.ndarray") -> "np.ndarray":
    """Row positions of the first occurrence of each group id, in row order."""
    n = len(gids)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    order = np.argsort(gids, kind="stable")
    sorted_gids = gids[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_gids[1:] != sorted_gids[:-1]
    return np.sort(order[boundary])


def group_slices(gids: "np.ndarray") -> List[Tuple[int, "np.ndarray"]]:
    """Group rows by group id, in first-occurrence order.

    Returns ``(gid, member_row_positions)`` pairs where groups appear in
    the order their first row appears and each group's members are in row
    order — exactly the nesting the row engine's dict-based ``Aggregate``
    produces.  One stable argsort instead of a Python dict fill.
    """
    n = len(gids)
    if n == 0:
        return []
    order = np.argsort(gids, kind="stable")
    sorted_gids = gids[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_gids[1:] != sorted_gids[:-1]
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], n)
    groups = [
        (int(sorted_gids[start]), order[start:end])
        for start, end in zip(starts, ends)
    ]
    # First-occurrence order == ascending first member position.
    groups.sort(key=lambda item: int(item[1][0]))
    return groups


def hash_join_indices(
    left_keys: Sequence["np.ndarray"], right_keys: Sequence["np.ndarray"]
) -> Tuple["np.ndarray", "np.ndarray", int]:
    """Equality-join two sides on code columns, emitting gather indices.

    Returns ``(left_idx, right_idx, build_count)`` where the pairs
    reproduce the row engine's hash join output order exactly: probe
    (left) rows in their original order, and for each probe row its build
    (right) matches in build-side insertion order.  Rows with a NULL in
    any key column never match (both sides); ``build_count`` is the number
    of non-NULL-key build rows (the row engine's ``build_rows`` counter).
    """
    n_left = len(left_keys[0])
    left_valid = np.ones(n_left, dtype=bool)
    for column in left_keys:
        left_valid &= column != NULL_CODE
    right_valid = np.ones(len(right_keys[0]), dtype=bool)
    for column in right_keys:
        right_valid &= column != NULL_CODE
    build_count = int(right_valid.sum())
    empty = np.empty(0, dtype=np.intp)
    if build_count == 0 or not left_valid.any():
        return empty, empty, build_count

    if len(left_keys) == 1:
        gid_left = np.asarray(left_keys[0], dtype=np.int64)
        gid_right = np.asarray(right_keys[0], dtype=np.int64)
    else:
        combined = composite_codes(
            [np.concatenate((l, r)) for l, r in zip(left_keys, right_keys)]
        )
        gid_left = combined[:n_left]
        gid_right = combined[n_left:]

    build_rows = np.nonzero(right_valid)[0]
    build_gids = gid_right[build_rows]
    order = np.argsort(build_gids, kind="stable")
    sorted_rows = build_rows[order]
    sorted_gids = build_gids[order]
    boundary = np.empty(len(sorted_gids), dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_gids[1:] != sorted_gids[:-1]
    group_starts = np.nonzero(boundary)[0]
    group_keys = sorted_gids[group_starts]
    group_counts = np.diff(np.append(group_starts, len(sorted_gids)))

    probe_rows = np.nonzero(left_valid)[0]
    probe_gids = gid_left[probe_rows]
    positions = np.searchsorted(group_keys, probe_gids)
    clipped = np.minimum(positions, len(group_keys) - 1)
    matched = group_keys[clipped] == probe_gids
    counts = np.where(matched, group_counts[clipped], 0)
    total = int(counts.sum())
    if total == 0:
        return empty, empty, build_count

    left_idx = np.repeat(probe_rows, counts)
    starts = np.repeat(group_starts[clipped], counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    right_idx = sorted_rows[starts + within]
    return left_idx.astype(np.intp), right_idx.astype(np.intp), build_count
