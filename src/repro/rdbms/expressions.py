"""Expression trees for filters and join conditions.

Expressions are evaluated against a row and a schema (column names resolve to
positions at bind time for speed).  The grounding compiler only produces
comparisons, conjunctions and negations, but the full set here keeps the
engine usable as a standalone component and exercised by its own tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from repro.rdbms.schema import TableSchema
from repro.rdbms.types import format_value

BoundEvaluator = Callable[[Tuple[Any, ...]], Any]


class Expression:
    """Base class for expression nodes."""

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        """Return a fast row -> value evaluator for the given schema."""
        raise NotImplementedError

    def referenced_columns(self) -> List[str]:
        """Names of the columns the expression reads."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render the expression as SQL text (documentation/debugging)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: Any

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        value = self.value
        return lambda row: value

    def referenced_columns(self) -> List[str]:
        return []

    def to_sql(self) -> str:
        return format_value(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column by (possibly alias-qualified) name."""

    name: str

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        position = schema.position(self.name)
        return lambda row: row[position]

    def referenced_columns(self) -> List[str]:
        return [self.name]

    def to_sql(self) -> str:
        return self.name


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

# Null-safe comparisons treat NULL as an ordinary (distinct) value, which is
# what the grounding pruning predicates need: ``truth IS DISTINCT FROM TRUE``
# keeps rows whose truth value is FALSE *or* NULL (unknown).
_NULL_SAFE_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "is_distinct_from": lambda a, b: a != b,
    "is_not_distinct_from": lambda a, b: a == b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison between two sub-expressions.

    Comparisons involving NULL evaluate to ``False``, except the null-safe
    operators ``is_distinct_from`` / ``is_not_distinct_from`` (SQL's ``IS
    [NOT] DISTINCT FROM``) and the dedicated ``IS NULL`` forms provided by
    :class:`IsNull`.
    """

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARATORS and self.operator not in _NULL_SAFE_COMPARATORS:
            raise ValueError(f"unsupported comparison operator {self.operator!r}")

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        if self.operator in _NULL_SAFE_COMPARATORS:
            compare_null_safe = _NULL_SAFE_COMPARATORS[self.operator]
            return lambda row: compare_null_safe(left(row), right(row))
        compare = _COMPARATORS[self.operator]

        def evaluate(row: Tuple[Any, ...]) -> bool:
            left_value = left(row)
            right_value = right(row)
            if left_value is None or right_value is None:
                return False
            return compare(left_value, right_value)

        return evaluate

    def referenced_columns(self) -> List[str]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def to_sql(self) -> str:
        operator = {
            "!=": "<>",
            "is_distinct_from": "IS DISTINCT FROM",
            "is_not_distinct_from": "IS NOT DISTINCT FROM",
        }.get(self.operator, self.operator)
        return f"{self.left.to_sql()} {operator} {self.right.to_sql()}"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` (or ``IS NOT NULL`` when ``negated``)."""

    operand: Expression
    negated: bool = False

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        operand = self.operand.bind(schema)
        negated = self.negated
        return lambda row: (operand(row) is not None) if negated else (operand(row) is None)

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.to_sql()} {suffix}"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of any number of sub-expressions (true when empty)."""

    operands: Tuple[Expression, ...]

    @classmethod
    def of(cls, *operands: Expression) -> "And":
        return cls(tuple(operands))

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        bound = [operand.bind(schema) for operand in self.operands]
        return lambda row: all(evaluate(row) for evaluate in bound)

    def referenced_columns(self) -> List[str]:
        names: List[str] = []
        for operand in self.operands:
            names.extend(operand.referenced_columns())
        return names

    def to_sql(self) -> str:
        if not self.operands:
            return "TRUE"
        return " AND ".join(f"({operand.to_sql()})" for operand in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of any number of sub-expressions (false when empty)."""

    operands: Tuple[Expression, ...]

    @classmethod
    def of(cls, *operands: Expression) -> "Or":
        return cls(tuple(operands))

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        bound = [operand.bind(schema) for operand in self.operands]
        return lambda row: any(evaluate(row) for evaluate in bound)

    def referenced_columns(self) -> List[str]:
        names: List[str] = []
        for operand in self.operands:
            names.extend(operand.referenced_columns())
        return names

    def to_sql(self) -> str:
        if not self.operands:
            return "FALSE"
        return " OR ".join(f"({operand.to_sql()})" for operand in self.operands)


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        operand = self.operand.bind(schema)
        return lambda row: not operand(row)

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"


def conjunction(expressions: Sequence[Expression]) -> Expression:
    """Combine expressions with AND, simplifying the 0- and 1-element cases."""
    expressions = [expression for expression in expressions if expression is not None]
    if not expressions:
        return And(())
    if len(expressions) == 1:
        return expressions[0]
    return And(tuple(expressions))


def column_equals(column: str, value: Any) -> Comparison:
    """Shorthand for ``column = constant`` filters."""
    return Comparison("=", ColumnRef(column), Const(value))


def columns_equal(left: str, right: str) -> Comparison:
    """Shorthand for ``left = right`` join conditions."""
    return Comparison("=", ColumnRef(left), ColumnRef(right))
