"""Expression trees for filters and join conditions.

Expressions are evaluated against a row and a schema (column names resolve to
positions at bind time for speed).  The grounding compiler only produces
comparisons, conjunctions and negations, but the full set here keeps the
engine usable as a standalone component and exercised by its own tests.

Each node also supports ``bind_batch``, the columnar twin of ``bind``: it
compiles the expression to a vectorized evaluator over a
:class:`~repro.rdbms.column_batch.ColumnBatch`, returning a boolean numpy
mask (predicates) or a code array (value nodes).  Equality and null-safe
comparisons run directly on dictionary codes — code equality is value
equality because the encoder is shared — while ordering comparisons decode
back to values, preserving the row engine's Python comparison semantics
exactly (including "NULL compares False" for the standard operators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from repro.rdbms.column_batch import NULL_CODE
from repro.rdbms.schema import TableSchema
from repro.rdbms.types import format_value

try:  # gated dependency, mirroring repro.rdbms.column_batch
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

BoundEvaluator = Callable[[Tuple[Any, ...]], Any]

#: A compiled batch evaluator: ColumnBatch -> bool mask | code array | scalar code.
BatchEvaluator = Callable[[Any], Any]


def _as_code_array(result: Any, batch, encoder) -> Any:
    """Coerce a batch evaluation result to codes (array or scalar).

    Boolean masks (nested predicates used as comparison operands) are
    re-encoded through the shared dictionary so True/False compare like the
    Python values they are.
    """
    if isinstance(result, np.ndarray) and result.dtype == bool:
        true_code = encoder.encode_scalar(True)
        false_code = encoder.encode_scalar(False)
        return np.where(result, true_code, false_code)
    return result


def _as_mask(result: Any, batch, encoder) -> "np.ndarray":
    """Coerce a batch evaluation result to a boolean mask (Python truthiness)."""
    n = batch.length
    if isinstance(result, np.ndarray):
        if result.dtype == bool:
            return result
        return np.fromiter(
            (bool(value) for value in encoder.decode_list(result)), dtype=bool, count=n
        )
    return np.full(n, bool(encoder.decode_scalar(result)), dtype=bool)


def _decoded_values(result: Any, batch, encoder) -> List[Any]:
    """Decode a batch evaluation result to a per-row list of Python values."""
    if isinstance(result, np.ndarray):
        if result.dtype == bool:
            return result.tolist()
        return encoder.decode_list(result)
    return [encoder.decode_scalar(result)] * batch.length


class Expression:
    """Base class for expression nodes."""

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        """Return a fast row -> value evaluator for the given schema."""
        raise NotImplementedError

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        """Return a vectorized ColumnBatch evaluator for the given schema."""
        raise NotImplementedError

    def referenced_columns(self) -> List[str]:
        """Names of the columns the expression reads."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render the expression as SQL text (documentation/debugging)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: Any

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        value = self.value
        return lambda row: value

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        code = encoder.encode_scalar(self.value)
        return lambda batch: code

    def referenced_columns(self) -> List[str]:
        return []

    def to_sql(self) -> str:
        return format_value(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column by (possibly alias-qualified) name."""

    name: str

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        position = schema.position(self.name)
        return lambda row: row[position]

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        position = schema.position(self.name)
        return lambda batch: batch.column_codes(position)

    def referenced_columns(self) -> List[str]:
        return [self.name]

    def to_sql(self) -> str:
        return self.name


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

# Null-safe comparisons treat NULL as an ordinary (distinct) value, which is
# what the grounding pruning predicates need: ``truth IS DISTINCT FROM TRUE``
# keeps rows whose truth value is FALSE *or* NULL (unknown).
_NULL_SAFE_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "is_distinct_from": lambda a, b: a != b,
    "is_not_distinct_from": lambda a, b: a == b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison between two sub-expressions.

    Comparisons involving NULL evaluate to ``False``, except the null-safe
    operators ``is_distinct_from`` / ``is_not_distinct_from`` (SQL's ``IS
    [NOT] DISTINCT FROM``) and the dedicated ``IS NULL`` forms provided by
    :class:`IsNull`.
    """

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARATORS and self.operator not in _NULL_SAFE_COMPARATORS:
            raise ValueError(f"unsupported comparison operator {self.operator!r}")

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        if self.operator in _NULL_SAFE_COMPARATORS:
            compare_null_safe = _NULL_SAFE_COMPARATORS[self.operator]
            return lambda row: compare_null_safe(left(row), right(row))
        compare = _COMPARATORS[self.operator]

        def evaluate(row: Tuple[Any, ...]) -> bool:
            left_value = left(row)
            right_value = right(row)
            if left_value is None or right_value is None:
                return False
            return compare(left_value, right_value)

        return evaluate

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        left = self.left.bind_batch(schema, encoder)
        right = self.right.bind_batch(schema, encoder)
        operator = self.operator

        if operator in ("=", "!=", "is_distinct_from", "is_not_distinct_from"):
            # Equality-family comparisons run directly on dictionary codes:
            # shared-encoder code equality is exactly Python value equality.
            null_safe = operator in _NULL_SAFE_COMPARATORS
            negated = operator in ("!=", "is_distinct_from")

            def evaluate(batch) -> "np.ndarray":
                left_codes = _as_code_array(left(batch), batch, encoder)
                right_codes = _as_code_array(right(batch), batch, encoder)
                if negated:
                    result = left_codes != right_codes
                else:
                    result = left_codes == right_codes
                if not null_safe:
                    # Standard comparisons are False when either side is NULL.
                    result = (
                        result
                        & (left_codes != NULL_CODE)
                        & (right_codes != NULL_CODE)
                    )
                if not isinstance(result, np.ndarray):
                    result = np.full(batch.length, bool(result), dtype=bool)
                return result

            return evaluate

        # Ordering comparisons: code order is first-occurrence order, not
        # value order, so decode and compare with Python semantics.
        compare = _COMPARATORS[operator]

        def evaluate_ordering(batch) -> "np.ndarray":
            left_values = _decoded_values(left(batch), batch, encoder)
            right_values = _decoded_values(right(batch), batch, encoder)
            return np.fromiter(
                (
                    a is not None and b is not None and compare(a, b)
                    for a, b in zip(left_values, right_values)
                ),
                dtype=bool,
                count=batch.length,
            )

        return evaluate_ordering

    def referenced_columns(self) -> List[str]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def to_sql(self) -> str:
        operator = {
            "!=": "<>",
            "is_distinct_from": "IS DISTINCT FROM",
            "is_not_distinct_from": "IS NOT DISTINCT FROM",
        }.get(self.operator, self.operator)
        return f"{self.left.to_sql()} {operator} {self.right.to_sql()}"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` (or ``IS NOT NULL`` when ``negated``)."""

    operand: Expression
    negated: bool = False

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        operand = self.operand.bind(schema)
        negated = self.negated
        return lambda row: (operand(row) is not None) if negated else (operand(row) is None)

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        operand = self.operand.bind_batch(schema, encoder)
        negated = self.negated

        def evaluate(batch) -> "np.ndarray":
            codes = _as_code_array(operand(batch), batch, encoder)
            result = (codes != NULL_CODE) if negated else (codes == NULL_CODE)
            if not isinstance(result, np.ndarray):
                result = np.full(batch.length, bool(result), dtype=bool)
            return result

        return evaluate

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.to_sql()} {suffix}"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of any number of sub-expressions (true when empty)."""

    operands: Tuple[Expression, ...]

    @classmethod
    def of(cls, *operands: Expression) -> "And":
        return cls(tuple(operands))

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        bound = [operand.bind(schema) for operand in self.operands]
        return lambda row: all(evaluate(row) for evaluate in bound)

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        bound = [operand.bind_batch(schema, encoder) for operand in self.operands]

        def evaluate(batch) -> "np.ndarray":
            result = np.ones(batch.length, dtype=bool)
            for operand in bound:
                result &= _as_mask(operand(batch), batch, encoder)
            return result

        return evaluate

    def referenced_columns(self) -> List[str]:
        names: List[str] = []
        for operand in self.operands:
            names.extend(operand.referenced_columns())
        return names

    def to_sql(self) -> str:
        if not self.operands:
            return "TRUE"
        return " AND ".join(f"({operand.to_sql()})" for operand in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of any number of sub-expressions (false when empty)."""

    operands: Tuple[Expression, ...]

    @classmethod
    def of(cls, *operands: Expression) -> "Or":
        return cls(tuple(operands))

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        bound = [operand.bind(schema) for operand in self.operands]
        return lambda row: any(evaluate(row) for evaluate in bound)

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        bound = [operand.bind_batch(schema, encoder) for operand in self.operands]

        def evaluate(batch) -> "np.ndarray":
            result = np.zeros(batch.length, dtype=bool)
            for operand in bound:
                result |= _as_mask(operand(batch), batch, encoder)
            return result

        return evaluate

    def referenced_columns(self) -> List[str]:
        names: List[str] = []
        for operand in self.operands:
            names.extend(operand.referenced_columns())
        return names

    def to_sql(self) -> str:
        if not self.operands:
            return "FALSE"
        return " OR ".join(f"({operand.to_sql()})" for operand in self.operands)


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def bind(self, schema: TableSchema) -> BoundEvaluator:
        operand = self.operand.bind(schema)
        return lambda row: not operand(row)

    def bind_batch(self, schema: TableSchema, encoder) -> BatchEvaluator:
        operand = self.operand.bind_batch(schema, encoder)
        return lambda batch: ~_as_mask(operand(batch), batch, encoder)

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"


def conjunction(expressions: Sequence[Expression]) -> Expression:
    """Combine expressions with AND, simplifying the 0- and 1-element cases."""
    expressions = [expression for expression in expressions if expression is not None]
    if not expressions:
        return And(())
    if len(expressions) == 1:
        return expressions[0]
    return And(tuple(expressions))


def column_equals(column: str, value: Any) -> Comparison:
    """Shorthand for ``column = constant`` filters."""
    return Comparison("=", ColumnRef(column), Const(value))


def columns_equal(left: str, right: str) -> Comparison:
    """Shorthand for ``left = right`` join conditions."""
    return Comparison("=", ColumnRef(left), ColumnRef(right))
