"""Page-based storage manager and buffer pool with I/O accounting.

The engine keeps every table's rows grouped into fixed-size *pages*.  A
:class:`BufferPool` of limited capacity sits in front of the pages: page
accesses that hit the pool are free, misses are charged to a simulated clock
(and counted), mirroring the way a real RDBMS pays a per-page cost for data
that does not fit in its buffer cache.

Two consumers rely on this:

* the grounding executor charges *sequential* page reads per scan, which the
  optimizer's cost model also uses, and
* the RDBMS-backed WalkSAT (Tuffy-mm, Appendix B.2 of the paper) performs
  *random* page accesses per flip, which is exactly the access pattern the
  paper identifies as the reason in-database search is three to five orders
  of magnitude slower than in-memory search.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.utils.clock import SimulatedClock

DEFAULT_PAGE_SIZE = 128


@dataclass
class Page:
    """A fixed-capacity block of rows belonging to one table."""

    table_name: str
    page_number: int
    rows: List[Tuple[Any, ...]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class IOStatistics:
    """Counters of storage activity, reported by benchmarks."""

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    sequential_reads: int = 0
    random_reads: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.sequential_reads = 0
        self.random_reads = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
        }


class BufferPool:
    """An LRU cache of pages with hit/miss accounting.

    ``capacity_pages`` bounds how many pages are "in memory" at once.  When
    a clock is attached, each miss advances it by the configured page-read
    cost (sequential or random, depending on how the access was declared).
    """

    def __init__(
        self,
        capacity_pages: int = 1024,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.capacity_pages = capacity_pages
        self.clock = clock
        self.stats = IOStatistics()
        self._cache: "OrderedDict[Tuple[str, int], Page]" = OrderedDict()

    def access(self, page: Page, sequential: bool = True) -> Page:
        """Record an access to a page, returning it for convenience."""
        key = (page.table_name, page.page_number)
        self.stats.page_reads += 1
        if sequential:
            self.stats.sequential_reads += 1
        else:
            self.stats.random_reads += 1
        if key in self._cache:
            self.stats.buffer_hits += 1
            self._cache.move_to_end(key)
            return page
        self.stats.buffer_misses += 1
        if self.clock is not None:
            event = "sequential_page_read" if sequential else "page_read"
            self.clock.charge(event)
        self._cache[key] = page
        while len(self._cache) > self.capacity_pages:
            self._cache.popitem(last=False)
        return page

    def write(self, page: Page) -> None:
        """Record a page write (dirty page flush)."""
        self.stats.page_writes += 1
        if self.clock is not None:
            self.clock.charge("page_write")
        key = (page.table_name, page.page_number)
        self._cache[key] = page
        self._cache.move_to_end(key)
        while len(self._cache) > self.capacity_pages:
            self._cache.popitem(last=False)

    def resident_pages(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()


class StorageManager:
    """Owns the pages of every table and routes accesses through a pool."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool: Optional[BufferPool] = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.buffer_pool = buffer_pool or BufferPool()
        self._pages: Dict[str, List[Page]] = {}

    @property
    def stats(self) -> IOStatistics:
        return self.buffer_pool.stats

    def create_table(self, table_name: str) -> None:
        self._pages.setdefault(table_name, [])

    def drop_table(self, table_name: str) -> None:
        self._pages.pop(table_name, None)

    def append_row(self, table_name: str, row: Tuple[Any, ...]) -> Tuple[int, int]:
        """Append a row, returning its ``(page_number, slot)`` address."""
        pages = self._pages.setdefault(table_name, [])
        if not pages or len(pages[-1]) >= self.page_size:
            pages.append(Page(table_name, len(pages)))
        page = pages[-1]
        page.rows.append(row)
        return page.page_number, len(page.rows) - 1

    def bulk_load(self, table_name: str, rows: Sequence[Tuple[Any, ...]]) -> None:
        """Append many rows, charging one write per newly started page.

        Pages are filled slice-at-a-time rather than row-at-a-time; the
        resulting page layout and write charges are identical to repeated
        :meth:`append_row` calls.
        """
        pages = self._pages.setdefault(table_name, [])
        page_size = self.page_size
        loaded = 0
        while loaded < len(rows):
            if not pages or len(pages[-1]) >= page_size:
                pages.append(Page(table_name, len(pages)))
                self.buffer_pool.stats.page_writes += 1
            page = pages[-1]
            space = page_size - len(page.rows)
            chunk = rows[loaded : loaded + space]
            page.rows.extend(chunk)
            loaded += len(chunk)

    def page_count(self, table_name: str) -> int:
        return len(self._pages.get(table_name, []))

    def row_count(self, table_name: str) -> int:
        return sum(len(page) for page in self._pages.get(table_name, []))

    def scan(self, table_name: str) -> Iterator[Tuple[Any, ...]]:
        """Sequentially scan a table, charging sequential page reads."""
        for page in self._pages.get(table_name, []):
            self.buffer_pool.access(page, sequential=True)
            yield from page.rows

    def charge_scan(self, table_name: str) -> None:
        """Charge a full sequential scan without yielding rows.

        The columnar backend reads tables from its cached column arrays but
        must pay the same per-page costs as a row scan; this walks the pages
        through the buffer pool exactly like :meth:`scan` does.
        """
        for page in self._pages.get(table_name, []):
            self.buffer_pool.access(page, sequential=True)

    def read_row(self, table_name: str, page_number: int, slot: int) -> Tuple[Any, ...]:
        """Random access to a single row, charging a random page read."""
        page = self._page(table_name, page_number)
        self.buffer_pool.access(page, sequential=False)
        return page.rows[slot]

    def write_row(
        self, table_name: str, page_number: int, slot: int, row: Tuple[Any, ...]
    ) -> None:
        """Random in-place update of a single row (charged as a page write)."""
        page = self._page(table_name, page_number)
        self.buffer_pool.access(page, sequential=False)
        page.rows[slot] = row
        self.buffer_pool.write(page)

    def _page(self, table_name: str, page_number: int) -> Page:
        try:
            return self._pages[table_name][page_number]
        except (KeyError, IndexError) as error:
            raise KeyError(
                f"no page {page_number} in table {table_name!r}"
            ) from error
