"""The Database facade: catalog + storage + optimizer + executor.

This is the object the grounding layer talks to, playing the role PostgreSQL
plays for Tuffy.  It intentionally exposes a narrow interface: create and
bulk-load tables, build indexes, run conjunctive queries (optionally dumping
the result into another table), and report I/O statistics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from repro.rdbms.catalog import Catalog
from repro.rdbms.executor import ColumnarQueryResult, Executor, QueryResult
from repro.rdbms.indexes import HashIndex, IndexCatalog, SortedIndex
from repro.rdbms.optimizer import ConjunctiveQuery, Optimizer, OptimizerOptions, PlannedQuery
from repro.rdbms.schema import TableSchema
from repro.rdbms.sql import render_select
from repro.rdbms.stats import StatisticsCatalog, TableStatistics
from repro.rdbms.storage import BufferPool, IOStatistics, StorageManager
from repro.rdbms.table import Table
from repro.utils.clock import SimulatedClock


class Database:
    """An embedded relational database instance."""

    def __init__(
        self,
        page_size: int = 128,
        buffer_pool_pages: int = 4096,
        clock: Optional[SimulatedClock] = None,
        optimizer_options: Optional[OptimizerOptions] = None,
        execution_backend: str = "auto",
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.buffer_pool = BufferPool(buffer_pool_pages, clock=self.clock)
        self.storage = StorageManager(page_size=page_size, buffer_pool=self.buffer_pool)
        self.catalog = Catalog(storage=self.storage)
        self.statistics = StatisticsCatalog()
        self.indexes = IndexCatalog()
        self.optimizer = Optimizer(
            self.catalog.tables(), self.statistics, optimizer_options or OptimizerOptions()
        )
        self.executor = Executor(execution_backend)

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema, replace: bool = False) -> Table:
        return self.catalog.create_table(name, schema, replace=replace)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.statistics.invalidate(name)
        self.indexes.drop_table_indexes(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def has_table(self, name: str) -> bool:
        return name in self.catalog

    def bulk_load(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-load rows into a table, invalidating its cached statistics.

        Statistics are recomputed lazily by the optimizer's
        ``get_or_analyze`` on the next query that touches the table, so
        loads into tables no query ever reads (e.g. the persisted ground
        clause table) never pay the analyze scan.
        """
        table = self.catalog.table(name)
        count = table.bulk_load(rows)
        self.statistics.invalidate(name)
        return count

    def analyze(self, name: str) -> TableStatistics:
        return self.statistics.analyze(self.catalog.table(name))

    def build_hash_index(self, table_name: str, columns: Sequence[str]) -> HashIndex:
        return self.indexes.build_hash_index(self.catalog.table(table_name), columns)

    def build_sorted_index(self, table_name: str, column: str) -> SortedIndex:
        return self.indexes.build_sorted_index(self.catalog.table(table_name), column)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def plan(
        self, query: ConjunctiveQuery, options: Optional[OptimizerOptions] = None
    ) -> PlannedQuery:
        return self.optimizer.plan(query, options)

    def execute(
        self,
        query: ConjunctiveQuery,
        options: Optional[OptimizerOptions] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        planned = self.optimizer.plan(query, options)
        return self.executor.execute(planned, backend=backend)

    def execute_batch(
        self, query: ConjunctiveQuery, options: Optional[OptimizerOptions] = None
    ) -> ColumnarQueryResult:
        """Plan and run a query on the columnar engine, returning columns."""
        planned = self.optimizer.plan(query, options)
        return self.executor.execute_batch(planned)

    def execute_into(
        self,
        query: ConjunctiveQuery,
        target_table: str,
        options: Optional[OptimizerOptions] = None,
        truncate: bool = False,
        backend: Optional[str] = None,
    ) -> QueryResult:
        planned = self.optimizer.plan(query, options)
        target = self.catalog.table(target_table)
        return self.executor.execute_into(planned, target, truncate=truncate, backend=backend)

    def explain(
        self, query: ConjunctiveQuery, options: Optional[OptimizerOptions] = None
    ) -> str:
        return self.optimizer.plan(query, options).explain()

    def to_sql(self, query: ConjunctiveQuery) -> str:
        """The SQL text Tuffy would have sent to PostgreSQL for this query."""
        return render_select(query)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def io_statistics(self) -> IOStatistics:
        return self.storage.stats

    def reset_io_statistics(self) -> None:
        self.storage.stats.reset()

    def table_sizes(self) -> Dict[str, int]:
        return {table.name: len(table) for table in self.catalog}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(tables={self.catalog.table_names()})"
