"""Conjunctive queries and the query optimizer.

Grounding an MLN clause is a conjunctive select-project-join query over the
per-predicate atom tables (paper, Section 3.1 and Appendix B.1).  This module
defines:

* :class:`ConjunctiveQuery` — the logical form of such a query: base
  relations with aliases, equality join conditions, constant filters,
  column-to-column comparisons, a projection list and a distinct flag;
* :class:`OptimizerOptions` — the knobs exercised by the paper's lesion
  study (Table 6): allowed join algorithms, whether to respect the declared
  join order and whether to push constant filters below joins;
* :class:`Optimizer` — turns a conjunctive query into a tree of physical
  operators using System-R style cardinality estimates and a greedy join
  ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.rdbms.expressions import (
    ColumnRef,
    Comparison,
    Const,
    Expression,
    conjunction,
)
from repro.rdbms.operators import (
    Distinct,
    Filter,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    SortMergeJoin,
    TableScan,
)
from repro.rdbms.stats import (
    StatisticsCatalog,
    estimate_filter_selectivity,
    estimate_join_cardinality,
)
from repro.rdbms.table import Table


class QueryError(ValueError):
    """Raised for malformed conjunctive queries."""


@dataclass(frozen=True)
class QueryRelation:
    """A base relation used by a query, under an alias."""

    alias: str
    table_name: str


@dataclass(frozen=True)
class JoinCondition:
    """An equality between two alias-qualified columns (``t0.a = t1.b``)."""

    left: str
    right: str

    def aliases(self) -> Tuple[str, str]:
        return self.left.split(".", 1)[0], self.right.split(".", 1)[0]


@dataclass(frozen=True)
class ConstantFilter:
    """A comparison between an alias-qualified column and a constant."""

    column: str
    operator: str
    value: Any

    @property
    def alias(self) -> str:
        return self.column.split(".", 1)[0]

    def to_expression(self) -> Expression:
        return Comparison(self.operator, ColumnRef(self.column), Const(self.value))


@dataclass(frozen=True)
class ColumnComparison:
    """A non-join comparison between two columns (e.g. ``t0.c != t1.c``)."""

    left: str
    operator: str
    right: str

    def aliases(self) -> Tuple[str, str]:
        return self.left.split(".", 1)[0], self.right.split(".", 1)[0]

    def to_expression(self) -> Expression:
        return Comparison(self.operator, ColumnRef(self.left), ColumnRef(self.right))


@dataclass
class ConjunctiveQuery:
    """A select-project-join query in logical form."""

    relations: List[QueryRelation] = field(default_factory=list)
    join_conditions: List[JoinCondition] = field(default_factory=list)
    constant_filters: List[ConstantFilter] = field(default_factory=list)
    column_comparisons: List[ColumnComparison] = field(default_factory=list)
    projection: List[Tuple[str, str]] = field(default_factory=list)
    distinct: bool = False

    def add_relation(self, alias: str, table_name: str) -> None:
        if any(relation.alias == alias for relation in self.relations):
            raise QueryError(f"duplicate alias {alias!r}")
        self.relations.append(QueryRelation(alias, table_name))

    def add_join(self, left: str, right: str) -> None:
        self.join_conditions.append(JoinCondition(left, right))

    def add_constant_filter(self, column: str, operator: str, value: Any) -> None:
        self.constant_filters.append(ConstantFilter(column, operator, value))

    def add_column_comparison(self, left: str, operator: str, right: str) -> None:
        self.column_comparisons.append(ColumnComparison(left, operator, right))

    def add_output(self, column: str, name: Optional[str] = None) -> None:
        self.projection.append((column, name or column))

    def aliases(self) -> List[str]:
        return [relation.alias for relation in self.relations]

    def validate(self) -> None:
        if not self.relations:
            raise QueryError("query references no relations")
        aliases = set(self.aliases())
        for condition in self.join_conditions:
            for alias in condition.aliases():
                if alias not in aliases:
                    raise QueryError(f"join condition references unknown alias {alias!r}")
        for constant_filter in self.constant_filters:
            if constant_filter.alias not in aliases:
                raise QueryError(
                    f"filter references unknown alias {constant_filter.alias!r}"
                )
        for comparison in self.column_comparisons:
            for alias in comparison.aliases():
                if alias not in aliases:
                    raise QueryError(f"comparison references unknown alias {alias!r}")
        if not self.projection:
            raise QueryError("query has an empty projection list")


@dataclass
class OptimizerOptions:
    """Planner knobs; defaults correspond to the "full optimizer" setting.

    The three lesion settings from Table 6 of the paper map to:

    * full optimizer — the defaults;
    * fixed join order — ``respect_declared_order=True``;
    * fixed join algorithm — ``enable_hash_join=False`` and
      ``enable_sort_merge_join=False`` (nested loop only).
    """

    enable_hash_join: bool = True
    enable_sort_merge_join: bool = True
    enable_predicate_pushdown: bool = True
    respect_declared_order: bool = False
    charge_io: bool = False

    @classmethod
    def full_optimizer(cls) -> "OptimizerOptions":
        return cls()

    @classmethod
    def fixed_join_order(cls) -> "OptimizerOptions":
        return cls(respect_declared_order=True)

    @classmethod
    def nested_loop_only(cls) -> "OptimizerOptions":
        return cls(enable_hash_join=False, enable_sort_merge_join=False)


@dataclass
class PlannedQuery:
    """The optimizer's output: a physical plan plus planning metadata."""

    root: PhysicalOperator
    join_order: List[str]
    estimated_cost: float
    estimated_rows: float

    def explain(self) -> str:
        return self.root.explain()


class Optimizer:
    """Plans conjunctive queries against a set of named tables."""

    def __init__(
        self,
        tables: Dict[str, Table],
        statistics: Optional[StatisticsCatalog] = None,
        options: Optional[OptimizerOptions] = None,
    ) -> None:
        self._tables = tables
        self._statistics = statistics or StatisticsCatalog()
        self.options = options or OptimizerOptions()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def plan(self, query: ConjunctiveQuery, options: Optional[OptimizerOptions] = None) -> PlannedQuery:
        """Produce a physical plan for a validated conjunctive query."""
        query.validate()
        options = options or self.options
        scans = self._build_scans(query, options)
        cardinalities = self._estimate_base_cardinalities(query, options)
        order = self._join_order(query, cardinalities, options)
        plan, cost, rows = self._build_join_tree(query, scans, cardinalities, order, options)
        plan = self._apply_residual_filters(query, plan, options)
        plan = self._apply_projection(query, plan)
        if query.distinct:
            plan = Distinct(plan)
        return PlannedQuery(plan, order, cost, rows)

    # ------------------------------------------------------------------
    # Planning stages
    # ------------------------------------------------------------------

    def _table(self, name: str) -> Table:
        if name not in self._tables:
            raise QueryError(f"unknown table {name!r}")
        return self._tables[name]

    def _build_scans(
        self, query: ConjunctiveQuery, options: OptimizerOptions
    ) -> Dict[str, PhysicalOperator]:
        scans: Dict[str, PhysicalOperator] = {}
        for relation in query.relations:
            table = self._table(relation.table_name)
            operator: PhysicalOperator = TableScan(
                table, relation.alias, charge_io=options.charge_io
            )
            if options.enable_predicate_pushdown:
                filters = [
                    constant_filter.to_expression()
                    for constant_filter in query.constant_filters
                    if constant_filter.alias == relation.alias
                ]
                if filters:
                    operator = Filter(operator, conjunction(filters))
            scans[relation.alias] = operator
        return scans

    def _estimate_base_cardinalities(
        self, query: ConjunctiveQuery, options: OptimizerOptions
    ) -> Dict[str, float]:
        cardinalities: Dict[str, float] = {}
        for relation in query.relations:
            table = self._table(relation.table_name)
            statistics = self._statistics.get_or_analyze(table)
            rows = float(max(statistics.row_count, 1))
            if options.enable_predicate_pushdown:
                equality_columns = [
                    constant_filter.column.split(".", 1)[1]
                    for constant_filter in query.constant_filters
                    if constant_filter.alias == relation.alias
                    and constant_filter.operator == "="
                ]
                rows *= estimate_filter_selectivity(statistics, equality_columns)
            cardinalities[relation.alias] = max(rows, 1.0)
        return cardinalities

    def _join_order(
        self,
        query: ConjunctiveQuery,
        cardinalities: Dict[str, float],
        options: OptimizerOptions,
    ) -> List[str]:
        aliases = query.aliases()
        if options.respect_declared_order or len(aliases) <= 1:
            return list(aliases)
        connectivity = self._connectivity(query)
        # Ties in estimated cardinality are broken by alias name so plans are
        # deterministic across processes (set iteration order is not).
        remaining = sorted(aliases)
        order = [min(remaining, key=lambda alias: (cardinalities[alias], alias))]
        remaining.remove(order[0])
        while remaining:
            joined = set(order)
            connected = [
                alias
                for alias in remaining
                if connectivity.get(alias, set()) & joined
            ]
            candidates = connected if connected else list(remaining)
            next_alias = min(candidates, key=lambda alias: (cardinalities[alias], alias))
            order.append(next_alias)
            remaining.remove(next_alias)
        return order

    def _connectivity(self, query: ConjunctiveQuery) -> Dict[str, Set[str]]:
        connectivity: Dict[str, Set[str]] = {alias: set() for alias in query.aliases()}
        for condition in query.join_conditions:
            left, right = condition.aliases()
            if left != right:
                connectivity[left].add(right)
                connectivity[right].add(left)
        return connectivity

    def _build_join_tree(
        self,
        query: ConjunctiveQuery,
        scans: Dict[str, PhysicalOperator],
        cardinalities: Dict[str, float],
        order: List[str],
        options: OptimizerOptions,
    ) -> Tuple[PhysicalOperator, float, float]:
        plan = scans[order[0]]
        joined: List[str] = [order[0]]
        estimated_rows = cardinalities[order[0]]
        estimated_cost = estimated_rows
        for alias in order[1:]:
            right = scans[alias]
            equalities = self._equalities_between(query, joined, alias)
            left_keys = [left for left, _ in equalities]
            right_keys = [right_column for _, right_column in equalities]
            if left_keys and options.enable_hash_join:
                plan = HashJoin(plan, right, left_keys, right_keys)
                estimated_cost += estimated_rows + cardinalities[alias]
            elif left_keys and options.enable_sort_merge_join:
                plan = SortMergeJoin(plan, right, left_keys, right_keys)
                estimated_cost += (
                    estimated_rows + cardinalities[alias] + estimated_rows + cardinalities[alias]
                )
            else:
                condition = self._join_expression(equalities)
                plan = NestedLoopJoin(plan, right, condition)
                estimated_cost += estimated_rows * cardinalities[alias]
            estimated_rows = self._estimate_join_rows(
                query, joined, alias, estimated_rows, cardinalities[alias], equalities
            )
            joined.append(alias)
        return plan, estimated_cost, estimated_rows

    def _equalities_between(
        self, query: ConjunctiveQuery, joined: Sequence[str], alias: str
    ) -> List[Tuple[str, str]]:
        joined_set = set(joined)
        pairs: List[Tuple[str, str]] = []
        for condition in query.join_conditions:
            left_alias, right_alias = condition.aliases()
            if left_alias in joined_set and right_alias == alias:
                pairs.append((condition.left, condition.right))
            elif right_alias in joined_set and left_alias == alias:
                pairs.append((condition.right, condition.left))
        return pairs

    def _join_expression(self, equalities: Sequence[Tuple[str, str]]) -> Optional[Expression]:
        if not equalities:
            return None
        return conjunction(
            [Comparison("=", ColumnRef(left), ColumnRef(right)) for left, right in equalities]
        )

    def _estimate_join_rows(
        self,
        query: ConjunctiveQuery,
        joined: Sequence[str],
        alias: str,
        left_rows: float,
        right_rows: float,
        equalities: Sequence[Tuple[str, str]],
    ) -> float:
        if not equalities:
            return left_rows * right_rows
        rows = left_rows * right_rows
        for left_column, right_column in equalities:
            left_distinct = self._distinct_estimate(query, left_column)
            right_distinct = self._distinct_estimate(query, right_column)
            rows = estimate_join_cardinality(rows, 1.0, left_distinct, right_distinct)
        return max(rows, 1.0)

    def _distinct_estimate(self, query: ConjunctiveQuery, qualified_column: str) -> int:
        alias, column = qualified_column.split(".", 1)
        for relation in query.relations:
            if relation.alias == alias:
                table = self._table(relation.table_name)
                statistics = self._statistics.get_or_analyze(table)
                return max(statistics.column(column).distinct_values, 1)
        return 1

    def _apply_residual_filters(
        self, query: ConjunctiveQuery, plan: PhysicalOperator, options: OptimizerOptions
    ) -> PhysicalOperator:
        residuals: List[Expression] = []
        if not options.enable_predicate_pushdown:
            residuals.extend(
                constant_filter.to_expression() for constant_filter in query.constant_filters
            )
        residuals.extend(comparison.to_expression() for comparison in query.column_comparisons)
        if residuals:
            return Filter(plan, conjunction(residuals))
        return plan

    def _apply_projection(
        self, query: ConjunctiveQuery, plan: PhysicalOperator
    ) -> PhysicalOperator:
        columns = [column for column, _ in query.projection]
        names = [name for _, name in query.projection]
        return Project(plan, columns, names)
