"""Rendering conjunctive queries as SQL text.

The engine executes plans directly; SQL is produced only so that users can
see exactly the query Tuffy would have sent to PostgreSQL for each MLN
clause (the paper's Algorithm 2), and so tests can assert the compilation
shape.  The dialect is generic SQL-92 plus ``<>`` for inequality.
"""

from __future__ import annotations

from typing import List

from repro.rdbms.optimizer import ConjunctiveQuery
from repro.rdbms.types import format_value


def render_select(query: ConjunctiveQuery) -> str:
    """Render a conjunctive query as a ``SELECT`` statement."""
    query.validate()
    select_list = ", ".join(
        column if column == name else f"{column} AS {name}"
        for column, name in query.projection
    )
    distinct = "DISTINCT " if query.distinct else ""
    from_list = ", ".join(
        f"{relation.table_name} {relation.alias}" for relation in query.relations
    )
    predicates: List[str] = []
    predicates.extend(
        f"{condition.left} = {condition.right}" for condition in query.join_conditions
    )
    predicates.extend(
        f"{constant_filter.column} {_sql_operator(constant_filter.operator)} "
        f"{format_value(constant_filter.value)}"
        for constant_filter in query.constant_filters
    )
    predicates.extend(
        f"{comparison.left} {_sql_operator(comparison.operator)} {comparison.right}"
        for comparison in query.column_comparisons
    )
    sql = f"SELECT {distinct}{select_list}\nFROM {from_list}"
    if predicates:
        sql += "\nWHERE " + "\n  AND ".join(predicates)
    return sql + ";"


def _sql_operator(operator: str) -> str:
    return {
        "!=": "<>",
        "is_distinct_from": "IS DISTINCT FROM",
        "is_not_distinct_from": "IS NOT DISTINCT FROM",
    }.get(operator, operator)
