"""Table schemas: named, typed columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.rdbms.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A single column: a name and a type."""

    name: str
    column_type: ColumnType

    def __str__(self) -> str:
        return f"{self.name} {self.column_type.sql_name()}"


class SchemaError(ValueError):
    """Raised for malformed schemas or rows that do not match a schema."""


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns with fast name lookup."""

    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        object.__setattr__(
            self, "_positions", {column.name: index for index, column in enumerate(self.columns)}
        )
        object.__setattr__(
            self, "_coercers", tuple(column.column_type.coerce for column in self.columns)
        )

    @classmethod
    def of(cls, *specs: Tuple[str, ColumnType]) -> "TableSchema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls(tuple(Column(name, column_type) for name, column_type in specs))

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def position(self, name: str) -> int:
        """Index of a column by name; raises ``SchemaError`` if missing."""
        positions: Dict[str, int] = getattr(self, "_positions")
        if name not in positions:
            raise SchemaError(f"no column named {name!r} in {self.column_names}")
        return positions[name]

    def __contains__(self, name: str) -> bool:
        return name in getattr(self, "_positions")

    def __len__(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Coerce and validate a row against the schema, returning a tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.columns)} columns"
            )
        coercers: Tuple = getattr(self, "_coercers")
        return tuple(coerce(value) for coerce, value in zip(coercers, row))

    def project(self, names: Iterable[str]) -> "TableSchema":
        """A new schema containing only the named columns, in the given order."""
        return TableSchema(tuple(self.column(name) for name in names))

    def rename_prefixed(self, prefix: str) -> "TableSchema":
        """A copy with every column name prefixed (used for join outputs)."""
        return TableSchema(
            tuple(Column(f"{prefix}.{column.name}", column.column_type) for column in self.columns)
        )

    def concat(self, other: "TableSchema") -> "TableSchema":
        """Concatenate two schemas (join output schema)."""
        return TableSchema(self.columns + other.columns)

    def to_sql(self, table_name: str) -> str:
        """Render a ``CREATE TABLE`` statement for documentation purposes."""
        body = ",\n  ".join(str(column) for column in self.columns)
        return f"CREATE TABLE {table_name} (\n  {body}\n);"


def row_dict(schema: TableSchema, row: Sequence[Any]) -> Dict[str, Any]:
    """Convenience: view a row as a ``{column: value}`` mapping."""
    return dict(zip(schema.column_names, row))
