"""Column types and value coercion for the relational engine."""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional


class ColumnType(Enum):
    """The value types supported by the engine.

    ``TRUTH`` is the three-valued attribute the paper uses for atom tables:
    true, false or unknown (``None``), see Section 3.1.
    """

    INTEGER = "integer"
    TEXT = "text"
    REAL = "real"
    BOOLEAN = "boolean"
    TRUTH = "truth"

    def coerce(self, value: Any) -> Any:
        """Coerce a Python value to this column type.

        ``None`` is passed through for every type (SQL NULL / unknown truth).
        Raises :class:`TypeError` when the value cannot represent the type.
        """
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str) and value.lstrip("+-").isdigit():
                return int(value)
            raise TypeError(f"cannot coerce {value!r} to INTEGER")
        if self is ColumnType.REAL:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            raise TypeError(f"cannot coerce {value!r} to REAL")
        if self is ColumnType.TEXT:
            if isinstance(value, str):
                return value
            return str(value)
        if self is ColumnType.BOOLEAN:
            if isinstance(value, bool):
                return value
            raise TypeError(f"cannot coerce {value!r} to BOOLEAN")
        if self is ColumnType.TRUTH:
            if isinstance(value, bool):
                return value
            raise TypeError(f"cannot coerce {value!r} to TRUTH (bool or None)")
        raise TypeError(f"unknown column type {self!r}")  # pragma: no cover

    def sql_name(self) -> str:
        """The type name used when rendering schemas to SQL text."""
        return {
            ColumnType.INTEGER: "INTEGER",
            ColumnType.TEXT: "TEXT",
            ColumnType.REAL: "DOUBLE PRECISION",
            ColumnType.BOOLEAN: "BOOLEAN",
            ColumnType.TRUTH: "BOOLEAN",  # three-valued via NULL
        }[self]


def infer_type(value: Any) -> ColumnType:
    """Infer a column type from a sample Python value."""
    if isinstance(value, bool):
        return ColumnType.BOOLEAN
    if isinstance(value, int):
        return ColumnType.INTEGER
    if isinstance(value, float):
        return ColumnType.REAL
    return ColumnType.TEXT


def format_value(value: Optional[Any]) -> str:
    """Render a value as a SQL literal (for plan/SQL pretty printing)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
