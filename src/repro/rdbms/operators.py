"""Physical query operators (iterator + batch models).

Every operator exposes ``output_schema`` (a
:class:`~repro.rdbms.schema.TableSchema` whose column names are alias
qualified, e.g. ``t0.aid``) and supports two execution models off the same
plan tree:

* the **iterator model** — operators are iterable, yielding plain tuples;
  the executor drains the root operator.  This is the executable
  specification of the engine's semantics.
* the **batch model** — ``batch(context)`` evaluates the whole subtree as
  :class:`~repro.rdbms.column_batch.ColumnBatch` column arrays: scans
  materialize (cached, dictionary-encoded) columns once per table, filters
  evaluate vectorized masks, joins emit gather indices instead of
  concatenated tuples.  Batch evaluation is *order-identical* to the
  iterator model (same rows, same order, same operator counters, same I/O
  charges for plans without ``Limit``), which the columnar parity suite
  enforces — the grounding pipeline depends on it for bit-identical
  results across backends.

The three join algorithms — nested-loop, hash and sort-merge — are all
implemented because the paper's lesion study (Table 6) shows that the choice
of join algorithm is the single biggest factor in Tuffy's grounding speed;
the optimizer picks among them subject to the lesion knobs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rdbms.column_batch import (
    ColumnBatch,
    ColumnarContext,
    composite_codes,
    concat_batches,
    empty_batch,
    first_occurrence_indices,
    group_slices,
    hash_join_indices,
)
from repro.rdbms.expressions import Expression
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.table import Table

try:  # gated dependency, mirroring repro.rdbms.column_batch
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

#: Upper bound on the number of candidate pairs a columnar nested-loop join
#: materialises at once (the index arrays are processed in outer-row blocks).
NESTED_LOOP_BLOCK_PAIRS = 1 << 18


def iter_plan(root: "PhysicalOperator") -> Iterator["PhysicalOperator"]:
    """Every operator of a plan tree (root included), in no particular order."""
    stack = [root]
    while stack:
        operator = stack.pop()
        yield operator
        for attribute in ("child", "left", "right"):
            node = getattr(operator, attribute, None)
            if isinstance(node, PhysicalOperator):
                stack.append(node)


class PhysicalOperator:
    """Base class for physical operators."""

    output_schema: TableSchema

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        raise NotImplementedError

    def rows(self) -> List[Tuple[Any, ...]]:
        """Materialise the full output (convenience for tests and executor)."""
        return list(iter(self))

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        """Evaluate the subtree as a column batch.

        The base implementation is the row-engine fallback: drain the
        operator through the iterator model and re-encode the result.  It
        keeps the batch model total over future operator additions at
        row-engine speed (every current operator overrides it with a
        native batch implementation).
        """
        return context.batch_from_rows(self.output_schema, self.rows())

    def explain(self, indent: int = 0) -> str:
        """A one-operator-per-line textual plan, like ``EXPLAIN``."""
        raise NotImplementedError


def _value_sort_non_null(
    batch: ColumnBatch, key_positions: Sequence[int], encoder
) -> "np.ndarray":
    """Row positions with no NULL key, stably sorted by decoded key values.

    Sort-merge needs *value* order (the merge compares keys with ``<``),
    which dictionary codes cannot provide, so this decodes the keys and
    sorts with Python — the same comparisons, stability and cost profile as
    the iterator model's sort.
    """
    decoded = [encoder.decode_list(batch.column_codes(p)) for p in key_positions]
    valid = [
        i
        for i in range(batch.length)
        if all(column[i] is not None for column in decoded)
    ]
    valid.sort(key=lambda i: tuple(column[i] for column in decoded))
    return np.asarray(valid, dtype=np.intp)


def _qualified_schema(table: Table, alias: str) -> TableSchema:
    return TableSchema(
        tuple(
            Column(f"{alias}.{column.name}", column.column_type)
            for column in table.schema.columns
        )
    )


class TableScan(PhysicalOperator):
    """Sequential scan of a base table under an alias."""

    def __init__(self, table: Table, alias: str, charge_io: bool = False) -> None:
        self.table = table
        self.alias = alias
        self.charge_io = charge_io
        self.output_schema = _qualified_schema(table, alias)
        self.rows_scanned = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        for row in self.table.scan(charge_io=self.charge_io):
            self.rows_scanned += 1
            yield row

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        if self.charge_io and self.table.storage is not None:
            # The column cache makes re-materialisation free, but every scan
            # still pays the same per-page charges as a row scan.
            self.table.storage.charge_scan(self.table.name)
        self.rows_scanned += len(self.table)
        return ColumnBatch(self.output_schema, context.table_columns(self.table))

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}SeqScan {self.table.name} AS {self.alias} (rows={len(self.table)})"


class Filter(PhysicalOperator):
    """Keeps only rows satisfying an expression."""

    def __init__(self, child: PhysicalOperator, expression: Expression) -> None:
        self.child = child
        self.expression = expression
        self.output_schema = child.output_schema
        self._evaluator = expression.bind(child.output_schema)
        self.rows_out = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        evaluate = self._evaluator
        for row in self.child:
            if evaluate(row):
                self.rows_out += 1
                yield row

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        child = self.child.batch(context)
        evaluate = self.expression.bind_batch(self.child.output_schema, context.encoder)
        result = child.filter(evaluate(child))
        self.rows_out += result.length
        return result

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}Filter ({self.expression.to_sql()})\n"
            + self.child.explain(indent + 1)
        )


class Project(PhysicalOperator):
    """Projects (and optionally renames) a subset of columns."""

    def __init__(
        self,
        child: PhysicalOperator,
        columns: Sequence[str],
        output_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.child = child
        self.columns = list(columns)
        names = list(output_names) if output_names is not None else self.columns
        if len(names) != len(self.columns):
            raise ValueError("output_names must match columns in length")
        self._positions = [child.output_schema.position(column) for column in self.columns]
        source_columns = [child.output_schema.column(column) for column in self.columns]
        self.output_schema = TableSchema(
            tuple(
                Column(name, source.column_type)
                for name, source in zip(names, source_columns)
            )
        )

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        positions = self._positions
        for row in self.child:
            yield tuple(row[position] for position in positions)

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        return self.child.batch(context).select_columns(
            self._positions, self.output_schema
        )

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}Project [{', '.join(self.columns)}]\n"
            + self.child.explain(indent + 1)
        )


class NestedLoopJoin(PhysicalOperator):
    """The naive join: for each outer row, scan the (materialised) inner side."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Optional[Expression] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._evaluator = condition.bind(self.output_schema) if condition is not None else None
        self.comparisons = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        inner_rows = self.right.rows()
        evaluate = self._evaluator
        for outer in self.left:
            for inner in inner_rows:
                self.comparisons += 1
                combined = outer + inner
                if evaluate is None or evaluate(combined):
                    yield combined

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        # The iterator model materialises the inner (right) side before
        # draining the outer side; evaluating right first preserves the
        # page-access order for I/O accounting parity.
        inner = self.right.batch(context).materialize()
        outer = self.left.batch(context).materialize()
        outer_count, inner_count = outer.length, inner.length
        self.comparisons += outer_count * inner_count
        schema = self.output_schema
        if outer_count == 0 or inner_count == 0:
            return empty_batch(schema)
        evaluate = (
            self.condition.bind_batch(schema, context.encoder)
            if self.condition is not None
            else None
        )
        inner_range = np.arange(inner_count, dtype=np.intp)
        block = max(1, NESTED_LOOP_BLOCK_PAIRS // inner_count)
        kept_left: List["np.ndarray"] = []
        kept_right: List["np.ndarray"] = []
        for start in range(0, outer_count, block):
            stop = min(start + block, outer_count)
            left_idx = np.repeat(np.arange(start, stop, dtype=np.intp), inner_count)
            right_idx = np.tile(inner_range, stop - start)
            if evaluate is not None:
                chunk = concat_batches(
                    outer.take(left_idx), inner.take(right_idx), schema
                )
                mask = evaluate(chunk)
                left_idx = left_idx[mask]
                right_idx = right_idx[mask]
            kept_left.append(left_idx)
            kept_right.append(right_idx)
        return concat_batches(
            outer.take(np.concatenate(kept_left)),
            inner.take(np.concatenate(kept_right)),
            schema,
        )

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        condition = self.condition.to_sql() if self.condition is not None else "TRUE"
        return (
            f"{pad}NestedLoopJoin ON {condition}\n"
            + self.left.explain(indent + 1)
            + "\n"
            + self.right.explain(indent + 1)
        )


class HashJoin(PhysicalOperator):
    """Equality hash join, building on the right side.

    ``left_keys`` / ``right_keys`` are column names in the respective child
    schemas; ``residual`` is an optional extra condition evaluated on the
    concatenated row (for non-equality parts of the join predicate).
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("hash join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._left_positions = [left.output_schema.position(key) for key in self.left_keys]
        self._right_positions = [right.output_schema.position(key) for key in self.right_keys]
        self._residual_evaluator = (
            residual.bind(self.output_schema) if residual is not None else None
        )
        self.build_rows = 0
        self.probe_rows = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        buckets: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for row in self.right:
            key = tuple(row[position] for position in self._right_positions)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(row)
            self.build_rows += 1
        evaluate = self._residual_evaluator
        for row in self.left:
            self.probe_rows += 1
            key = tuple(row[position] for position in self._left_positions)
            if any(part is None for part in key):
                continue
            for match in buckets.get(key, ()):
                combined = row + match
                if evaluate is None or evaluate(combined):
                    yield combined

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        # Build (right) side first, like the iterator model.
        build = self.right.batch(context).materialize()
        probe = self.left.batch(context).materialize()
        self.probe_rows += probe.length
        left_idx, right_idx, build_count = hash_join_indices(
            [probe.column_codes(p) for p in self._left_positions],
            [build.column_codes(p) for p in self._right_positions],
        )
        self.build_rows += build_count
        combined = concat_batches(
            probe.take(left_idx), build.take(right_idx), self.output_schema
        )
        if self.residual is not None:
            evaluate = self.residual.bind_batch(self.output_schema, context.encoder)
            combined = combined.filter(evaluate(combined))
        return combined

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        keys = ", ".join(
            f"{left} = {right}" for left, right in zip(self.left_keys, self.right_keys)
        )
        return (
            f"{pad}HashJoin ON {keys}\n"
            + self.left.explain(indent + 1)
            + "\n"
            + self.right.explain(indent + 1)
        )


class SortMergeJoin(PhysicalOperator):
    """Equality join by sorting both inputs on the join keys and merging."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("sort-merge join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._left_positions = [left.output_schema.position(key) for key in self.left_keys]
        self._right_positions = [right.output_schema.position(key) for key in self.right_keys]
        self._residual_evaluator = (
            residual.bind(self.output_schema) if residual is not None else None
        )

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        def sort_key(positions: List[int]) -> Callable[[Tuple[Any, ...]], Tuple[Any, ...]]:
            return lambda row: tuple(row[position] for position in positions)

        left_rows = [
            row
            for row in self.left.rows()
            if all(row[position] is not None for position in self._left_positions)
        ]
        right_rows = [
            row
            for row in self.right.rows()
            if all(row[position] is not None for position in self._right_positions)
        ]
        left_rows.sort(key=sort_key(self._left_positions))
        right_rows.sort(key=sort_key(self._right_positions))
        evaluate = self._residual_evaluator

        left_index = 0
        right_index = 0
        while left_index < len(left_rows) and right_index < len(right_rows):
            left_key = tuple(left_rows[left_index][p] for p in self._left_positions)
            right_key = tuple(right_rows[right_index][p] for p in self._right_positions)
            if left_key < right_key:
                left_index += 1
                continue
            if left_key > right_key:
                right_index += 1
                continue
            # Collect the runs of equal keys on both sides and emit the product.
            left_end = left_index
            while (
                left_end < len(left_rows)
                and tuple(left_rows[left_end][p] for p in self._left_positions) == left_key
            ):
                left_end += 1
            right_end = right_index
            while (
                right_end < len(right_rows)
                and tuple(right_rows[right_end][p] for p in self._right_positions) == right_key
            ):
                right_end += 1
            for i in range(left_index, left_end):
                for j in range(right_index, right_end):
                    combined = left_rows[i] + right_rows[j]
                    if evaluate is None or evaluate(combined):
                        yield combined
            left_index = left_end
            right_index = right_end

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        left = self.left.batch(context).materialize()
        right = self.right.batch(context).materialize()
        left_sorted = _value_sort_non_null(left, self._left_positions, context.encoder)
        right_sorted = _value_sort_non_null(right, self._right_positions, context.encoder)
        # On the sorted sides equal keys are contiguous, so probing the
        # sorted left against grouped sorted right reproduces the merge
        # loop's output order (left-run-major, right rows in sorted order).
        left_pairs, right_pairs, _ = hash_join_indices(
            [left.column_codes(p)[left_sorted] for p in self._left_positions],
            [right.column_codes(p)[right_sorted] for p in self._right_positions],
        )
        combined = concat_batches(
            left.take(left_sorted[left_pairs]),
            right.take(right_sorted[right_pairs]),
            self.output_schema,
        )
        if self.residual is not None:
            evaluate = self.residual.bind_batch(self.output_schema, context.encoder)
            combined = combined.filter(evaluate(combined))
        return combined

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        keys = ", ".join(
            f"{left} = {right}" for left, right in zip(self.left_keys, self.right_keys)
        )
        return (
            f"{pad}SortMergeJoin ON {keys}\n"
            + self.left.explain(indent + 1)
            + "\n"
            + self.right.explain(indent + 1)
        )


class Distinct(PhysicalOperator):
    """Removes duplicate rows (hash based, preserves first occurrence order)."""

    def __init__(self, child: PhysicalOperator) -> None:
        self.child = child
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        seen: set = set()
        for row in self.child:
            if row in seen:
                continue
            seen.add(row)
            yield row

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        child = self.child.batch(context).materialize()
        if child.length == 0:
            return child
        group_ids = composite_codes(
            [child.column_codes(i) for i in range(len(child.columns))]
        )
        return child.take(first_occurrence_indices(group_ids))

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Distinct\n" + self.child.explain(indent + 1)


class Sort(PhysicalOperator):
    """Sorts the child output on the given columns (ascending)."""

    def __init__(self, child: PhysicalOperator, columns: Sequence[str]) -> None:
        self.child = child
        self.columns = list(columns)
        self.output_schema = child.output_schema
        self._positions = [child.output_schema.position(column) for column in self.columns]

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        rows = self.child.rows()
        rows.sort(key=lambda row: tuple(row[position] for position in self._positions))
        return iter(rows)

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        child = self.child.batch(context).materialize()
        # Sort on decoded values (code order is first-occurrence order) with
        # Python's stable sort, matching the iterator model bit for bit.
        decoded = [
            context.encoder.decode_list(child.column_codes(p)) for p in self._positions
        ]
        order = sorted(
            range(child.length), key=lambda i: tuple(column[i] for column in decoded)
        )
        return child.take(np.asarray(order, dtype=np.intp))

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Sort [{', '.join(self.columns)}]\n" + self.child.explain(indent + 1)


class Limit(PhysicalOperator):
    """Stops after the first N rows."""

    def __init__(self, child: PhysicalOperator, count: int) -> None:
        if count < 0:
            raise ValueError("limit must be non-negative")
        self.child = child
        self.count = count
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        produced = 0
        for row in self.child:
            if produced >= self.count:
                return
            produced += 1
            yield row

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        # Batch evaluation is eager: the child runs fully (so its counters
        # and I/O charges differ from the early-stopping iterator model)
        # and the batch is truncated afterwards.  Output rows are identical.
        child = self.child.batch(context)
        return child.take(np.arange(min(self.count, child.length), dtype=np.intp))

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Limit {self.count}\n" + self.child.explain(indent + 1)


_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values),
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
    "collect": lambda values: tuple(values),
}


class Aggregate(PhysicalOperator):
    """Group-by aggregation.

    ``aggregates`` is a list of ``(function, input_column, output_name)``
    triples; supported functions are count, sum, min, max and collect
    (PostgreSQL's ``array_agg``, which the paper's grounding uses for
    existential quantifiers).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Sequence[str],
        aggregates: Sequence[Tuple[str, str, str]],
    ) -> None:
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        for function, _, _ in self.aggregates:
            if function not in _AGGREGATES:
                raise ValueError(f"unsupported aggregate function {function!r}")
        self._group_positions = [child.output_schema.position(c) for c in self.group_by]
        self._aggregate_positions = [
            child.output_schema.position(input_column)
            for _, input_column, _ in self.aggregates
        ]
        columns = [child.output_schema.column(c) for c in self.group_by]
        from repro.rdbms.types import ColumnType

        output_columns = [Column(column.name, column.column_type) for column in columns]
        output_columns.extend(
            Column(output_name, ColumnType.TEXT) for _, _, output_name in self.aggregates
        )
        self.output_schema = TableSchema(tuple(output_columns))

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        order: List[Tuple[Any, ...]] = []
        for row in self.child:
            key = tuple(row[position] for position in self._group_positions)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        for key in order:
            rows = groups[key]
            outputs: List[Any] = list(key)
            for (function, _, _), position in zip(self.aggregates, self._aggregate_positions):
                values = [row[position] for row in rows if row[position] is not None]
                outputs.append(_AGGREGATES[function](values))
            yield tuple(outputs)

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        """Native batch grouping (``array_agg`` & friends).

        Group ids are computed vectorized over the key code columns and
        grouped with one stable argsort (:func:`group_slices`), so the
        Python work left is one aggregate-function call per group — no
        per-row dict fills.  Output order (groups by first occurrence,
        members in row order) and NULL handling (NULL keys group as
        ordinary values; NULL aggregate inputs are dropped) match the
        iterator model exactly.
        """
        child = self.child.batch(context).materialize()
        n = child.length
        if n == 0:
            return empty_batch(self.output_schema)
        if self._group_positions:
            gids = composite_codes(
                [child.column_codes(p) for p in self._group_positions]
            )
        else:
            gids = np.zeros(n, dtype=np.int64)
        groups = group_slices(gids)
        # group_slices orders groups by first member position, so this is
        # exactly one first row per group, aligned with `groups`.
        first_rows = first_occurrence_indices(gids)
        columns = [
            child.column_codes(position)[first_rows]
            for position in self._group_positions
        ]
        encoder = context.encoder
        for (function, _, _), position in zip(
            self.aggregates, self._aggregate_positions
        ):
            decoded = encoder.decode_list(child.column_codes(position))
            aggregate = _AGGREGATES[function]
            outputs = []
            for _gid, members in groups:
                values = [
                    decoded[row] for row in members.tolist() if decoded[row] is not None
                ]
                outputs.append(aggregate(values))
            columns.append(encoder.encode_values(outputs))
        return ColumnBatch(self.output_schema, columns)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        spec = ", ".join(f"{fn}({col}) AS {name}" for fn, col, name in self.aggregates)
        return (
            f"{pad}Aggregate GROUP BY [{', '.join(self.group_by)}] [{spec}]\n"
            + self.child.explain(indent + 1)
        )


class Materialize(PhysicalOperator):
    """Wraps precomputed rows as an operator (used by the executor and tests)."""

    def __init__(self, schema: TableSchema, rows: Iterable[Tuple[Any, ...]]) -> None:
        self.output_schema = schema
        self._rows = list(rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._rows)

    def batch(self, context: ColumnarContext) -> ColumnBatch:
        return context.batch_from_rows(self.output_schema, self._rows)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Materialize (rows={len(self._rows)})"
