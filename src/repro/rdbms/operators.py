"""Physical query operators (iterator model).

Every operator exposes ``output_schema`` (a
:class:`~repro.rdbms.schema.TableSchema` whose column names are alias
qualified, e.g. ``t0.aid``) and is iterable, yielding plain tuples.  The
executor simply drains the root operator.

The three join algorithms — nested-loop, hash and sort-merge — are all
implemented because the paper's lesion study (Table 6) shows that the choice
of join algorithm is the single biggest factor in Tuffy's grounding speed;
the optimizer picks among them subject to the lesion knobs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rdbms.expressions import Expression
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.table import Table


class PhysicalOperator:
    """Base class for physical operators."""

    output_schema: TableSchema

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        raise NotImplementedError

    def rows(self) -> List[Tuple[Any, ...]]:
        """Materialise the full output (convenience for tests and executor)."""
        return list(iter(self))

    def explain(self, indent: int = 0) -> str:
        """A one-operator-per-line textual plan, like ``EXPLAIN``."""
        raise NotImplementedError


def _qualified_schema(table: Table, alias: str) -> TableSchema:
    return TableSchema(
        tuple(
            Column(f"{alias}.{column.name}", column.column_type)
            for column in table.schema.columns
        )
    )


class TableScan(PhysicalOperator):
    """Sequential scan of a base table under an alias."""

    def __init__(self, table: Table, alias: str, charge_io: bool = False) -> None:
        self.table = table
        self.alias = alias
        self.charge_io = charge_io
        self.output_schema = _qualified_schema(table, alias)
        self.rows_scanned = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        for row in self.table.scan(charge_io=self.charge_io):
            self.rows_scanned += 1
            yield row

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}SeqScan {self.table.name} AS {self.alias} (rows={len(self.table)})"


class Filter(PhysicalOperator):
    """Keeps only rows satisfying an expression."""

    def __init__(self, child: PhysicalOperator, expression: Expression) -> None:
        self.child = child
        self.expression = expression
        self.output_schema = child.output_schema
        self._evaluator = expression.bind(child.output_schema)
        self.rows_out = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        evaluate = self._evaluator
        for row in self.child:
            if evaluate(row):
                self.rows_out += 1
                yield row

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}Filter ({self.expression.to_sql()})\n"
            + self.child.explain(indent + 1)
        )


class Project(PhysicalOperator):
    """Projects (and optionally renames) a subset of columns."""

    def __init__(
        self,
        child: PhysicalOperator,
        columns: Sequence[str],
        output_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.child = child
        self.columns = list(columns)
        names = list(output_names) if output_names is not None else self.columns
        if len(names) != len(self.columns):
            raise ValueError("output_names must match columns in length")
        self._positions = [child.output_schema.position(column) for column in self.columns]
        source_columns = [child.output_schema.column(column) for column in self.columns]
        self.output_schema = TableSchema(
            tuple(
                Column(name, source.column_type)
                for name, source in zip(names, source_columns)
            )
        )

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        positions = self._positions
        for row in self.child:
            yield tuple(row[position] for position in positions)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}Project [{', '.join(self.columns)}]\n"
            + self.child.explain(indent + 1)
        )


class NestedLoopJoin(PhysicalOperator):
    """The naive join: for each outer row, scan the (materialised) inner side."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Optional[Expression] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._evaluator = condition.bind(self.output_schema) if condition is not None else None
        self.comparisons = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        inner_rows = self.right.rows()
        evaluate = self._evaluator
        for outer in self.left:
            for inner in inner_rows:
                self.comparisons += 1
                combined = outer + inner
                if evaluate is None or evaluate(combined):
                    yield combined

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        condition = self.condition.to_sql() if self.condition is not None else "TRUE"
        return (
            f"{pad}NestedLoopJoin ON {condition}\n"
            + self.left.explain(indent + 1)
            + "\n"
            + self.right.explain(indent + 1)
        )


class HashJoin(PhysicalOperator):
    """Equality hash join, building on the right side.

    ``left_keys`` / ``right_keys`` are column names in the respective child
    schemas; ``residual`` is an optional extra condition evaluated on the
    concatenated row (for non-equality parts of the join predicate).
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("hash join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._left_positions = [left.output_schema.position(key) for key in self.left_keys]
        self._right_positions = [right.output_schema.position(key) for key in self.right_keys]
        self._residual_evaluator = (
            residual.bind(self.output_schema) if residual is not None else None
        )
        self.build_rows = 0
        self.probe_rows = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        buckets: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for row in self.right:
            key = tuple(row[position] for position in self._right_positions)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(row)
            self.build_rows += 1
        evaluate = self._residual_evaluator
        for row in self.left:
            self.probe_rows += 1
            key = tuple(row[position] for position in self._left_positions)
            if any(part is None for part in key):
                continue
            for match in buckets.get(key, ()):
                combined = row + match
                if evaluate is None or evaluate(combined):
                    yield combined

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        keys = ", ".join(
            f"{left} = {right}" for left, right in zip(self.left_keys, self.right_keys)
        )
        return (
            f"{pad}HashJoin ON {keys}\n"
            + self.left.explain(indent + 1)
            + "\n"
            + self.right.explain(indent + 1)
        )


class SortMergeJoin(PhysicalOperator):
    """Equality join by sorting both inputs on the join keys and merging."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("sort-merge join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._left_positions = [left.output_schema.position(key) for key in self.left_keys]
        self._right_positions = [right.output_schema.position(key) for key in self.right_keys]
        self._residual_evaluator = (
            residual.bind(self.output_schema) if residual is not None else None
        )

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        def sort_key(positions: List[int]) -> Callable[[Tuple[Any, ...]], Tuple[Any, ...]]:
            return lambda row: tuple(row[position] for position in positions)

        left_rows = [
            row
            for row in self.left.rows()
            if all(row[position] is not None for position in self._left_positions)
        ]
        right_rows = [
            row
            for row in self.right.rows()
            if all(row[position] is not None for position in self._right_positions)
        ]
        left_rows.sort(key=sort_key(self._left_positions))
        right_rows.sort(key=sort_key(self._right_positions))
        evaluate = self._residual_evaluator

        left_index = 0
        right_index = 0
        while left_index < len(left_rows) and right_index < len(right_rows):
            left_key = tuple(left_rows[left_index][p] for p in self._left_positions)
            right_key = tuple(right_rows[right_index][p] for p in self._right_positions)
            if left_key < right_key:
                left_index += 1
                continue
            if left_key > right_key:
                right_index += 1
                continue
            # Collect the runs of equal keys on both sides and emit the product.
            left_end = left_index
            while (
                left_end < len(left_rows)
                and tuple(left_rows[left_end][p] for p in self._left_positions) == left_key
            ):
                left_end += 1
            right_end = right_index
            while (
                right_end < len(right_rows)
                and tuple(right_rows[right_end][p] for p in self._right_positions) == right_key
            ):
                right_end += 1
            for i in range(left_index, left_end):
                for j in range(right_index, right_end):
                    combined = left_rows[i] + right_rows[j]
                    if evaluate is None or evaluate(combined):
                        yield combined
            left_index = left_end
            right_index = right_end

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        keys = ", ".join(
            f"{left} = {right}" for left, right in zip(self.left_keys, self.right_keys)
        )
        return (
            f"{pad}SortMergeJoin ON {keys}\n"
            + self.left.explain(indent + 1)
            + "\n"
            + self.right.explain(indent + 1)
        )


class Distinct(PhysicalOperator):
    """Removes duplicate rows (hash based, preserves first occurrence order)."""

    def __init__(self, child: PhysicalOperator) -> None:
        self.child = child
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        seen: set = set()
        for row in self.child:
            if row in seen:
                continue
            seen.add(row)
            yield row

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Distinct\n" + self.child.explain(indent + 1)


class Sort(PhysicalOperator):
    """Sorts the child output on the given columns (ascending)."""

    def __init__(self, child: PhysicalOperator, columns: Sequence[str]) -> None:
        self.child = child
        self.columns = list(columns)
        self.output_schema = child.output_schema
        self._positions = [child.output_schema.position(column) for column in self.columns]

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        rows = self.child.rows()
        rows.sort(key=lambda row: tuple(row[position] for position in self._positions))
        return iter(rows)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Sort [{', '.join(self.columns)}]\n" + self.child.explain(indent + 1)


class Limit(PhysicalOperator):
    """Stops after the first N rows."""

    def __init__(self, child: PhysicalOperator, count: int) -> None:
        if count < 0:
            raise ValueError("limit must be non-negative")
        self.child = child
        self.count = count
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        produced = 0
        for row in self.child:
            if produced >= self.count:
                return
            produced += 1
            yield row

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Limit {self.count}\n" + self.child.explain(indent + 1)


_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values),
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
    "collect": lambda values: tuple(values),
}


class Aggregate(PhysicalOperator):
    """Group-by aggregation.

    ``aggregates`` is a list of ``(function, input_column, output_name)``
    triples; supported functions are count, sum, min, max and collect
    (PostgreSQL's ``array_agg``, which the paper's grounding uses for
    existential quantifiers).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Sequence[str],
        aggregates: Sequence[Tuple[str, str, str]],
    ) -> None:
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        for function, _, _ in self.aggregates:
            if function not in _AGGREGATES:
                raise ValueError(f"unsupported aggregate function {function!r}")
        self._group_positions = [child.output_schema.position(c) for c in self.group_by]
        self._aggregate_positions = [
            child.output_schema.position(input_column)
            for _, input_column, _ in self.aggregates
        ]
        columns = [child.output_schema.column(c) for c in self.group_by]
        from repro.rdbms.types import ColumnType

        output_columns = [Column(column.name, column.column_type) for column in columns]
        output_columns.extend(
            Column(output_name, ColumnType.TEXT) for _, _, output_name in self.aggregates
        )
        self.output_schema = TableSchema(tuple(output_columns))

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        order: List[Tuple[Any, ...]] = []
        for row in self.child:
            key = tuple(row[position] for position in self._group_positions)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        for key in order:
            rows = groups[key]
            outputs: List[Any] = list(key)
            for (function, _, _), position in zip(self.aggregates, self._aggregate_positions):
                values = [row[position] for row in rows if row[position] is not None]
                outputs.append(_AGGREGATES[function](values))
            yield tuple(outputs)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        spec = ", ".join(f"{fn}({col}) AS {name}" for fn, col, name in self.aggregates)
        return (
            f"{pad}Aggregate GROUP BY [{', '.join(self.group_by)}] [{spec}]\n"
            + self.child.explain(indent + 1)
        )


class Materialize(PhysicalOperator):
    """Wraps precomputed rows as an operator (used by the executor and tests)."""

    def __init__(self, schema: TableSchema, rows: Iterable[Tuple[Any, ...]]) -> None:
        self.output_schema = schema
        self._rows = list(rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._rows)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Materialize (rows={len(self._rows)})"
