"""Table statistics and cardinality estimation.

The optimizer needs rough estimates of how many rows survive a filter and
how many rows a join produces.  We use the textbook System-R style model:

* selectivity of ``column = constant`` is ``1 / distinct(column)``,
* selectivity of a join predicate ``R.a = S.b`` is
  ``1 / max(distinct(R.a), distinct(S.b))``,
* independent predicates multiply.

These estimates drive greedy join ordering; they do not need to be precise,
only to rank alternatives sensibly — which is also all the paper relies on
from PostgreSQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.rdbms.table import Table


@dataclass
class ColumnStatistics:
    """Per-column statistics: distinct values and null fraction."""

    distinct_values: int
    null_fraction: float

    def equality_selectivity(self) -> float:
        """Estimated fraction of rows matching ``column = constant``."""
        if self.distinct_values <= 0:
            return 1.0
        return (1.0 - self.null_fraction) / self.distinct_values


@dataclass
class TableStatistics:
    """Statistics for one table, computed in a single pass."""

    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    @classmethod
    def analyze(cls, table: Table) -> "TableStatistics":
        row_count = len(table)
        columns: Dict[str, ColumnStatistics] = {}
        for column in table.schema.column_names:
            position = table.schema.position(column)
            values = [row[position] for row in table.rows]
            non_null = [value for value in values if value is not None]
            distinct = len(set(non_null))
            null_fraction = 0.0 if row_count == 0 else 1.0 - len(non_null) / row_count
            columns[column] = ColumnStatistics(distinct, null_fraction)
        return cls(row_count, columns)

    def column(self, name: str) -> ColumnStatistics:
        if name not in self.columns:
            return ColumnStatistics(distinct_values=max(self.row_count, 1), null_fraction=0.0)
        return self.columns[name]


class StatisticsCatalog:
    """Caches :class:`TableStatistics` per table (like ``ANALYZE`` output)."""

    def __init__(self) -> None:
        self._statistics: Dict[str, TableStatistics] = {}

    def analyze(self, table: Table) -> TableStatistics:
        statistics = TableStatistics.analyze(table)
        self._statistics[table.name] = statistics
        return statistics

    def get(self, table_name: str) -> Optional[TableStatistics]:
        return self._statistics.get(table_name)

    def get_or_analyze(self, table: Table) -> TableStatistics:
        existing = self._statistics.get(table.name)
        if existing is not None and existing.row_count == len(table):
            return existing
        return self.analyze(table)

    def invalidate(self, table_name: str) -> None:
        self._statistics.pop(table_name, None)


def estimate_filter_selectivity(
    statistics: TableStatistics, equality_columns: list[str]
) -> float:
    """Combined selectivity of constant-equality filters on the given columns."""
    selectivity = 1.0
    for column in equality_columns:
        selectivity *= statistics.column(column).equality_selectivity()
    return max(selectivity, 1e-9)


def estimate_join_cardinality(
    left_rows: float,
    right_rows: float,
    left_distinct: int,
    right_distinct: int,
) -> float:
    """Estimated output size of an equality join."""
    denominator = max(left_distinct, right_distinct, 1)
    return max(left_rows * right_rows / denominator, 1.0)
