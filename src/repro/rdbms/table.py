"""Tables: schema + rows, optionally backed by the storage manager."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rdbms.schema import TableSchema
from repro.rdbms.storage import StorageManager


class Table:
    """A named relation.

    Rows are stored as plain tuples in insertion order.  When a
    :class:`~repro.rdbms.storage.StorageManager` is attached, rows are also
    materialised into pages so that scans and random accesses are charged to
    the buffer pool; the in-memory list remains the source of truth for
    correctness, the pages exist for cost accounting and for the Tuffy-mm
    search path.
    """

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        storage: Optional[StorageManager] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.storage = storage
        self.rows: List[Tuple[Any, ...]] = []
        #: Bumped on every mutation; the columnar executor keys its encoded
        #: column cache on it to detect stale materialisations.
        self.version = 0
        #: Optional logical-contents stamp (see :meth:`stamp_contents`):
        #: producers that fully rebuild the table from some versioned
        #: source record ``(source id, source version, ...)`` here and skip
        #: the rebuild — leaving ``version`` untouched, so downstream
        #: caches (the encoded-column cache) stay warm — when the stamp
        #: still matches.  Any mutation clears it.
        self.contents_stamp: Optional[Tuple[Any, ...]] = None
        if storage is not None:
            storage.create_table(name)

    def stamp_contents(self, stamp: Tuple[Any, ...]) -> None:
        """Record the logical source the current rows were built from."""
        self.contents_stamp = stamp

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate, coerce and append a single row."""
        validated = self.schema.validate_row(row)
        self.rows.append(validated)
        self.version += 1
        self.contents_stamp = None
        if self.storage is not None:
            self.storage.append_row(self.name, validated)
        return validated

    def bulk_load(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows (the standard bulk-loading path for evidence).

        Returns the number of rows loaded.
        """
        validate = self.schema.validate_row
        validated_rows = [validate(row) for row in rows]
        count = len(validated_rows)
        self.rows.extend(validated_rows)
        if count:
            self.version += 1
            self.contents_stamp = None
        if self.storage is not None and validated_rows:
            self.storage.bulk_load(self.name, validated_rows)
        return count

    def bulk_load_validated(self, rows: List[Tuple[Any, ...]]) -> int:
        """Append rows that already conform to the schema, skipping coercion.

        For internal producers that construct correctly-typed tuples (the
        ground-clause persistence path); behaves exactly like
        :meth:`bulk_load` otherwise.  The caller is responsible for the
        type contract.
        """
        count = len(rows)
        self.rows.extend(rows)
        if count:
            self.version += 1
            self.contents_stamp = None
        if self.storage is not None and rows:
            self.storage.bulk_load(self.name, rows)
        return count

    def truncate(self) -> None:
        self.rows.clear()
        self.version += 1
        self.contents_stamp = None
        if self.storage is not None:
            self.storage.drop_table(self.name)
            self.storage.create_table(self.name)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def scan(self, charge_io: bool = False) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all rows, optionally via the storage manager."""
        if charge_io and self.storage is not None:
            return self.storage.scan(self.name)
        return iter(self.rows)

    def column_values(self, column: str) -> List[Any]:
        """All values of one column, in row order."""
        position = self.schema.position(column)
        return [row[position] for row in self.rows]

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-null values in a column."""
        position = self.schema.position(column)
        return len({row[position] for row in self.rows if row[position] is not None})

    def select(self, predicate) -> List[Tuple[Any, ...]]:
        """Rows satisfying a Python predicate over ``{column: value}`` dicts."""
        names = self.schema.column_names
        return [row for row in self.rows if predicate(dict(zip(names, row)))]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """All rows as dictionaries (testing/debug helper)."""
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def row_at(self, index: int) -> Tuple[Any, ...]:
        return self.rows[index]

    def page_count(self, page_size: int = 128) -> int:
        """Number of pages this table occupies (for the cost model)."""
        if self.storage is not None:
            return self.storage.page_count(self.name)
        if not self.rows:
            return 0
        return (len(self.rows) + page_size - 1) // page_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={len(self.rows)})"
