"""The catalog: the set of named tables in a database."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.rdbms.schema import TableSchema
from repro.rdbms.storage import StorageManager
from repro.rdbms.table import Table


class CatalogError(KeyError):
    """Raised when a table is missing or duplicated."""


class Catalog:
    """Name -> :class:`Table` mapping with create/drop semantics."""

    def __init__(self, storage: Optional[StorageManager] = None) -> None:
        self._tables: Dict[str, Table] = {}
        self._storage = storage

    def create_table(self, name: str, schema: TableSchema, replace: bool = False) -> Table:
        if name in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, storage=self._storage)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]
        if self._storage is not None:
            self._storage.drop_table(name)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def table_names(self) -> List[str]:
        return list(self._tables)

    def tables(self) -> Dict[str, Table]:
        """A live name -> table mapping (shared with the optimizer)."""
        return self._tables
