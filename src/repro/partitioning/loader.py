"""Batch loading of MRF components from the clause table.

After grounding, the clause table lives in the RDBMS.  Running inference on
each component separately would re-scan (or at least re-seek) the clause
table once per component; with thousands of tiny components (the IE dataset
in the paper) that I/O dominates.  The batch loader instead packs components
into memory-budget-sized batches with First-Fit-Decreasing and loads each
batch with a single pass, which is the optimisation behind Table 7.

The loader charges its I/O to the database's simulated clock, so benchmarks
can report the deterministic cost of both strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.grounding.clause_table import CLAUSE_TABLE_NAME
from repro.mrf.graph import MRF
from repro.rdbms.database import Database
from repro.utils.memory import MemoryModel


@dataclass
class LoadPlan:
    """The loading schedule: batches of components plus accounting."""

    batches: List[List[MRF]] = field(default_factory=list)
    batch_sizes: List[float] = field(default_factory=list)
    memory_budget: float = 0.0
    scans: int = 0
    simulated_seconds: float = 0.0

    @property
    def batch_count(self) -> int:
        return len(self.batches)

    @property
    def component_count(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def peak_batch_size(self) -> float:
        return max(self.batch_sizes, default=0.0)


class BatchLoader:
    """Loads components from the clause table in memory-bounded batches."""

    def __init__(
        self,
        database: Database,
        memory_budget: float,
        memory_model: Optional[MemoryModel] = None,
        clause_table: str = CLAUSE_TABLE_NAME,
    ) -> None:
        if memory_budget <= 0:
            raise ValueError("memory_budget must be positive")
        self.database = database
        self.memory_budget = memory_budget
        self.memory_model = memory_model
        self.clause_table = clause_table

    # ------------------------------------------------------------------
    # Planning and loading
    # ------------------------------------------------------------------

    def plan(self, components: Sequence[MRF], batched: bool = True) -> LoadPlan:
        """Group components into batches (or one batch per component)."""
        from repro.partitioning.binpacking import first_fit_decreasing

        plan = LoadPlan(memory_budget=self.memory_budget)
        if batched:
            bins = first_fit_decreasing(
                list(components), self.memory_budget, lambda component: float(component.size())
            )
            for bin_ in bins:
                plan.batches.append(list(bin_.items))  # type: ignore[arg-type]
                plan.batch_sizes.append(bin_.used)
        else:
            for component in components:
                plan.batches.append([component])
                plan.batch_sizes.append(float(component.size()))
        return plan

    def load(self, components: Sequence[MRF], batched: bool = True) -> LoadPlan:
        """Execute the plan, charging one clause-table scan per batch."""
        plan = self.plan(components, batched=batched)
        before = self.database.clock.now()
        for batch in plan.batches:
            self._scan_clause_table()
            plan.scans += 1
            if self.memory_model is not None:
                literals = sum(component.total_literals() for component in batch)
                clauses = sum(component.clause_count for component in batch)
                atoms = sum(component.atom_count for component in batch)
                self.memory_model.charge_clauses(clauses, literals, category="loaded_batch")
                self.memory_model.charge_atoms(atoms, category="loaded_batch_atoms")
                self.memory_model.release("loaded_batch")
                self.memory_model.release("loaded_batch_atoms")
        plan.simulated_seconds = self.database.clock.now() - before
        return plan

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _scan_clause_table(self) -> None:
        """One sequential pass over the persisted clause table."""
        if not self.database.has_table(self.clause_table):
            return
        table = self.database.table(self.clause_table)
        for _row in table.scan(charge_io=True):
            pass
