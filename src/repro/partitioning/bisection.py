"""Balanced bisection of the MRF hypergraph (paper, Section 3.4 / Theorem 3.2).

The paper defines the *cost* of a balanced bisection ``(V1, V2)`` as the
number of hyperedges (clauses) touching both sides and proves that finding a
minimum-cost balanced bisection of an MLN-generated MRF is NP-hard (by
reduction from graph minimum bisection).  The library therefore does not try
to solve it exactly; this module provides the cost function itself, a random
balanced bisection baseline and a simple local-improvement heuristic, which
the ablation benchmarks compare against Algorithm 3.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


def bisection_cost(mrf: MRF, side_one: Iterable[int]) -> int:
    """Number of clauses with atoms on both sides of the bisection."""
    inside: Set[int] = set(side_one)
    cost = 0
    for clause in mrf.clauses:
        atom_ids = set(clause.atom_ids)
        in_count = sum(1 for atom_id in atom_ids if atom_id in inside)
        if 0 < in_count < len(atom_ids):
            cost += 1
    return cost


def random_balanced_bisection(
    mrf: MRF, rng: RandomSource
) -> Tuple[List[int], List[int]]:
    """A uniformly random split of the atoms into two equal-size halves."""
    atoms = list(mrf.atom_ids)
    rng.shuffle(atoms)
    half = len(atoms) // 2
    return sorted(atoms[:half]), sorted(atoms[half:])


def greedy_improve_bisection(
    mrf: MRF,
    side_one: Sequence[int],
    side_two: Sequence[int],
    max_swaps: int = 1000,
) -> Tuple[List[int], List[int], int]:
    """Pairwise-swap local search over a balanced bisection.

    Repeatedly finds the single swap of one atom from each side that most
    reduces the cut cost, stopping when no swap improves it (or after
    ``max_swaps`` swaps).  Returns the improved sides and the final cost.
    This is a deliberately simple baseline: the point of Theorem 3.2 is that
    optimal bisection is intractable, so Tuffy uses the streaming greedy
    partitioner instead.
    """
    one = list(side_one)
    two = list(side_two)
    best_cost = bisection_cost(mrf, one)
    for _swap in range(max_swaps):
        best_pair = None
        best_new_cost = best_cost
        for i, atom_a in enumerate(one):
            for j, atom_b in enumerate(two):
                candidate = one[:i] + one[i + 1 :] + [atom_b]
                cost = bisection_cost(mrf, candidate)
                if cost < best_new_cost:
                    best_new_cost = cost
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        one[i], two[j] = two[j], one[i]
        best_cost = best_new_cost
    return sorted(one), sorted(two), best_cost
