"""The greedy MRF partitioner (the paper's Algorithm 3, Appendix B.7).

The partitioner is inspired by Kruskal's minimum-spanning-tree algorithm: it
scans the clauses in descending order of ``|weight|`` and adds each clause's
hyperedge to the partition graph unless doing so would grow a connected
component beyond the size bound β.  High-weight clauses are therefore the
least likely to be cut, which heuristically minimises the weighted cut size.

The size of a partition is measured, as in the paper, as the total number of
atoms plus literals assigned to it; β = ∞ reduces the algorithm to plain
connected-component detection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.grounding.clause_table import GroundClause
from repro.mrf.graph import MRF
from repro.mrf.union_find import UnionFind


@dataclass
class Partitioning:
    """The output of the partitioner.

    ``atom_partitions`` holds the atom ids of every partition;
    ``clause_assignment`` maps each clause (by position in the source MRF's
    clause list) to the partition owning it, and ``cut_clauses`` lists the
    positions of clauses spanning more than one partition.
    """

    atom_partitions: List[List[int]] = field(default_factory=list)
    clause_assignment: Dict[int, int] = field(default_factory=dict)
    cut_clauses: List[int] = field(default_factory=list)
    size_bound: float = math.inf

    @property
    def partition_count(self) -> int:
        return len(self.atom_partitions)

    @property
    def cut_size(self) -> int:
        return len(self.cut_clauses)

    def partition_of_atom(self, atom_id: int) -> Optional[int]:
        for index, atoms in enumerate(self.atom_partitions):
            if atom_id in self._atom_sets[index]:
                return index
        return None

    def __post_init__(self) -> None:
        self._atom_sets: List[Set[int]] = [set(atoms) for atoms in self.atom_partitions]

    def refresh_sets(self) -> None:
        self._atom_sets = [set(atoms) for atoms in self.atom_partitions]

    def partition_mrfs(self, mrf: MRF) -> List[MRF]:
        """Materialise each partition as its own MRF (cut clauses excluded)."""
        clause_lists: List[List[GroundClause]] = [[] for _ in self.atom_partitions]
        for clause_index, partition_index in self.clause_assignment.items():
            clause_lists[partition_index].append(mrf.clauses[clause_index])
        return [
            MRF.from_clauses(clauses, extra_atoms=atoms)
            for clauses, atoms in zip(clause_lists, self.atom_partitions)
        ]

    def cut_clause_objects(self, mrf: MRF) -> List[GroundClause]:
        return [mrf.clauses[index] for index in self.cut_clauses]

    def cut_weight(self, mrf: MRF) -> float:
        """Total |weight| of cut clauses (hard clauses counted as 0 here)."""
        total = 0.0
        for index in self.cut_clauses:
            clause = mrf.clauses[index]
            if not clause.is_hard:
                total += abs(clause.weight)
        return total

    def sizes(self, mrf: MRF) -> List[int]:
        """Size (atoms + literals) of each partition."""
        totals = [len(atoms) for atoms in self.atom_partitions]
        for clause_index, partition_index in self.clause_assignment.items():
            totals[partition_index] += len(mrf.clauses[clause_index].literals)
        return totals


class GreedyPartitioner:
    """Algorithm 3: weight-ordered agglomerative partitioning with a size bound."""

    def __init__(self, size_bound: float = math.inf) -> None:
        if size_bound <= 0:
            raise ValueError("size_bound must be positive")
        self.size_bound = size_bound

    def partition(self, mrf: MRF) -> Partitioning:
        """Partition the MRF's atoms subject to the size bound."""
        union_find = UnionFind(mrf.atom_ids)
        # Size of the component containing each root: atoms + assigned literals.
        component_size: Dict[object, int] = {atom_id: 1 for atom_id in mrf.atom_ids}

        ordered = sorted(
            range(len(mrf.clauses)),
            key=lambda index: (
                -self._effective_weight(mrf.clauses[index]),
                index,
            ),
        )
        merged_clauses: List[int] = []
        cut_clauses: List[int] = []

        for clause_index in ordered:
            clause = mrf.clauses[clause_index]
            atom_ids = sorted(set(clause.atom_ids))
            roots = {union_find.find(atom_id) for atom_id in atom_ids}
            combined = sum(component_size[root] for root in roots) + len(clause.literals)
            if combined > self.size_bound and len(roots) > 1:
                cut_clauses.append(clause_index)
                continue
            if combined > self.size_bound and len(roots) == 1:
                # The clause lives inside one component that is already at the
                # bound; adding its literals would overflow, so it is cut.
                cut_clauses.append(clause_index)
                continue
            # Merge the components and account for the clause's literals.
            iterator = iter(atom_ids)
            first = next(iterator)
            root = union_find.find(first)
            for atom_id in iterator:
                root = union_find.union(root, atom_id)
            component_size[root] = combined
            merged_clauses.append(clause_index)

        groups = union_find.groups()
        ordered_roots = sorted(groups, key=lambda root: min(groups[root]))
        root_to_partition = {root: index for index, root in enumerate(ordered_roots)}
        atom_partitions = [sorted(groups[root]) for root in ordered_roots]

        clause_assignment: Dict[int, int] = {}
        for clause_index in merged_clauses:
            clause = mrf.clauses[clause_index]
            root = union_find.find(clause.atom_ids[0])
            clause_assignment[clause_index] = root_to_partition[root]

        partitioning = Partitioning(
            atom_partitions=atom_partitions,
            clause_assignment=clause_assignment,
            cut_clauses=sorted(cut_clauses),
            size_bound=self.size_bound,
        )
        partitioning.refresh_sets()
        return partitioning

    @staticmethod
    def _effective_weight(clause: GroundClause) -> float:
        # Hard clauses sort first (they must not be cut if at all possible).
        if clause.is_hard:
            return math.inf
        return abs(clause.weight)


def partition_for_memory_budget(
    mrf: MRF, budget_bytes: int, bytes_per_unit: int = 64
) -> Partitioning:
    """Convenience wrapper: translate a memory budget into a size bound.

    ``bytes_per_unit`` approximates the in-memory cost of one atom or one
    literal in the search state; the Figure 6 benchmark sweeps the budget.
    """
    if budget_bytes <= 0:
        raise ValueError("budget_bytes must be positive")
    size_bound = max(budget_bytes / bytes_per_unit, 1.0)
    return GreedyPartitioner(size_bound).partition(mrf)
