"""Partitioning: splitting the ground MRF to fit memory and speed up search.

* :mod:`repro.partitioning.greedy` — Algorithm 3 of the paper: a
  Kruskal-style greedy partitioner that scans clauses in descending
  ``|weight|`` order and merges their atoms into partitions bounded by a
  size budget β;
* :mod:`repro.partitioning.binpacking` — First-Fit-Decreasing bin packing of
  components into memory-budget-sized batches (the loading optimisation of
  Section 3.3);
* :mod:`repro.partitioning.loader` — the batch loader, which charges the I/O
  of reading each batch from the clause table exactly once versus once per
  component (Table 7);
* :mod:`repro.partitioning.bisection` — balanced-bisection cost, the
  quantity Theorem 3.2 shows is NP-hard to minimise;
* :mod:`repro.partitioning.tradeoff` — the Appendix B.8 estimator of the
  benefit (or detriment) of a partitioning.
"""

from repro.partitioning.binpacking import Bin, first_fit_decreasing
from repro.partitioning.bisection import bisection_cost, random_balanced_bisection
from repro.partitioning.greedy import GreedyPartitioner, Partitioning
from repro.partitioning.loader import BatchLoader, LoadPlan
from repro.partitioning.tradeoff import partitioning_benefit

__all__ = [
    "BatchLoader",
    "Bin",
    "GreedyPartitioner",
    "LoadPlan",
    "Partitioning",
    "bisection_cost",
    "first_fit_decreasing",
    "partitioning_benefit",
    "random_balanced_bisection",
]
