"""First-Fit-Decreasing bin packing of components into memory batches.

The paper (Section 3.3, "Efficient Data Loading") groups MRF components into
batches so each batch fits the memory budget and the number of batches — and
therefore the number of loading passes over the clause table — is minimised.
This is the classic bin-packing problem; the paper implements First Fit
Decreasing, and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Bin:
    """One batch: the packed items and their total size."""

    capacity: float
    items: List[object] = field(default_factory=list)
    used: float = 0.0

    def fits(self, size: float) -> bool:
        return self.used + size <= self.capacity

    def add(self, item: object, size: float) -> None:
        if not self.fits(size):
            raise ValueError("item does not fit in this bin")
        self.items.append(item)
        self.used += size

    @property
    def free(self) -> float:
        return self.capacity - self.used

    def __len__(self) -> int:
        return len(self.items)


def first_fit_decreasing(
    items: Sequence[T],
    capacity: float,
    size_of: Callable[[T], float],
) -> List[Bin]:
    """Pack items into the fewest bins First-Fit-Decreasing can manage.

    Items larger than the capacity get a dedicated over-full bin each (the
    loader falls back to Gauss-Seidel/The RDBMS search for those), so the
    function never fails.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    bins: List[Bin] = []
    oversized: List[Bin] = []
    ordered = sorted(items, key=size_of, reverse=True)
    for item in ordered:
        size = size_of(item)
        if size > capacity:
            bin_ = Bin(capacity)
            bin_.items.append(item)
            bin_.used = size
            oversized.append(bin_)
            continue
        for bin_ in bins:
            if bin_.fits(size):
                bin_.add(item, size)
                break
        else:
            bin_ = Bin(capacity)
            bin_.add(item, size)
            bins.append(bin_)
    return oversized + bins


def packing_quality(bins: Sequence[Bin]) -> Tuple[int, float]:
    """(number of bins, average fill fraction) — used by tests and reports."""
    if not bins:
        return 0, 0.0
    fills = [bin_.used / bin_.capacity for bin_ in bins if bin_.capacity > 0]
    return len(bins), sum(fills) / len(fills) if fills else 0.0
