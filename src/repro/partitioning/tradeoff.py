"""The partitioning benefit estimator of Appendix B.8.

The paper gives a rough formula for deciding whether a candidate
partitioning helps or hurts::

    W = 2^(N/3) - T * |#cut clauses| / |E|

where ``N`` is the estimated number of components whose lowest cost is
positive (the ones that benefit from the Theorem 3.1 speed-up), ``T`` is the
number of WalkSAT steps in one Gauss-Seidel round, and ``|E|`` is the total
number of clauses.  Positive ``W`` means the partitioning is expected to be
beneficial.  The paper notes the formula is conservative; it is exposed here
so the ablation bench can compare its verdicts with observed outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mrf.graph import MRF
from repro.partitioning.greedy import Partitioning


@dataclass
class TradeoffEstimate:
    """The estimator's inputs and verdict."""

    speedup_term: float
    slowdown_term: float
    benefit: float
    positive_components: int
    cut_clauses: int
    total_clauses: int

    @property
    def is_beneficial(self) -> bool:
        return self.benefit > 0


def partitioning_benefit(
    mrf: MRF,
    partitioning: Partitioning,
    steps_per_round: int,
    positive_cost_components: int | None = None,
    cap_exponent: float = 60.0,
) -> TradeoffEstimate:
    """Evaluate the Appendix B.8 formula for a candidate partitioning.

    ``positive_cost_components`` defaults to the number of partitions, which
    matches the paper's usage when every component has a positive lowest
    cost; callers with better knowledge (e.g. from a previous search) can
    pass the true count.  The exponential term is capped to keep the result
    finite for large N.
    """
    if steps_per_round <= 0:
        raise ValueError("steps_per_round must be positive")
    total_clauses = mrf.clause_count
    cut = partitioning.cut_size
    positive = (
        positive_cost_components
        if positive_cost_components is not None
        else partitioning.partition_count
    )
    exponent = min(positive / 3.0, cap_exponent)
    speedup = 2.0 ** exponent
    slowdown = 0.0
    if total_clauses > 0:
        slowdown = steps_per_round * (cut / total_clauses)
    return TradeoffEstimate(
        speedup_term=speedup,
        slowdown_term=slowdown,
        benefit=speedup - slowdown,
        positive_components=positive,
        cut_clauses=cut,
        total_clauses=total_clauses,
    )
