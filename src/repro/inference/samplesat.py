"""SampleSAT: near-uniform sampling of satisfying assignments.

MC-SAT (Appendix A.5 of the paper) requires, at every step, a sample drawn
near-uniformly from the assignments satisfying a chosen subset of clauses.
SampleSAT (Wei, Erenrich and Selman, 2004) achieves this by mixing WalkSAT
moves (which drive towards satisfaction) with simulated-annealing moves
(which give the chain its near-uniform stationary behaviour).

Two details matter for ergodicity of the enclosing MC-SAT chain:

* the sampler keeps moving for a number of *mixing steps* after it first
  satisfies the constraints, so atoms that the constraints do not pin down
  get re-randomised rather than frozen at their previous values, and
* it returns the most recent *satisfying* assignment it visited (falling
  back to the current state only if it never satisfied everything).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.grounding.clause_table import GroundClause
from repro.inference.state import KERNEL_BACKENDS, SearchState, make_search_state
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


@dataclass
class SampleSATOptions:
    """Tuning parameters for SampleSAT."""

    max_flips: int = 3_000
    mixing_steps: int = 200
    walksat_probability: float = 0.5
    temperature: float = 0.5
    noise: float = 0.5
    #: Search-kernel backend for the constraint states ("auto" keeps the
    #: usual small per-step constraint MRFs on the flat kernel; see
    #: repro.inference.state.resolve_backend).
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 <= self.walksat_probability <= 1.0:
            raise ValueError("walksat_probability must be within [0, 1]")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.max_flips <= 0:
            raise ValueError("max_flips must be positive")
        if self.mixing_steps < 0:
            raise ValueError("mixing_steps cannot be negative")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(f"kernel_backend must be one of {KERNEL_BACKENDS}")


class SampleSAT:
    """Samples an assignment satisfying (as many as possible of) the clauses."""

    def __init__(
        self,
        options: Optional[SampleSATOptions] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.options = options or SampleSATOptions()
        self.rng = rng or RandomSource(0)

    def sample(
        self,
        clauses: Sequence[GroundClause],
        atom_ids: Sequence[int],
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> Dict[int, bool]:
        """Return an assignment satisfying the clauses (best-effort).

        All clauses are treated as *constraints*: their weights are ignored
        and the sampler simply tries to satisfy every one of them, starting
        from ``initial_assignment`` (or a random state).
        """
        constraints = [
            GroundClause(index + 1, clause.literals, 1.0, clause.source)
            for index, clause in enumerate(clauses)
        ]
        mrf = MRF.from_clauses(constraints, extra_atoms=atom_ids)
        state = make_search_state(
            mrf, initial_assignment, backend=self.options.kernel_backend
        )
        if initial_assignment is None:
            state.randomize(self.rng)
        options = self.options

        # The most recent satisfying assignment is retained through the
        # kernel's flip journal (one checkpoint per satisfying step is O(1)
        # amortised) instead of a full dict copy per step.
        found_satisfying = False
        steps_while_satisfied = 0
        for _step in range(options.max_flips):
            if not state.has_violations():
                state.checkpoint()
                found_satisfying = True
                steps_while_satisfied += 1
                if steps_while_satisfied > options.mixing_steps:
                    break
                self._annealing_move(state)
                continue
            steps_while_satisfied = 0
            if self.rng.random() < options.walksat_probability:
                self._walksat_move(state)
            else:
                self._annealing_move(state)
        if found_satisfying:
            return state.checkpoint_dict()
        return state.assignment_dict()

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------

    def _walksat_move(self, state: SearchState) -> None:
        # Deliberately NOT the kernel's walksat stepper: that primitive
        # short-circuits single-atom clauses without drawing rng.random(),
        # whereas this sampler has always drawn it unconditionally —
        # swapping would silently change every seeded MC-SAT stream.  The
        # kernel still accelerates the pieces (precomputed positions, fast
        # delta/flip).
        clause_index = state.sample_violated_clause(self.rng)
        positions = state.clause_atom_positions(clause_index)
        # Strict comparison, matching WalkSAT: noise=0.0 is purely greedy.
        if self.rng.random() < self.options.noise:
            position = self.rng.pick(positions)
        else:
            # Batched deltas share the adjacency walk across candidates on
            # the vectorized backend; min-by-index keeps the first-minimum
            # tie-break of the previous min(positions, key=delta_cost).
            deltas = state.delta_cost_batch(clause_index)
            position = positions[min(range(len(deltas)), key=deltas.__getitem__)]
        state.flip(position)

    def _annealing_move(self, state: SearchState) -> None:
        position = self.rng.randint(0, len(state.atom_ids) - 1)
        delta = state.delta_cost(position)
        if delta <= 0 or self.rng.random() < math.exp(-delta / self.options.temperature):
            state.flip(position)
