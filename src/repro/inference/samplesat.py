"""SampleSAT: near-uniform sampling of satisfying assignments.

MC-SAT (Appendix A.5 of the paper) requires, at every step, a sample drawn
near-uniformly from the assignments satisfying a chosen subset of clauses.
SampleSAT (Wei, Erenrich and Selman, 2004) achieves this by mixing WalkSAT
moves (which drive towards satisfaction) with simulated-annealing moves
(which give the chain its near-uniform stationary behaviour).

Two details matter for ergodicity of the enclosing MC-SAT chain:

* the sampler keeps moving for a number of *mixing steps* after it first
  satisfies the constraints, so atoms that the constraints do not pin down
  get re-randomised rather than frozen at their previous values, and
* it returns the most recent *satisfying* assignment it visited (falling
  back to the current state only if it never satisfied everything).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.grounding.clause_table import GroundClause
from repro.inference.state import KERNEL_BACKENDS, SearchState, make_search_state
from repro.mrf.graph import MRF, MRFFlatView
from repro.utils.rng import RandomSource


@dataclass
class SampleSATOptions:
    """Tuning parameters for SampleSAT."""

    max_flips: int = 3_000
    mixing_steps: int = 200
    walksat_probability: float = 0.5
    temperature: float = 0.5
    noise: float = 0.5
    #: Search-kernel backend for the constraint states ("auto" keeps the
    #: usual small per-step constraint MRFs on the flat kernel; see
    #: repro.inference.state.resolve_backend).
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 <= self.walksat_probability <= 1.0:
            raise ValueError("walksat_probability must be within [0, 1]")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.max_flips <= 0:
            raise ValueError("max_flips must be positive")
        if self.mixing_steps < 0:
            raise ValueError("mixing_steps cannot be negative")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(f"kernel_backend must be one of {KERNEL_BACKENDS}")


class SampleSAT:
    """Samples an assignment satisfying (as many as possible of) the clauses."""

    def __init__(
        self,
        options: Optional[SampleSATOptions] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.options = options or SampleSATOptions()
        self.rng = rng or RandomSource(0)

    def sample(
        self,
        clauses: Sequence[GroundClause],
        atom_ids: Sequence[int],
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> Dict[int, bool]:
        """Return an assignment satisfying the clauses (best-effort).

        All clauses are treated as *constraints*: their weights are ignored
        and the sampler simply tries to satisfy every one of them, starting
        from ``initial_assignment`` (or a random state).
        """
        constraints = [
            GroundClause(index + 1, clause.literals, 1.0, clause.source)
            for index, clause in enumerate(clauses)
        ]
        mrf = MRF.from_clauses(constraints, extra_atoms=atom_ids)
        state = make_search_state(
            mrf, initial_assignment, backend=self.options.kernel_backend
        )
        if initial_assignment is None:
            state.randomize(self.rng)
        if self.run_moves(state):
            return state.checkpoint_dict()
        return state.assignment_dict()

    def sample_prepared(self, state: SearchState) -> bool:
        """Randomize and run the move loop on a prepared constraint state.

        The bulk-pipeline entry point: MC-SAT assembles the constraint state
        through a :class:`ConstraintPool` (reusing cached structure) and
        hands it here.  Consumes exactly the same RNG stream as
        :meth:`sample` without an initial assignment — one coin per atom for
        the restart, then the move loop — so pooled and spec paths are
        seed-for-seed interchangeable.  Returns whether a satisfying
        assignment was found; the state's checkpoint snapshot holds the most
        recent satisfying assignment when it was.
        """
        state.randomize(self.rng)
        return self.run_moves(state)

    def run_moves(self, state: SearchState) -> bool:
        """The SampleSAT move loop over an initialised constraint state.

        Mixes WalkSAT and annealing moves until the flip budget runs out or
        the chain has kept moving for ``mixing_steps`` steps after reaching
        a satisfying assignment.  The most recent satisfying assignment is
        retained through the kernel's flip journal (one checkpoint per
        satisfying step is O(1) amortised) instead of a full dict copy per
        step; returns whether one was ever found.
        """
        options = self.options
        found_satisfying = False
        steps_while_satisfied = 0
        for _step in range(options.max_flips):
            if not state.has_violations():
                state.checkpoint()
                found_satisfying = True
                steps_while_satisfied += 1
                if steps_while_satisfied > options.mixing_steps:
                    break
                self._annealing_move(state)
                continue
            steps_while_satisfied = 0
            if self.rng.random() < options.walksat_probability:
                self._walksat_move(state)
            else:
                self._annealing_move(state)
        return found_satisfying

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------

    def _walksat_move(self, state: SearchState) -> None:
        # Deliberately NOT the kernel's walksat stepper: that primitive
        # short-circuits single-atom clauses without drawing rng.random(),
        # whereas this sampler has always drawn it unconditionally —
        # swapping would silently change every seeded MC-SAT stream.  The
        # kernel still accelerates the pieces (precomputed positions, fast
        # delta/flip).
        clause_index = state.sample_violated_clause(self.rng)
        positions = state.clause_atom_positions(clause_index)
        # Strict comparison, matching WalkSAT: noise=0.0 is purely greedy.
        if self.rng.random() < self.options.noise:
            position = self.rng.pick(positions)
        else:
            # Batched deltas share the adjacency walk across candidates on
            # the vectorized backend; min-by-index keeps the first-minimum
            # tie-break of the previous min(positions, key=delta_cost).
            deltas = state.delta_cost_batch(clause_index)
            position = positions[min(range(len(deltas)), key=deltas.__getitem__)]
        state.flip(position)

    def _annealing_move(self, state: SearchState) -> None:
        position = self.rng.randint(0, len(state.atom_ids) - 1)
        delta = state.delta_cost(position)
        if delta <= 0 or self.rng.random() < math.exp(-delta / self.options.temperature):
            state.flip(position)


# ----------------------------------------------------------------------
# Pooled constraint-state construction (MC-SAT's per-iteration fast path)
# ----------------------------------------------------------------------


def hard_constraint_prefix(clauses: Sequence[GroundClause]) -> List[GroundClause]:
    """The always-selected constraint prefix of an MC-SAT step.

    In clause order: a hard positive clause is kept as-is (it must stay
    satisfied), a hard negative clause contributes the unit negation of each
    of its literals (it must stay unsatisfied).  Constraints are renumbered
    from 1 and weighted 1.0, the form SampleSAT expects.  Every selection —
    including the initial state's — starts with exactly this prefix; this
    function is the single source of that expansion (the scalar selection
    spec and :class:`ConstraintPool` both consume it).
    """
    prefix: List[GroundClause] = []
    for clause in clauses:
        if not clause.is_hard:
            continue
        if clause.weight > 0:
            prefix.append(
                GroundClause(len(prefix) + 1, clause.literals, 1.0, clause.source)
            )
        else:
            for literal in clause.literals:
                prefix.append(
                    GroundClause(len(prefix) + 1, (-literal,), 1.0, clause.source)
                )
    return prefix


class _SoftTemplate:
    """Prebuilt constraint pieces for one soft clause of the parent MRF.

    Selecting a positive-weight clause contributes the clause itself as one
    constraint; selecting a negative-weight clause contributes one unit
    constraint per literal (the literal's negation).  Either way the pieces
    — signed-code tuples, distinct-position tuples and weight-1 clause
    objects — are fixed per parent clause, so they are built once and
    concatenated per iteration.
    """

    __slots__ = ("codes", "positions", "clauses")

    def __init__(self, codes, positions, clauses) -> None:
        self.codes = codes
        self.positions = positions
        self.clauses = clauses


class ConstraintPool:
    """Reusable constraint-state machinery over one MRF's atom universe.

    MC-SAT builds one SampleSAT constraint state per iteration, always over
    the *same* atom universe (the parent MRF's atoms) and always containing
    the same always-selected hard-clause prefix.  The spec path rebuilds
    everything from scratch each time (``MRF.from_clauses`` + a fresh flat
    view + a fresh search state); this pool caches what never changes —

    * the atom order and position map (shared with the parent's flat view),
    * the hard prefix's codes/positions/adjacency and weight-1 clauses,
    * per-soft-clause constraint templates (:class:`_SoftTemplate`),

    and assembles each iteration's state directly from those pieces.  The
    assembled structure is element-for-element identical to what the spec
    path builds — same atom order, same constraint order (hard prefix first,
    then selected soft clauses in parent clause order), same adjacency entry
    order — so seeded SampleSAT streams are bit-identical (the MC-SAT
    parity suite pins this).  When an iteration selects nothing beyond the
    prefix, one cached prefix state is reused and re-randomized in place,
    mirroring the kernel's state-reuse lifecycle.
    """

    def __init__(self, mrf: MRF, kernel_backend: str = "auto") -> None:
        view = mrf.flat_view()
        self._backend = kernel_backend
        self._atom_ids = view.atom_ids
        self._atom_position = view.atom_position

        # The prefix constraints come from the one authoritative expansion;
        # only their flat encoding (codes in the parent's atom order) is
        # derived here.
        prefix_clauses = hard_constraint_prefix(mrf.clauses)
        position = view.atom_position
        prefix_codes: List[Tuple[int, ...]] = []
        prefix_positions: List[Tuple[int, ...]] = []
        for constraint in prefix_clauses:
            codes = tuple(
                position[literal] + 1 if literal > 0 else -(position[-literal] + 1)
                for literal in constraint.literals
            )
            distinct: List[int] = []
            for code in codes:
                atom_position = abs(code) - 1
                if atom_position not in distinct:
                    distinct.append(atom_position)
            prefix_codes.append(codes)
            prefix_positions.append(tuple(distinct))

        templates: Dict[int, _SoftTemplate] = {}
        for index, clause in enumerate(mrf.clauses):
            codes = view.clause_codes[index]
            if clause.is_hard:
                continue
            if clause.weight > 0:
                templates[index] = _SoftTemplate(
                    (codes,),
                    (view.clause_atom_positions[index],),
                    (GroundClause(clause.clause_id, clause.literals, 1.0, clause.source),),
                )
            elif clause.weight < 0:
                templates[index] = _SoftTemplate(
                    tuple((-code,) for code in codes),
                    tuple((abs(code) - 1,) for code in codes),
                    tuple(
                        GroundClause(clause.clause_id, (-literal,), 1.0, clause.source)
                        for literal in clause.literals
                    ),
                )
        self._prefix_codes = prefix_codes
        self._prefix_positions = prefix_positions
        self._prefix_clauses = prefix_clauses
        self._templates = templates

        adjacency: List[List[Tuple[int, bool]]] = [[] for _ in self._atom_ids]
        for clause_index, codes in enumerate(prefix_codes):
            for code in codes:
                if code > 0:
                    adjacency[code - 1].append((clause_index, True))
                else:
                    adjacency[-code - 1].append((clause_index, False))
        self._prefix_adjacency: Tuple[Tuple[Tuple[int, bool], ...], ...] = tuple(
            tuple(entries) for entries in adjacency
        )
        self._prefix_state: Optional[SearchState] = None
        # Literal-array fragments for ConstraintVectorView assembly, built
        # lazily on the first constraint set that resolves to the
        # vectorized backend (flat-only runs never pay for them).
        self._lit_fragments: Optional[dict] = None

    @property
    def prefix_clauses(self) -> List[GroundClause]:
        """The always-selected constraint prefix (read-only)."""
        return self._prefix_clauses

    def prefix_state(
        self, initial_assignment: Optional[Mapping[int, bool]] = None
    ) -> SearchState:
        """The cached state over the prefix-only constraint set.

        Built on first use; later calls reuse it, resetting in place when an
        initial assignment is given (callers about to randomize skip that).
        """
        if self._prefix_state is None:
            mrf = self._shell_mrf(
                self._prefix_codes,
                self._prefix_positions,
                self._prefix_clauses,
                self._prefix_adjacency,
            )
            self._attach_vector_view(mrf, ())
            self._prefix_state = make_search_state(
                mrf,
                initial_assignment,
                hard_penalty=self._constraint_penalty(len(self._prefix_clauses)),
                backend=self._backend,
            )
        elif initial_assignment is not None:
            self._prefix_state.reset(initial_assignment)
        return self._prefix_state

    def state_for(self, selected_soft: Sequence[int]) -> SearchState:
        """A constraint state for the prefix plus the selected soft clauses.

        ``selected_soft`` holds parent-MRF clause indices of the selected
        soft clauses, ascending (i.e. parent clause order).  An empty
        selection reuses the cached prefix state.
        """
        if not len(selected_soft):
            return self.prefix_state()
        codes = list(self._prefix_codes)
        positions = list(self._prefix_positions)
        clauses = list(self._prefix_clauses)
        adjacency: List[List[Tuple[int, bool]]] = [
            list(entries) for entries in self._prefix_adjacency
        ]
        clause_index = len(codes)
        templates = self._templates
        for index in selected_soft:
            template = templates[index]
            positions.extend(template.positions)
            clauses.extend(template.clauses)
            for constraint_codes in template.codes:
                codes.append(constraint_codes)
                for code in constraint_codes:
                    if code > 0:
                        adjacency[code - 1].append((clause_index, True))
                    else:
                        adjacency[-code - 1].append((clause_index, False))
                clause_index += 1
        mrf = self._shell_mrf(codes, positions, clauses, adjacency)
        self._attach_vector_view(mrf, selected_soft)
        return make_search_state(
            mrf,
            hard_penalty=self._constraint_penalty(len(clauses)),
            backend=self._backend,
        )

    @staticmethod
    def _constraint_penalty(clause_count: int) -> float:
        """The hard penalty a fresh state over weight-1.0 constraints computes.

        Bit-identical to the spec path's ``max(10.0 * soft_total, 10.0)``
        (``soft_total`` is an exact integer-valued float there), passed
        explicitly so the pooled path skips the per-clause weight sum.
        """
        return max(10.0 * clause_count, 10.0)

    def _attach_vector_view(self, mrf: MRF, selected_soft: Sequence[int]) -> None:
        """Pre-seed the shell's numpy view when it will run vectorized.

        Concatenates literal-array fragments cached per parent clause
        instead of letting ``VectorMRFView`` re-scan every literal of the
        throwaway constraint MRF; a no-op for shells that resolve to the
        flat kernel.
        """
        from repro.inference.state import resolve_backend

        if resolve_backend(mrf, self._backend) != "vectorized":
            return
        from repro.inference.vector_kernel import ConstraintVectorView, np

        fragments = self._lit_fragments
        if fragments is None:
            fragments = self._lit_fragments = self._build_lit_fragments()
        lit_pos = list(fragments["prefix_pos"])
        lit_expect = list(fragments["prefix_expect"])
        lit_clause = list(fragments["prefix_clause"])
        clause_index = len(self._prefix_codes)
        template_fragments = fragments["templates"]
        for index in selected_soft:
            pos, expect, sizes = template_fragments[index]
            lit_pos.extend(pos)
            lit_expect.extend(expect)
            for size in sizes:
                lit_clause.extend([clause_index] * size)
                clause_index += 1
        mrf._vector_view = ConstraintVectorView(
            mrf._flat_view,
            np.asarray(lit_pos, dtype=np.intp),
            np.asarray(lit_expect, dtype=np.int8),
            np.asarray(lit_clause, dtype=np.intp),
            clause_index,
        )

    def _build_lit_fragments(self) -> dict:
        """Per-parent-clause literal-array pieces for the numpy view."""

        def expand(code_groups):
            pos: List[int] = []
            expect: List[int] = []
            sizes: List[int] = []
            for constraint_codes in code_groups:
                sizes.append(len(constraint_codes))
                for code in constraint_codes:
                    if code > 0:
                        pos.append(code - 1)
                        expect.append(1)
                    else:
                        pos.append(-code - 1)
                        expect.append(0)
            return pos, expect, sizes

        prefix_pos, prefix_expect, prefix_sizes = expand(self._prefix_codes)
        prefix_clause: List[int] = []
        for clause_index, size in enumerate(prefix_sizes):
            prefix_clause.extend([clause_index] * size)
        return {
            "prefix_pos": prefix_pos,
            "prefix_expect": prefix_expect,
            "prefix_clause": prefix_clause,
            "templates": {
                index: expand(template.codes)
                for index, template in self._templates.items()
            },
        }

    def _shell_mrf(self, codes, positions, clauses, adjacency) -> MRF:
        """An MRF shell over prebuilt flat structure (no adjacency dict).

        The shell skips ``MRF.from_clauses``'s atom-set union/sort and
        id-level adjacency build; only the flat view (which is all the
        search kernel reads) is populated.
        """
        mrf = MRF(clauses=clauses, atom_ids=self._atom_ids)
        mrf._flat_view = MRFFlatView.from_parts(
            self._atom_ids, self._atom_position, codes, positions, adjacency
        )
        return mrf
