"""Flat-array search kernel for WalkSAT-style local search.

WalkSAT needs, at every step: a uniformly random violated clause, the cost
change each candidate flip would cause, and an O(degree) update when an atom
is flipped.  :class:`SearchState` is that hot loop, and it is built like a
kernel — the in-memory half of the hybrid architecture (paper, Section 3.2),
kept deliberately close to flat, cache-friendly data:

* **Flat arrays.**  The truth assignment (``array('b')``) and per-clause
  effective |weight| (``array('d')``) are dense buffers indexed by
  atom/clause position.  The per-clause satisfied-literal counts are a
  dense position-indexed *list*: it is read and written on every
  adjacency entry of every flip, and CPython list indexing is about twice
  as fast as ``array`` indexing (arrays unbox on access), which measurably
  moves flips/sec.  Hard clauses are mapped to a large finite penalty so
  the search can still rank flips that repair hard violations.
* **Shared flat structure.**  The clause → literal and atom → clause
  relations come from the MRF's cached :class:`~repro.mrf.graph.MRFFlatView`
  (per-clause signed literal-code tuples and per-atom
  ``(clause, polarity)`` adjacency tuples, all position-indexed), so
  nothing is allocated per step and every state over the same MRF shares
  one copy.  The distinct atom positions of each clause are deduplicated
  once per MRF instead of on every step.
* **Violated set.**  A list plus position map, so sampling, insertion and
  removal are all O(1).  It is touched only when a clause's satisfied
  count crosses zero, and entries are maintained in the exact order the
  seed kernel produced, keeping seeded runs bit-for-bit reproducible
  (see ``tests/test_search_kernel_parity.py``).
* **Flip journal.**  Every flip appends its atom position to a journal;
  :meth:`checkpoint` re-synchronises a retained snapshot of the
  assignment by replaying the toggles recorded since the previous
  checkpoint.  Callers (WalkSAT, SampleSAT) therefore track the best-seen
  assignment in O(flips since the last improvement) instead of copying
  the whole assignment on every improvement.  If the journal overflows
  (more flips than atoms since the last checkpoint) it falls back to one
  full copy.

* **In-place lifecycle.**  :meth:`reset`, :meth:`randomize` and
  :meth:`rerandomize` rewrite the buffers in place instead of rebinding
  them, so a stepper closure (and any numpy view over the buffers)
  survives every WalkSAT restart — drivers build one stepper per run and
  per-component searches cache one state per component.

The seed list-of-tuples kernel is retained verbatim in
:mod:`repro.inference.reference_kernel` as an executable specification; the
numpy-vectorized backend (:mod:`repro.inference.vector_kernel`) subclasses
this kernel behind the same API (select with :func:`make_search_state`);
the RDBMS-backed variant wraps the same bookkeeping but charges simulated
I/O per access (see :mod:`repro.inference.rdbms_walksat`).
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, List, Mapping, Optional, Sequence

from repro.grounding.clause_table import GroundClause
from repro.mrf.graph import MRF
from repro.utils import autotune
from repro.utils.rng import RandomSource


class SearchState:
    """Mutable WalkSAT bookkeeping over one MRF (flat-array engine)."""

    def __init__(
        self,
        mrf: MRF,
        initial_assignment: Optional[Mapping[int, bool]] = None,
        hard_penalty: Optional[float] = None,
    ) -> None:
        self.mrf = mrf
        view = mrf.flat_view()
        self._view = view
        self.atom_ids: List[int] = view.atom_ids
        self._position: Dict[int, int] = view.atom_position

        if hard_penalty is not None:
            self.hard_penalty = hard_penalty
        else:
            soft_total = sum(abs(c.weight) for c in mrf.clauses if not c.is_hard)
            self.hard_penalty = max(10.0 * soft_total, 10.0)

        # Effective |weight| used for cost bookkeeping (hard -> large penalty).
        self._abs_weight = array(
            "d",
            [
                self.hard_penalty if clause.is_hard else abs(clause.weight)
                for clause in mrf.clauses
            ],
        )
        # A clause with negative weight is violated when satisfied.
        self._negated: List[bool] = [clause.weight < 0 for clause in mrf.clauses]

        # Shared per-MRF structure (signed-code tuples derived from the CSR
        # buffers; see MRFFlatView).
        self._clause_codes = view.clause_codes
        self._clause_positions = view.clause_atom_positions
        self._adjacency = view.adjacency

        atom_count = len(self.atom_ids)
        self.assignment = array("b", bytes(atom_count))
        if initial_assignment:
            position = self._position
            assignment = self.assignment
            for atom_id, value in initial_assignment.items():
                index = position.get(atom_id)
                if index is not None:
                    assignment[index] = 1 if value else 0

        self._sat_count = [0] * len(mrf.clauses)
        self._violated_list: List[int] = []
        self._violated_position: Dict[int, int] = {}
        self._journal: List[int] = []
        self._journal_limit = atom_count
        self._journal_stale = False
        self.flips = 0
        # _initialise_counts sets cost, the violated set and the journal's
        # _best snapshot from the assignment built above.
        self._initialise_counts()

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------

    def _initialise_counts(self) -> None:
        assignment = self.assignment
        sat_count = self._sat_count
        negated = self._negated
        abs_weight = self._abs_weight
        violated_list = self._violated_list
        violated_position = self._violated_position
        violated_list.clear()
        violated_position.clear()
        cost = 0.0
        for clause_index, codes in enumerate(self._clause_codes):
            count = 0
            for code in codes:
                if code > 0:
                    if assignment[code - 1]:
                        count += 1
                elif not assignment[-code - 1]:
                    count += 1
            sat_count[clause_index] = count
            # Violated: positive-weight clause with no satisfied literal, or
            # negated clause that is satisfied.
            if (count > 0) == negated[clause_index]:
                violated_position[clause_index] = len(violated_list)
                violated_list.append(clause_index)
                cost += abs_weight[clause_index]
        self.cost = cost
        self._journal.clear()
        self._journal_stale = False
        self._best = array("b", assignment)

    def reset(self, assignment: Optional[Mapping[int, bool]] = None) -> None:
        """Reset the assignment (default all-false) and recompute bookkeeping.

        The assignment buffer is rewritten *in place*, so steppers created
        by :meth:`make_walksat_stepper` stay valid across resets.
        """
        current = self.assignment
        current[:] = array("b", bytes(len(current)))
        if assignment:
            position = self._position
            for atom_id, value in assignment.items():
                index = position.get(atom_id)
                if index is not None:
                    current[index] = 1 if value else 0
        self._initialise_counts()

    def rerandomize(self, rng: RandomSource) -> None:
        """Draw a uniformly random assignment *in place* (restart reuse).

        Consumes exactly one ``rng.coin()`` per atom, the same stream as the
        seed kernel's ``randomize``, but keeps the assignment buffer (and
        therefore any stepper closure bound to it) alive.  The presence of
        this method is the contract drivers test for when deciding whether
        one stepper can survive WalkSAT restarts.
        """
        coin = rng.coin
        assignment = self.assignment
        for index in range(len(assignment)):
            assignment[index] = 1 if coin() else 0
        self._initialise_counts()

    def randomize(self, rng: RandomSource) -> None:
        """Draw a uniformly random assignment (WalkSAT's per-try restart)."""
        self.rerandomize(rng)

    def reset_from_values(self, values: Sequence[int]) -> None:
        """Reset from a position-aligned 0/1 buffer (same atom order).

        The bulk counterpart of :meth:`reset`: callers that already hold an
        assignment buffer in this state's atom order (e.g. MC-SAT handing a
        SampleSAT result to the satisfaction evaluator over the same atom
        universe) skip the per-atom dict probing entirely.
        """
        assignment = self.assignment
        if len(values) != len(assignment):
            raise ValueError(
                f"buffer length {len(values)} does not match atom count {len(assignment)}"
            )
        assignment[:] = array("b", values)
        self._initialise_counts()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _is_violated(self, clause_index: int) -> bool:
        satisfied = self._sat_count[clause_index] > 0
        return satisfied if self._negated[clause_index] else not satisfied

    def violated_count(self) -> int:
        return len(self._violated_list)

    def has_violations(self) -> bool:
        return bool(self._violated_list)

    def sample_violated_clause(self, rng: RandomSource) -> int:
        """A uniformly random violated clause index."""
        if not self._violated_list:
            raise ValueError("no violated clauses to sample")
        return rng.pick(self._violated_list)

    def clause_atom_positions(self, clause_index: int) -> Sequence[int]:
        """Distinct atom positions appearing in a clause.

        Returns the precomputed per-clause tuple (first-occurrence order,
        shared across all states over the same MRF); callers must treat it
        as read-only.
        """
        return self._clause_positions[clause_index]

    def atom_id_at(self, position: int) -> int:
        return self.atom_ids[position]

    def value_of(self, atom_id: int) -> bool:
        return bool(self.assignment[self._position[atom_id]])

    def assignment_dict(self) -> Dict[int, bool]:
        assignment = self.assignment
        return {
            atom_id: bool(assignment[index])
            for index, atom_id in enumerate(self.atom_ids)
        }

    def satisfaction_flags(self) -> List[bool]:
        """Literal-level satisfaction of every clause, in clause order.

        Unlike :meth:`_is_violated` this ignores weight signs; a clause is
        satisfied when at least one of its literals is true (used by MC-SAT
        when selecting its per-step constraint subset).
        """
        return [count > 0 for count in self._sat_count]

    def true_cost(self) -> float:
        """Cost with hard violations counted at infinity (reporting form)."""
        total = 0.0
        for clause_index, clause in enumerate(self.mrf.clauses):
            if self._is_violated(clause_index):
                if clause.is_hard:
                    return math.inf
                total += abs(clause.weight)
        return total

    def soft_cost(self) -> float:
        """Cost using the finite hard penalty (the search's internal metric)."""
        return self.cost

    # ------------------------------------------------------------------
    # Flips
    # ------------------------------------------------------------------

    def delta_cost(self, atom_position: int) -> float:
        """Cost change if the atom at this position were flipped."""
        value = self.assignment[atom_position]
        sat_count = self._sat_count
        abs_weight = self._abs_weight
        negated = self._negated
        delta = 0.0
        for clause_index, positive in self._adjacency[atom_position]:
            currently_true = value if positive else not value
            # The violated status only changes when the satisfied count
            # crosses zero; the direction depends on the weight sign.
            if currently_true:
                if sat_count[clause_index] == 1:  # would drop to zero
                    if negated[clause_index]:
                        delta -= abs_weight[clause_index]
                    else:
                        delta += abs_weight[clause_index]
            elif sat_count[clause_index] == 0:  # would rise from zero
                if negated[clause_index]:
                    delta += abs_weight[clause_index]
                else:
                    delta -= abs_weight[clause_index]
        return delta

    def delta_cost_batch(self, clause_index: int) -> List[float]:
        """Cost deltas of flipping each distinct atom of a clause, in order.

        Matches ``[delta_cost(p) for p in clause_atom_positions(clause_index)]``
        exactly.  The vectorized backend overrides this with a batched
        computation that shares the adjacency walk across the candidates.
        """
        return [
            self.delta_cost(position)
            for position in self._clause_positions[clause_index]
        ]

    def flip(self, atom_position: int) -> float:
        """Flip an atom, updating all bookkeeping; returns the cost delta."""
        assignment = self.assignment
        value = assignment[atom_position]
        assignment[atom_position] = 0 if value else 1
        sat_count = self._sat_count
        abs_weight = self._abs_weight
        negated = self._negated
        violated_list = self._violated_list
        violated_position = self._violated_position
        delta = 0.0
        for clause_index, positive in self._adjacency[atom_position]:
            currently_true = value if positive else not value
            count = sat_count[clause_index]
            if currently_true:
                sat_count[clause_index] = count - 1
                if count == 1:  # dropped to zero satisfied literals
                    if negated[clause_index]:
                        # Negated clause became unsatisfied: repaired.
                        spot = violated_position.pop(clause_index, None)
                        if spot is not None:
                            last = violated_list.pop()
                            if spot < len(violated_list):
                                violated_list[spot] = last
                                violated_position[last] = spot
                        delta -= abs_weight[clause_index]
                    else:
                        if clause_index not in violated_position:
                            violated_position[clause_index] = len(violated_list)
                            violated_list.append(clause_index)
                        delta += abs_weight[clause_index]
            else:
                sat_count[clause_index] = count + 1
                if count == 0:  # rose from zero satisfied literals
                    if negated[clause_index]:
                        if clause_index not in violated_position:
                            violated_position[clause_index] = len(violated_list)
                            violated_list.append(clause_index)
                        delta += abs_weight[clause_index]
                    else:
                        spot = violated_position.pop(clause_index, None)
                        if spot is not None:
                            last = violated_list.pop()
                            if spot < len(violated_list):
                                violated_list[spot] = last
                                violated_position[last] = spot
                        delta -= abs_weight[clause_index]
        self.cost += delta
        self.flips += 1
        journal = self._journal
        if len(journal) < self._journal_limit:
            journal.append(atom_position)
        else:
            self._journal_stale = True
        return delta

    def flip_atom_id(self, atom_id: int) -> float:
        return self.flip(self._position[atom_id])

    def make_walksat_stepper(self, rng: RandomSource, noise: float):
        """A zero-argument closure performing one WalkSAT step per call.

        This is the kernel's hottest entry point: every buffer and RNG
        method is bound into the closure once, so a step pays a single
        call frame and no attribute lookups.  :meth:`reset`,
        :meth:`rerandomize` and :meth:`randomize` all rewrite the bound
        buffers in place, so one stepper survives any number of restarts
        (the state-reuse lifecycle WalkSAT relies on).
        Each call performs one step and returns the updated cost; stepping
        a state with no violated clauses raises ValueError, like
        :meth:`sample_violated_clause`.

        ``random.choice`` is unrolled to its exact definition
        (``seq[_randbelow(len(seq))]``, with ``_randbelow`` itself unrolled
        to the rejection loop over ``getrandbits``), so the stream consumed
        is identical to the seed kernel's ``rng.pick`` calls.
        """
        raw = rng.raw()
        getrandbits = raw.getrandbits
        rng_random = raw.random
        assignment = self.assignment
        sat_count = self._sat_count
        abs_weight = self._abs_weight
        negated = self._negated
        adjacency = self._adjacency
        clause_positions = self._clause_positions
        violated_list = self._violated_list
        violated_position = self._violated_position
        journal = self._journal
        journal_limit = self._journal_limit
        journal_append = journal.append

        def step() -> float:
            # random.choice(violated_list), unrolled.
            n = len(violated_list)
            if not n:
                raise ValueError("no violated clauses to sample")
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            positions = clause_positions[violated_list[r]]
            if len(positions) == 1:
                position = positions[0]
            elif rng_random() < noise:
                # random.choice(positions), unrolled.
                n = len(positions)
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                position = positions[r]
            else:
                # Inline delta_cost per candidate; first strict minimum wins.
                position = positions[0]
                best_delta = None
                for candidate in positions:
                    value = assignment[candidate]
                    delta = 0.0
                    for clause_index, positive in adjacency[candidate]:
                        currently_true = value if positive else not value
                        if currently_true:
                            if sat_count[clause_index] == 1:
                                if negated[clause_index]:
                                    delta -= abs_weight[clause_index]
                                else:
                                    delta += abs_weight[clause_index]
                        elif sat_count[clause_index] == 0:
                            if negated[clause_index]:
                                delta += abs_weight[clause_index]
                            else:
                                delta -= abs_weight[clause_index]
                    if best_delta is None or delta < best_delta:
                        best_delta = delta
                        position = candidate

            # Inline flip (same bookkeeping, same ordering, as flip()).
            value = assignment[position]
            assignment[position] = 0 if value else 1
            delta = 0.0
            for clause_index, positive in adjacency[position]:
                currently_true = value if positive else not value
                count = sat_count[clause_index]
                if currently_true:
                    sat_count[clause_index] = count - 1
                    if count == 1:
                        if negated[clause_index]:
                            spot = violated_position.pop(clause_index, None)
                            if spot is not None:
                                last = violated_list.pop()
                                if spot < len(violated_list):
                                    violated_list[spot] = last
                                    violated_position[last] = spot
                            delta -= abs_weight[clause_index]
                        else:
                            if clause_index not in violated_position:
                                violated_position[clause_index] = len(violated_list)
                                violated_list.append(clause_index)
                            delta += abs_weight[clause_index]
                else:
                    sat_count[clause_index] = count + 1
                    if count == 0:
                        if negated[clause_index]:
                            if clause_index not in violated_position:
                                violated_position[clause_index] = len(violated_list)
                                violated_list.append(clause_index)
                            delta += abs_weight[clause_index]
                        else:
                            spot = violated_position.pop(clause_index, None)
                            if spot is not None:
                                last = violated_list.pop()
                                if spot < len(violated_list):
                                    violated_list[spot] = last
                                    violated_position[last] = spot
                            delta -= abs_weight[clause_index]
            cost = self.cost + delta
            self.cost = cost
            self.flips += 1
            if len(journal) < journal_limit:
                journal_append(position)
            else:
                self._journal_stale = True
            return cost

        return step

    # ------------------------------------------------------------------
    # Checkpointing (the flip journal)
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Record the current assignment as the retained snapshot.

        O(flips since the previous checkpoint): the snapshot is brought up
        to date by replaying the journal's toggles (an atom flipped an even
        number of times nets out).  Falls back to one full copy when the
        journal overflowed.  ``reset``/``randomize`` re-seed the snapshot
        to the fresh assignment.
        """
        journal = self._journal
        if self._journal_stale:
            self._best = array("b", self.assignment)
            self._journal_stale = False
        else:
            best = self._best
            for position in journal:
                best[position] ^= 1
        del journal[:]

    def checkpoint_dict(self) -> Dict[int, bool]:
        """The snapshot recorded by the most recent :meth:`checkpoint`."""
        best = self._best
        return {
            atom_id: bool(best[index]) for index, atom_id in enumerate(self.atom_ids)
        }

    def checkpoint_values(self) -> Sequence[int]:
        """The checkpoint snapshot as a position-aligned 0/1 buffer.

        The bulk counterpart of :meth:`checkpoint_dict` (same atom order as
        :attr:`assignment`); callers must treat it as read-only, and a later
        :meth:`checkpoint`/:meth:`reset` may rewrite it in place.  This is
        the hand-off contract the MC-SAT pipeline feeds into
        :meth:`reset_from_values`.
        """
        return self._best

    # ------------------------------------------------------------------
    # Violated-set access
    # ------------------------------------------------------------------

    def violated_clause_indices(self) -> List[int]:
        return list(self._violated_list)

    def clause(self, clause_index: int) -> GroundClause:
        return self.mrf.clauses[clause_index]


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

#: Valid values for the ``kernel_backend`` option of the search drivers.
KERNEL_BACKENDS = ("auto", "flat", "vectorized")

#: Under ``auto``, the vectorized backend is only worth its one-time numpy
#: structure build for MRFs at least this many clauses large; throwaway MRFs
#: (e.g. SampleSAT constraint sets built per MC-SAT step) stay on the flat
#: kernel.  See ROADMAP.md ("Search kernel") for the full selection rule.
#: The crossover is calibrated per machine by an import-time micro-probe
#: (default 256 on the reference container); ``REPRO_VECTOR_AUTO_MIN_CLAUSES``
#: pins it and ``REPRO_AUTOTUNE=off`` keeps the default — selection only,
#: results are bit-identical either way.
VECTOR_AUTO_MIN_CLAUSES = autotune.threshold("VECTOR_AUTO_MIN_CLAUSES", 256)


def available_backends() -> tuple:
    """The kernel backends usable in this environment, in preference order."""
    from repro.inference.vector_kernel import NUMPY_AVAILABLE

    return ("flat", "vectorized") if NUMPY_AVAILABLE else ("flat",)


def resolve_backend(mrf: MRF, backend: str = "auto") -> str:
    """Resolve a requested backend name to a concrete one for this MRF.

    ``auto`` picks ``vectorized`` when numpy is importable and the MRF is
    large enough (``VECTOR_AUTO_MIN_CLAUSES``) to amortize the vectorized
    backend's per-MRF structure build, else ``flat``.  Both backends are
    bit-for-bit identical in search semantics (the parity suite enforces
    it), so the choice is purely a performance decision.
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    if backend != "auto":
        if backend == "vectorized":
            from repro.inference.vector_kernel import NUMPY_AVAILABLE

            if not NUMPY_AVAILABLE:
                raise RuntimeError(
                    "vectorized kernel backend requested but numpy is not available"
                )
        return backend
    from repro.inference.vector_kernel import NUMPY_AVAILABLE

    if NUMPY_AVAILABLE and mrf.clause_count >= VECTOR_AUTO_MIN_CLAUSES:
        return "vectorized"
    return "flat"


def make_search_state(
    mrf: MRF,
    initial_assignment: Optional[Mapping[int, bool]] = None,
    hard_penalty: Optional[float] = None,
    backend: str = "auto",
) -> "SearchState":
    """Construct a search state on the resolved kernel backend."""
    resolved = resolve_backend(mrf, backend)
    if resolved == "vectorized":
        from repro.inference.vector_kernel import VectorSearchState

        return VectorSearchState(mrf, initial_assignment, hard_penalty)
    return SearchState(mrf, initial_assignment, hard_penalty)
