"""Incremental search state for WalkSAT-style local search.

WalkSAT needs, at every step: a uniformly random violated clause, the cost
change each candidate flip would cause, and an O(degree) update when an atom
is flipped.  :class:`SearchState` maintains

* the current truth assignment (dense arrays indexed by atom position),
* the number of satisfied literal occurrences per clause,
* the set of currently violated clauses (list + position map, so sampling,
  insertion and removal are all O(1)),
* the current soft cost, with hard clauses mapped to a large finite penalty
  so the search can still rank flips that repair hard violations.

This is the in-memory half of the hybrid architecture (paper, Section 3.2);
the RDBMS-backed variant wraps the same bookkeeping but charges simulated
I/O per access (see :mod:`repro.inference.rdbms_walksat`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.grounding.clause_table import GroundClause
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


class SearchState:
    """Mutable WalkSAT bookkeeping over one MRF."""

    def __init__(
        self,
        mrf: MRF,
        initial_assignment: Optional[Mapping[int, bool]] = None,
        hard_penalty: Optional[float] = None,
    ) -> None:
        self.mrf = mrf
        self.atom_ids: List[int] = list(mrf.atom_ids)
        self._position: Dict[int, int] = {
            atom_id: index for index, atom_id in enumerate(self.atom_ids)
        }
        clause_count = len(mrf.clauses)

        soft_total = sum(abs(c.weight) for c in mrf.clauses if not c.is_hard)
        self.hard_penalty = (
            hard_penalty if hard_penalty is not None else max(10.0 * soft_total, 10.0)
        )

        # Effective |weight| used for cost bookkeeping (hard -> large penalty).
        self._abs_weight: List[float] = [
            self.hard_penalty if clause.is_hard else abs(clause.weight)
            for clause in mrf.clauses
        ]
        # A clause with negative weight is violated when satisfied.
        self._negated: List[bool] = [clause.weight < 0 for clause in mrf.clauses]

        # Literal occurrences per clause as (atom position, positive) pairs.
        self._clause_literals: List[List[Tuple[int, bool]]] = []
        for clause in mrf.clauses:
            literals = [
                (self._position[abs(literal)], literal > 0) for literal in clause.literals
            ]
            self._clause_literals.append(literals)

        # Adjacency: atom position -> list of (clause index, positive) pairs.
        self._adjacency: List[List[Tuple[int, bool]]] = [[] for _ in self.atom_ids]
        for clause_index, literals in enumerate(self._clause_literals):
            for atom_position, positive in literals:
                self._adjacency[atom_position].append((clause_index, positive))

        self.assignment: List[bool] = [False] * len(self.atom_ids)
        if initial_assignment:
            for atom_id, value in initial_assignment.items():
                position = self._position.get(atom_id)
                if position is not None:
                    self.assignment[position] = bool(value)

        self._sat_count: List[int] = [0] * clause_count
        self._violated_list: List[int] = []
        self._violated_position: Dict[int, int] = {}
        self.cost = 0.0
        self.flips = 0
        self._initialise_counts()

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------

    def _initialise_counts(self) -> None:
        self._sat_count = [0] * len(self._clause_literals)
        self._violated_list.clear()
        self._violated_position.clear()
        self.cost = 0.0
        for clause_index, literals in enumerate(self._clause_literals):
            count = 0
            for atom_position, positive in literals:
                value = self.assignment[atom_position]
                if value == positive:
                    count += 1
            self._sat_count[clause_index] = count
            if self._is_violated(clause_index):
                self._add_violated(clause_index)
                self.cost += self._abs_weight[clause_index]

    def reset(self, assignment: Optional[Mapping[int, bool]] = None) -> None:
        """Reset the assignment (default all-false) and recompute bookkeeping."""
        self.assignment = [False] * len(self.atom_ids)
        if assignment:
            for atom_id, value in assignment.items():
                position = self._position.get(atom_id)
                if position is not None:
                    self.assignment[position] = bool(value)
        self._initialise_counts()

    def randomize(self, rng: RandomSource) -> None:
        """Draw a uniformly random assignment (WalkSAT's per-try restart)."""
        self.assignment = [rng.coin() for _ in self.atom_ids]
        self._initialise_counts()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _is_violated(self, clause_index: int) -> bool:
        satisfied = self._sat_count[clause_index] > 0
        return satisfied if self._negated[clause_index] else not satisfied

    def violated_count(self) -> int:
        return len(self._violated_list)

    def has_violations(self) -> bool:
        return bool(self._violated_list)

    def sample_violated_clause(self, rng: RandomSource) -> int:
        """A uniformly random violated clause index."""
        if not self._violated_list:
            raise ValueError("no violated clauses to sample")
        return rng.pick(self._violated_list)

    def clause_atom_positions(self, clause_index: int) -> List[int]:
        """Distinct atom positions appearing in a clause."""
        seen: List[int] = []
        for atom_position, _positive in self._clause_literals[clause_index]:
            if atom_position not in seen:
                seen.append(atom_position)
        return seen

    def atom_id_at(self, position: int) -> int:
        return self.atom_ids[position]

    def value_of(self, atom_id: int) -> bool:
        return self.assignment[self._position[atom_id]]

    def assignment_dict(self) -> Dict[int, bool]:
        return {atom_id: self.assignment[i] for i, atom_id in enumerate(self.atom_ids)}

    def true_cost(self) -> float:
        """Cost with hard violations counted at infinity (reporting form)."""
        total = 0.0
        for clause_index, clause in enumerate(self.mrf.clauses):
            if self._is_violated(clause_index):
                if clause.is_hard:
                    return math.inf
                total += abs(clause.weight)
        return total

    def soft_cost(self) -> float:
        """Cost using the finite hard penalty (the search's internal metric)."""
        return self.cost

    # ------------------------------------------------------------------
    # Flips
    # ------------------------------------------------------------------

    def delta_cost(self, atom_position: int) -> float:
        """Cost change if the atom at this position were flipped."""
        value = self.assignment[atom_position]
        delta = 0.0
        for clause_index, positive in self._adjacency[atom_position]:
            was_violated = self._is_violated(clause_index)
            currently_true = value == positive
            new_count = self._sat_count[clause_index] + (-1 if currently_true else 1)
            satisfied = new_count > 0
            now_violated = satisfied if self._negated[clause_index] else not satisfied
            if was_violated and not now_violated:
                delta -= self._abs_weight[clause_index]
            elif not was_violated and now_violated:
                delta += self._abs_weight[clause_index]
        return delta

    def flip(self, atom_position: int) -> float:
        """Flip an atom, updating all bookkeeping; returns the cost delta."""
        value = self.assignment[atom_position]
        self.assignment[atom_position] = not value
        delta = 0.0
        for clause_index, positive in self._adjacency[atom_position]:
            was_violated = self._is_violated(clause_index)
            currently_true = value == positive
            self._sat_count[clause_index] += -1 if currently_true else 1
            now_violated = self._is_violated(clause_index)
            if was_violated and not now_violated:
                self._remove_violated(clause_index)
                delta -= self._abs_weight[clause_index]
            elif not was_violated and now_violated:
                self._add_violated(clause_index)
                delta += self._abs_weight[clause_index]
        self.cost += delta
        self.flips += 1
        return delta

    def flip_atom_id(self, atom_id: int) -> float:
        return self.flip(self._position[atom_id])

    # ------------------------------------------------------------------
    # Violated-set maintenance
    # ------------------------------------------------------------------

    def _add_violated(self, clause_index: int) -> None:
        if clause_index in self._violated_position:
            return
        self._violated_position[clause_index] = len(self._violated_list)
        self._violated_list.append(clause_index)

    def _remove_violated(self, clause_index: int) -> None:
        position = self._violated_position.pop(clause_index, None)
        if position is None:
            return
        last = self._violated_list.pop()
        if position < len(self._violated_list):
            self._violated_list[position] = last
            self._violated_position[last] = position

    def violated_clause_indices(self) -> List[int]:
        return list(self._violated_list)

    def clause(self, clause_index: int) -> GroundClause:
        return self.mrf.clauses[clause_index]
