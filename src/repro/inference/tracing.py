"""Time-cost traces and flipping-rate measurement.

The paper's headline figures (Figures 3-6 and 8) are *time-cost plots*: the
cost of the best solution found so far as a function of time.  A
:class:`TimeCostTrace` records exactly those points, against whichever clock
the experiment uses (wall clock or the deterministic simulated clock), and a
:class:`FlipRateMeter` measures flips per second for Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class TracePoint:
    """One sample of the best-so-far cost."""

    time: float
    cost: float
    flips: int


@dataclass
class TimeCostTrace:
    """Best-cost-so-far as a function of time.

    ``label`` names the system being traced (e.g. ``"tuffy"``, ``"alchemy"``)
    so benchmark harnesses can overlay traces.
    """

    label: str = ""
    points: List[TracePoint] = field(default_factory=list)
    grounding_seconds: float = 0.0

    def record(self, time: float, cost: float, flips: int = 0) -> None:
        """Record a sample if it improves on (or starts) the trace."""
        if not self.points or cost < self.points[-1].cost:
            self.points.append(TracePoint(time, cost, flips))

    def record_final(self, time: float, cost: float, flips: int = 0) -> None:
        """Record the final observation even when it does not improve."""
        self.points.append(TracePoint(time, cost, flips))

    @property
    def best_cost(self) -> float:
        return min((point.cost for point in self.points), default=math.inf)

    @property
    def final_time(self) -> float:
        return self.points[-1].time if self.points else 0.0

    def cost_at(self, time: float) -> float:
        """Best cost achieved at or before the given time (inf before start)."""
        best = math.inf
        for point in self.points:
            if point.time + self.grounding_seconds <= time and point.cost < best:
                best = point.cost
        return best

    def shifted(self, offset: float) -> "TimeCostTrace":
        """A copy with every timestamp shifted (used to add grounding time)."""
        copy = TimeCostTrace(self.label, grounding_seconds=self.grounding_seconds)
        copy.points = [
            TracePoint(point.time + offset, point.cost, point.flips) for point in self.points
        ]
        return copy

    def as_rows(self) -> List[Tuple[float, float]]:
        return [(point.time, point.cost) for point in self.points]


@dataclass
class FlipRateMeter:
    """Counts flips against elapsed time to report flips/second."""

    flips: int = 0
    seconds: float = 0.0

    def record(self, flips: int, seconds: float) -> None:
        self.flips += flips
        self.seconds += seconds

    @property
    def flips_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flips / self.seconds


def merge_traces(traces: Sequence[TimeCostTrace], label: str = "") -> TimeCostTrace:
    """Merge per-component traces into one global best-cost trace.

    Component searches run independently; at any time the global best cost is
    the sum of each component's best cost so far.  The merged trace samples
    the union of all component timestamps.
    """
    merged = TimeCostTrace(label)
    if not traces:
        return merged
    timestamps = sorted({point.time for trace in traces for point in trace.points})
    for timestamp in timestamps:
        total = 0.0
        defined = True
        for trace in traces:
            best = math.inf
            for point in trace.points:
                if point.time <= timestamp and point.cost < best:
                    best = point.cost
            if math.isinf(best):
                defined = False
                break
            total += best
        if defined:
            merged.record_final(timestamp, total)
    return merged
