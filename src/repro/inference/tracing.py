"""Time-cost traces and flipping-rate measurement (compatibility surface).

The paper's headline figures (Figures 3-6 and 8) are *time-cost plots*: the
cost of the best solution found so far as a function of time.  The
recording machinery now lives in :mod:`repro.obs.events`; this module keeps
the historical names (``TimeCostTrace``, ``TracePoint``, ``FlipRateMeter``,
``merge_traces``) as thin aliases so the Figure 3–8 benchmarks and every
existing call site keep working unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.events import RateMeter, Series, SeriesPoint, merge_series

TracePoint = SeriesPoint


class TimeCostTrace(Series):
    """Best-cost-so-far as a function of time (alias of :class:`Series`)."""


class FlipRateMeter(RateMeter):
    """Counts flips against elapsed time (alias of :class:`RateMeter`)."""


def merge_traces(traces: Sequence[TimeCostTrace], label: str = "") -> TimeCostTrace:
    """Merge per-component traces into one global best-cost trace."""
    merged = merge_series(traces, label=label, factory=TimeCostTrace)
    return merged


__all__ = ["FlipRateMeter", "TimeCostTrace", "TracePoint", "merge_traces"]
