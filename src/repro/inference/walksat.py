"""WalkSAT (Algorithm 1 of the paper) for MAP inference.

The algorithm repeatedly picks a random violated clause and "fixes" it by
flipping one of its atoms: with probability ``noise`` a random atom of the
clause, otherwise the atom whose flip decreases the total cost the most.
The best assignment seen across all tries is returned.

Stopping conditions: a flip budget (``max_flips`` per try, ``max_tries``
restarts), an optional cost target, an optional deadline on the supplied
clock, or reaching zero violated clauses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.inference.state import KERNEL_BACKENDS, SearchState, make_search_state
from repro.inference.tracing import FlipRateMeter, TimeCostTrace
from repro.mrf.graph import MRF
from repro.utils.clock import SimulatedClock, WallClock
from repro.utils.rng import RandomSource


@dataclass
class WalkSATOptions:
    """Tuning parameters for WalkSAT.

    ``noise`` is the probability of a random (rather than greedy) flip; the
    paper's Algorithm 1 uses 0.5.  ``flip_cost_event`` is the simulated-clock
    event charged per flip (``"memory_flip"`` for the in-memory search).
    """

    max_flips: int = 100_000
    max_tries: int = 1
    noise: float = 0.5
    target_cost: Optional[float] = None
    deadline_seconds: Optional[float] = None
    random_restarts: bool = True
    flip_cost_event: str = "memory_flip"
    trace_label: str = "walksat"
    #: Search-kernel backend: "auto" (vectorized when numpy is available and
    #: the MRF is large enough), "flat", or "vectorized".  Both backends are
    #: bit-for-bit identical in search semantics.
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError("noise must be within [0, 1]")
        if self.max_flips <= 0 or self.max_tries <= 0:
            raise ValueError("max_flips and max_tries must be positive")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}"
            )


@dataclass
class WalkSATResult:
    """The outcome of a WalkSAT run."""

    best_assignment: Dict[int, bool]
    best_cost: float
    flips: int
    tries: int
    seconds: float
    trace: TimeCostTrace = field(default_factory=TimeCostTrace)
    reached_target: bool = False
    hitting_time: Optional[int] = None

    @property
    def flips_per_second(self) -> float:
        return FlipRateMeter(self.flips, self.seconds).flips_per_second


class WalkSAT:
    """The in-memory WalkSAT search used by Tuffy's hybrid architecture."""

    def __init__(
        self,
        options: Optional[WalkSATOptions] = None,
        rng: Optional[RandomSource] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        self.options = options or WalkSATOptions()
        self.rng = rng or RandomSource(0)
        self.clock = clock or SimulatedClock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        mrf: MRF,
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> WalkSATResult:
        """Search the MRF for a low-cost assignment."""
        state = make_search_state(
            mrf, initial_assignment, backend=self.options.kernel_backend
        )
        return self.run_on_state(state, initial_assignment)

    def run_on_state(
        self,
        state: SearchState,
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> WalkSATResult:
        """Search using an existing state (lets callers reuse bookkeeping)."""
        options = self.options
        wall = WallClock()
        trace = TimeCostTrace(options.trace_label)
        target = options.target_cost
        best_cost = math.inf
        best_assignment: Dict[int, bool] = state.assignment_dict()
        total_flips = 0
        tries = 0
        reached_target = False
        hitting_time: Optional[int] = None

        # State-reuse lifecycle: kernels exposing rerandomize() rewrite
        # their buffers in place across restarts, so one stepper (created
        # lazily below) survives every try.  The seed reference kernel has
        # neither rerandomize nor a stepper and keeps its original path.
        make_stepper = getattr(state, "make_walksat_stepper", None)
        rerandomize = getattr(state, "rerandomize", None)
        rng = self.rng
        noise = options.noise
        step = None

        for attempt in range(options.max_tries):
            tries += 1
            if attempt == 0:
                if initial_assignment is None and options.random_restarts:
                    state.randomize(rng)
                else:
                    state.reset(initial_assignment)
            elif options.random_restarts:
                if rerandomize is not None:
                    rerandomize(rng)
                else:
                    state.randomize(rng)
            else:
                state.reset(initial_assignment)
            if make_stepper is not None and (step is None or rerandomize is None):
                step = make_stepper(rng, noise)

            # Improvements are tracked through the state's flip journal:
            # checkpoint() is O(flips since the last improvement) and the
            # dict is materialised once per try instead of per improvement.
            try_improved = False
            if state.cost < best_cost:
                best_cost = state.cost
                state.checkpoint()
                try_improved = True
                trace.record_improvement(self.clock.now(), best_cost, total_flips)

            if target is not None and best_cost <= target:
                # A try whose starting state already meets the target is a
                # zero-flip hit; without this, expected_hitting_time would
                # wrongly charge it the full flip budget.
                reached_target = True
                if hitting_time is None:
                    hitting_time = total_flips
            else:
                # Hot loop: everything per-flip is either the kernel's own
                # stepper (sample + choose + flip in one call) or a
                # pre-bound local, so no wrapper frames are paid per step.
                # The violated list's identity is stable across resets, so
                # its truthiness is the has_violations() check.  Flip costs
                # are charged to the simulated clock in batches, flushed
                # before every clock observation (deadline check, trace
                # record, loop exit), so observable times are identical to
                # charging per flip.
                violated_list = state._violated_list
                clock = self.clock
                charge = clock.charge
                flip_event = options.flip_cost_event
                deadline = options.deadline_seconds
                pending_charges = 0
                for _flip in range(options.max_flips):
                    if not violated_list:
                        break
                    if deadline is not None:
                        if pending_charges:
                            charge(flip_event, pending_charges)
                            pending_charges = 0
                        if clock.now() >= deadline:
                            break
                    if step is not None:
                        cost = step()
                    else:
                        # Seed-kernel path (ReferenceSearchState): the
                        # original sample/choose/flip call sequence, which
                        # consumes the identical RNG stream.
                        clause_index = state.sample_violated_clause(rng)
                        state.flip(self._choose_atom(state, clause_index))
                        cost = state.cost
                    total_flips += 1
                    pending_charges += 1
                    if cost < best_cost:
                        charge(flip_event, pending_charges)
                        pending_charges = 0
                        best_cost = cost
                        state.checkpoint()
                        try_improved = True
                        trace.record_improvement(clock.now(), best_cost, total_flips)
                        if (
                            hitting_time is None
                            and target is not None
                            and best_cost <= target
                        ):
                            hitting_time = total_flips
                    if target is not None and best_cost <= target:
                        reached_target = True
                        break
                if pending_charges:
                    charge(flip_event, pending_charges)
            if try_improved:
                best_assignment = state.checkpoint_dict()
            if reached_target or self._deadline_exceeded(options):
                break
            if not state.has_violations():
                break

        return WalkSATResult(
            best_assignment=best_assignment,
            best_cost=best_cost,
            flips=total_flips,
            tries=tries,
            seconds=wall.elapsed(),
            trace=trace,
            reached_target=reached_target,
            hitting_time=hitting_time,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _choose_atom(self, state: SearchState, clause_index: int) -> int:
        """Pick the atom of a violated clause to flip (random vs greedy)."""
        positions = state.clause_atom_positions(clause_index)
        if len(positions) == 1:
            return positions[0]
        # Strict comparison: noise=0.0 must be purely greedy even when the
        # RNG returns exactly 0.0, and noise=1.0 purely random.
        if self.rng.random() < self.options.noise:
            return self.rng.pick(positions)
        best_position = positions[0]
        best_delta = state.delta_cost(best_position)
        for position in positions[1:]:
            delta = state.delta_cost(position)
            if delta < best_delta:
                best_delta = delta
                best_position = position
        return best_position

    def _deadline_exceeded(self, options: WalkSATOptions) -> bool:
        if options.deadline_seconds is None:
            return False
        return self.clock.now() >= options.deadline_seconds


def expected_hitting_time(
    mrf: MRF,
    target_cost: float,
    runs: int,
    max_flips: int,
    seed: int = 0,
    noise: float = 0.5,
) -> float:
    """Empirical mean number of flips WalkSAT needs to reach a target cost.

    Used by the Theorem 3.1 experiments (Example 1 / Figure 8): runs that do
    not reach the target within ``max_flips`` contribute ``max_flips`` flips,
    so the estimate is a lower bound on the true expectation.
    """
    total = 0.0
    for run in range(runs):
        options = WalkSATOptions(
            max_flips=max_flips,
            max_tries=1,
            noise=noise,
            target_cost=target_cost,
        )
        result = WalkSAT(options, RandomSource(seed + run)).run(mrf)
        if result.hitting_time is not None:
            total += result.hitting_time
        else:
            total += max_flips
    return total / max(runs, 1)
