"""Search and sampling algorithms for MAP and marginal MLN inference.

* :mod:`repro.inference.state` — incremental WalkSAT bookkeeping (satisfied
  literal counts, violated-clause set, O(1) flips);
* :mod:`repro.inference.walksat` — the WalkSAT local search of Algorithm 1;
* :mod:`repro.inference.rdbms_walksat` — the RDBMS-backed search (Tuffy-mm,
  Appendix B.2), which pays simulated I/O per step;
* :mod:`repro.inference.component_walksat` — component-aware WalkSAT with
  weighted round-robin scheduling (Section 3.3);
* :mod:`repro.inference.gauss_seidel` — partition-aware search over split
  components (Section 3.4);
* :mod:`repro.inference.mcsat` / :mod:`repro.inference.samplesat` — marginal
  inference (Appendix A.5);
* :mod:`repro.inference.tracing` — time-cost traces and flipping-rate
  measurement;
* :mod:`repro.inference.scheduling` — round-robin and parallel execution of
  per-component searches.
"""

from repro.inference.component_walksat import ComponentAwareWalkSAT, ComponentSearchResult
from repro.inference.gauss_seidel import GaussSeidelSearch
from repro.inference.mcsat import MCSat, MarginalResult
from repro.inference.rdbms_walksat import RDBMSWalkSAT
from repro.inference.samplesat import SampleSAT
from repro.inference.state import (
    KERNEL_BACKENDS,
    SearchState,
    available_backends,
    make_search_state,
    resolve_backend,
)
from repro.inference.tracing import FlipRateMeter, TimeCostTrace
from repro.inference.walksat import WalkSAT, WalkSATOptions, WalkSATResult

__all__ = [
    "ComponentAwareWalkSAT",
    "ComponentSearchResult",
    "FlipRateMeter",
    "GaussSeidelSearch",
    "KERNEL_BACKENDS",
    "MCSat",
    "MarginalResult",
    "RDBMSWalkSAT",
    "SampleSAT",
    "SearchState",
    "TimeCostTrace",
    "WalkSAT",
    "WalkSATOptions",
    "WalkSATResult",
    "available_backends",
    "make_search_state",
    "resolve_backend",
]
